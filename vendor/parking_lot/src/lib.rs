//! Offline stand-in for the subset of `parking_lot` this workspace uses.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free,
//! non-poisoning API (`lock()` returns the guard directly). Poison from a
//! panicked holder is ignored, matching parking_lot's behaviour of not
//! tracking poison at all.

use std::fmt;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_is_not_poisoned_by_panics() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
