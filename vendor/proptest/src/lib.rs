//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Implements the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`/`prop_assume!`, range and collection strategies,
//! `prop::sample::select`, `any::<bool>()`, and `.prop_map`. Case inputs are
//! sampled from a deterministic RNG keyed by (module path, test name, case
//! index), so failures reproduce exactly across runs and machines. Unlike
//! real proptest there is no shrinking: a failing case reports its inputs'
//! case index instead of a minimized counterexample.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of values for one `proptest!` argument.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }

        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                keep: f,
                whence,
            }
        }

        fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            O: Strategy,
            F: Fn(Self::Value) -> O,
        {
            FlatMap {
                source: self,
                map: f,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) map: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.map)(self.source.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`]: the sampled value
    /// of the source parameterizes a second strategy, sampled from the same
    /// per-case RNG stream (dependent generation, e.g. "a length, then that
    /// many rows").
    pub struct FlatMap<S, F> {
        source: S,
        map: F,
    }

    impl<S, F, O> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        O: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O::Value;

        fn sample(&self, rng: &mut StdRng) -> O::Value {
            (self.map)(self.source.sample(rng)).sample(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`]; resamples until the
    /// predicate accepts (bounded, then panics, since this stub cannot
    /// reject whole cases from inside a strategy).
    pub struct Filter<S, F> {
        source: S,
        keep: F,
        whence: &'static str,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn sample(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1024 {
                let v = self.source.sample(rng);
                if (self.keep)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter({}) rejected 1024 consecutive samples",
                self.whence
            );
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_strategy_for_tuple {
        ($($s:ident.$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_strategy_for_tuple!(A.0);
    impl_strategy_for_tuple!(A.0, B.1);
    impl_strategy_for_tuple!(A.0, B.1, C.2);
    impl_strategy_for_tuple!(A.0, B.1, C.2, D.3);
    impl_strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4);
    impl_strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);

    impl<T> Strategy for std::ops::Range<T>
    where
        T: Clone,
        std::ops::Range<T>: rand::SampleRange<T>,
    {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        T: Clone,
        std::ops::RangeInclusive<T>: rand::SampleRange<T>,
    {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Number of elements a collection strategy may produce.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;

    /// Strategy drawing uniformly from a fixed list of values.
    pub struct Select<T: Clone>(Vec<T>);

    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(
            !values.is_empty(),
            "prop::sample::select requires a non-empty list"
        );
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            self.0
                .choose(rng)
                .expect("non-empty by construction")
                .clone()
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;

        fn arbitrary() -> Self::Strategy;
    }

    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for bool {
        type Strategy = BoolStrategy;

        fn arbitrary() -> BoolStrategy {
            BoolStrategy
        }
    }

    macro_rules! impl_arbitrary_full_range_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;

                fn arbitrary() -> FullRange<$t> {
                    FullRange(std::marker::PhantomData)
                }
            }
        )*};
    }

    /// Full-width integer strategy backing `any::<uN/iN>()`.
    pub struct FullRange<T>(std::marker::PhantomData<T>);

    macro_rules! impl_full_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for FullRange<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen::<$t>()
                }
            }
        )*};
    }

    impl_full_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
    impl_arbitrary_full_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-`proptest!` block configuration (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        /// Upper bound on assume-rejected samples before the test errors.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    /// Outcome of one generated case's body.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: skip this case, draw another.
        Reject,
        /// `prop_assert*!` failed: the property does not hold.
        Fail(String),
    }

    /// Deterministic RNG for one case: keyed by test identity and case
    /// index so reruns sample identical inputs (there is no shrinking).
    pub fn case_rng(module: &str, test: &str, case_index: u32) -> StdRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for byte in module
            .as_bytes()
            .iter()
            .chain(b"::")
            .chain(test.as_bytes())
            .chain(&case_index.to_le_bytes())
        {
            h ^= *byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        StdRng::seed_from_u64(h)
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a zero-argument test running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut passed: u32 = 0;
                let mut drawn: u32 = 0;
                while passed < config.cases {
                    if drawn > config.cases + config.max_global_rejects {
                        panic!(
                            "proptest '{}': gave up after {} samples ({} passed); \
                             prop_assume! rejects nearly everything",
                            stringify!($name), drawn, passed
                        );
                    }
                    let mut case_rng =
                        $crate::test_runner::case_rng(module_path!(), stringify!($name), drawn);
                    drawn += 1;
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&{ $strategy }, &mut case_rng);
                    )+
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed at case {}: {}",
                                stringify!($name),
                                drawn - 1,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strategy),+) $body)*
        }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// process) so the harness can report the offending inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Discards the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.0f64..2.0, n in 0usize..5) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!(n < 5);
        }

        #[test]
        fn vec_strategy_respects_size_range(
            v in prop::collection::vec(any::<bool>(), 3..9),
        ) {
            prop_assert!((3..9).contains(&v.len()));
        }

        #[test]
        fn fixed_size_vec_and_map(
            v in prop::collection::vec(0u64..100, 4).prop_map(|v| v.len()),
        ) {
            prop_assert_eq!(v, 4);
        }

        #[test]
        fn select_draws_from_list(x in prop::sample::select(vec![1u8, 3, 5])) {
            prop_assert!(x == 1 || x == 3 || x == 5);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(-1.0f64..1.0, 8);
        let mut r1 = crate::test_runner::case_rng("m", "t", 7);
        let mut r2 = crate::test_runner::case_rng("m", "t", 7);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}
