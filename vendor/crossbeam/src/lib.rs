//! Offline stand-in for the subset of `crossbeam` this workspace uses.
//!
//! * [`scope`] mirrors `crossbeam::thread::scope`, implemented on top of
//!   `std::thread::scope` (stable since 1.63): the closure receives a
//!   `&Scope`, spawned closures receive a `&Scope` argument too, and the
//!   call returns a `Result` (`Err` when a child thread panicked is
//!   approximated by propagating the panic, which the call sites in this
//!   workspace treat as fatal anyway).
//! * [`channel`] mirrors `crossbeam::channel`'s MPMC channels on top of
//!   `std::sync::mpsc`: senders clone natively, and the single std
//!   receiver is shared behind an `Arc<Mutex<_>>` so multiple consumers
//!   (the `openapi-serve` worker pool) can take turns blocking on it —
//!   dequeues serialize on the mutex, which is the standard std-mpsc
//!   worker-pool pattern and adequate for this workspace's coarse-grained
//!   jobs.

use std::any::Any;

pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowing, scoped threads can be spawned;
/// joins them all before returning.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

pub mod thread {
    pub use super::{scope, Scope};
}

pub mod channel {
    //! Multi-producer multi-consumer channels (see the crate docs).

    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// The sending half: clonable, usable from any thread.
    pub struct Sender<T> {
        inner: Tx<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking on a full bounded channel.
        ///
        /// # Errors
        /// [`SendError`] when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                Tx::Unbounded(s) => s.send(value),
                Tx::Bounded(s) => s.send(value),
            }
        }
    }

    /// The receiving half: clonable — clones share one queue, so each
    /// message is delivered to exactly one receiver.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            // A panicking holder leaves no partial state in the receiver;
            // ignore poison like parking_lot would.
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        /// Blocks until a message arrives.
        ///
        /// # Errors
        /// [`RecvError`] when the channel is empty and every sender has
        /// been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.lock().recv()
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        /// [`TryRecvError::Empty`] / [`TryRecvError::Disconnected`] as std.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.lock().try_recv()
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// # Errors
        /// [`RecvTimeoutError`] on timeout or disconnection.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.lock().recv_timeout(timeout)
        }
    }

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: Tx::Unbounded(tx),
            },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    /// Creates a channel that blocks senders beyond `capacity` queued
    /// messages.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (
            Sender {
                inner: Tx::Bounded(tx),
            },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data: Vec<u64> = (0..100).collect();
        let sum = AtomicUsize::new(0);
        super::scope(|s| {
            for chunk in data.chunks(25) {
                s.spawn(|_| {
                    let part: u64 = chunk.iter().sum();
                    sum.fetch_add(part as usize, Ordering::Relaxed);
                });
            }
        })
        .expect("no panics");
        assert_eq!(sum.into_inner(), (0..100).sum::<u64>() as usize);
    }

    #[test]
    fn channel_is_multi_producer_multi_consumer() {
        let (tx, rx) = super::channel::unbounded::<usize>();
        let consumed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let consumed = &consumed;
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        consumed.fetch_add(v, Ordering::Relaxed);
                    }
                });
            }
            for t in 0..2 {
                let tx = tx.clone();
                s.spawn(move || {
                    for v in 0..50 {
                        tx.send(v + t * 50).expect("receivers alive");
                    }
                });
            }
            drop(tx); // close the channel so consumers exit
        });
        assert_eq!(consumed.into_inner(), (0..100).sum::<usize>());
    }

    #[test]
    fn bounded_channel_delivers_in_order_single_consumer() {
        let (tx, rx) = super::channel::bounded::<u32>(2);
        let producer = std::thread::spawn(move || {
            for v in 0..10 {
                tx.send(v).unwrap();
            }
        });
        let got: Vec<u32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        producer.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(matches!(
            rx.try_recv(),
            Err(super::channel::TryRecvError::Disconnected)
        ));
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hits = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .expect("no panics");
        assert_eq!(hits.into_inner(), 1);
    }
}
