//! Offline stand-in for `crossbeam::scope`, implemented on top of
//! `std::thread::scope` (stable since 1.63, so the std version now covers
//! what the workspace needed crossbeam for). The API mirrors
//! `crossbeam::thread::scope`: the closure receives a `&Scope`, spawned
//! closures receive a `&Scope` argument too, and the call returns a
//! `Result` (`Err` when a child thread panicked is approximated by
//! propagating the panic, which the one call site in this workspace treats
//! as fatal anyway).

use std::any::Any;

pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowing, scoped threads can be spawned;
/// joins them all before returning.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

pub mod thread {
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data: Vec<u64> = (0..100).collect();
        let sum = AtomicUsize::new(0);
        super::scope(|s| {
            for chunk in data.chunks(25) {
                s.spawn(|_| {
                    let part: u64 = chunk.iter().sum();
                    sum.fetch_add(part as usize, Ordering::Relaxed);
                });
            }
        })
        .expect("no panics");
        assert_eq!(sum.into_inner(), (0..100).sum::<u64>() as usize);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hits = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .expect("no panics");
        assert_eq!(hits.into_inner(), 1);
    }
}
