//! The model-checking runtime: a deterministic "turnstile" scheduler plus a
//! vector-clock memory model.
//!
//! One OS thread exists per model thread, but exactly one is ever *running*
//! model code past a visible operation: every visible op waits for the
//! kernel's `current` token, applies its effect to the shared [`Kernel`],
//! asks the decision [`Path`] who runs next, and hands the token over. All
//! nondeterminism is funneled through [`Path::decide`], so a recorded
//! decision vector replays an execution exactly — the basis of the DFS.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering as StdOrdering;
use std::sync::{Arc, Condvar, Mutex};

/// Hard cap on model threads per execution (vector clocks are fixed-width).
pub(crate) const MAX_THREADS: usize = 8;

/// Distinguishes model iterations so location handles embedded in shims
/// (possibly living in statics across iterations) re-register lazily.
static GLOBAL_EPOCH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// A fixed-width vector clock over model thread ids.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub(crate) struct VClock(pub(crate) [u64; MAX_THREADS]);

impl VClock {
    pub(crate) fn join(&mut self, other: &VClock) {
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }
}

// ---------------------------------------------------------------------------
// DFS decision path
// ---------------------------------------------------------------------------

/// The recorded sequence of nondeterministic choices for one execution.
///
/// Replay consumes the prefix; past the prefix, `decide` records choice 0.
/// `advance` backtracks to the deepest incrementable decision, giving a
/// depth-first enumeration of the whole (bounded) decision tree.
#[derive(Default)]
pub(crate) struct Path {
    decisions: Vec<(usize, usize)>, // (chosen, total)
    pos: usize,
}

impl Path {
    fn decide(&mut self, total: usize) -> usize {
        debug_assert!(total >= 1);
        if self.pos < self.decisions.len() {
            let (chosen, recorded_total) = self.decisions[self.pos];
            assert_eq!(
                recorded_total, total,
                "non-deterministic loom model: a replayed execution reached a branch \
                 point with a different number of choices; model closures must be \
                 deterministic apart from scheduling"
            );
            self.pos += 1;
            chosen
        } else {
            self.decisions.push((0, total));
            self.pos += 1;
            0
        }
    }

    fn advance(&mut self) -> bool {
        while let Some(&(chosen, total)) = self.decisions.last() {
            if chosen + 1 < total {
                self.decisions.last_mut().expect("non-empty").0 = chosen + 1;
                self.pos = 0;
                return true;
            }
            self.decisions.pop();
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Modeled locations: atomics and locks
// ---------------------------------------------------------------------------

/// One store in an atomic's modification order.
#[derive(Clone, Copy)]
struct StoreRec {
    value: u64,
    writer: usize,
    /// The writer's own clock component at the store; `stamp <= clock[writer]`
    /// means the store happens-before an observer with that clock.
    stamp: u64,
    /// Clock published to acquire-loads: `Some` iff the store was release-ish
    /// or continues a release sequence (RMWs inherit it).
    release: Option<VClock>,
}

struct AtomicState {
    stores: Vec<StoreRec>,
    /// Per-thread floor into `stores`: a thread never reads older than what
    /// it last read or wrote (per-location coherence).
    last_seen: [usize; MAX_THREADS],
}

enum LockKind {
    Mutex { held: bool },
    RwLock { writer: bool, readers: usize },
}

struct LockState {
    kind: LockKind,
    /// Clock merged on every release and joined by every acquirer.
    clock: VClock,
}

enum Location {
    Atomic(AtomicState),
    Lock(LockState),
}

/// Lazily-registered kernel location id, embedded in each shim. The epoch
/// check makes handles self-healing across model iterations (and across
/// distinct models for long-lived shims).
pub(crate) struct LocHandle {
    epoch: std::sync::atomic::AtomicU64,
    id: std::sync::atomic::AtomicUsize,
}

impl LocHandle {
    pub(crate) const fn new() -> Self {
        LocHandle {
            epoch: std::sync::atomic::AtomicU64::new(0),
            id: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Resolve (registering if needed) under the kernel lock; `init` supplies
    /// the location's initial state.
    fn resolve(&self, k: &mut Kernel, epoch: u64, init: impl FnOnce() -> Location) -> usize {
        // Relaxed suffices: all accesses happen under the kernel mutex.
        if self.epoch.load(StdOrdering::Relaxed) == epoch {
            return self.id.load(StdOrdering::Relaxed);
        }
        let id = k.locations.len();
        k.locations.push(init());
        self.id.store(id, StdOrdering::Relaxed);
        self.epoch.store(epoch, StdOrdering::Relaxed);
        id
    }
}

// ---------------------------------------------------------------------------
// Kernel + scheduler
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum Run {
    Runnable,
    BlockedOnLock(usize),
    BlockedOnJoin(usize),
    Finished,
}

struct ThreadCell {
    state: Run,
    clock: VClock,
}

pub(crate) struct Kernel {
    threads: Vec<ThreadCell>,
    current: usize,
    locations: Vec<Location>,
    path: Path,
    preemptions: usize,
    max_preemptions: usize,
    cancelled: bool,
    failure: Option<Box<dyn Any + Send + 'static>>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

impl Kernel {
    fn new(path: Path, max_preemptions: usize) -> Self {
        Kernel {
            threads: vec![ThreadCell {
                state: Run::Runnable,
                clock: VClock::default(),
            }],
            current: 0,
            locations: Vec::new(),
            path,
            preemptions: 0,
            max_preemptions,
            cancelled: false,
            failure: None,
            os_handles: Vec::new(),
        }
    }

    fn fail(&mut self, payload: Box<dyn Any + Send + 'static>) {
        if self.failure.is_none() {
            self.failure = Some(payload);
        }
        self.cancelled = true;
    }

    /// Pick who runs next after `me` completed (or failed to complete) a
    /// visible op. Continuing `me` is always choice 0 when possible, so the
    /// DFS's greedy extension explores the preemption-free schedule first.
    fn reschedule(&mut self, me: usize) {
        let runnable: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == Run::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if self.threads.iter().any(|t| t.state != Run::Finished) {
                self.fail(Box::new(
                    "deadlock: every live model thread is blocked".to_string(),
                ));
            }
            self.current = usize::MAX;
            return;
        }
        let me_runnable = runnable.contains(&me);
        let options: Vec<usize> = if me_runnable {
            if self.preemptions >= self.max_preemptions {
                vec![me]
            } else {
                let mut v = vec![me];
                v.extend(runnable.iter().copied().filter(|&t| t != me));
                v
            }
        } else {
            runnable
        };
        let next = options[self.path.decide(options.len())];
        if me_runnable && next != me {
            self.preemptions += 1;
        }
        self.current = next;
    }

    fn atomic(&mut self, id: usize) -> &mut AtomicState {
        match &mut self.locations[id] {
            Location::Atomic(a) => a,
            Location::Lock(_) => unreachable!("location kind mismatch"),
        }
    }

    fn lock_state(&mut self, id: usize) -> &mut LockState {
        match &mut self.locations[id] {
            Location::Lock(l) => l,
            Location::Atomic(_) => unreachable!("location kind mismatch"),
        }
    }

    fn wake_lock_waiters(&mut self, id: usize) {
        for t in &mut self.threads {
            if t.state == Run::BlockedOnLock(id) {
                t.state = Run::Runnable;
            }
        }
    }
}

pub(crate) struct Rt {
    kernel: Mutex<Kernel>,
    cv: Condvar,
    epoch: u64,
}

/// Per-OS-thread binding to a running model.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) rt: Arc<Rt>,
    pub(crate) tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    static UNWINDING: Cell<bool> = const { Cell::new(false) };
}

pub(crate) fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// True while the current thread is unwinding from a panic inside a model.
/// Shim operations (e.g. a `MutexGuard` drop) must then apply best-effort,
/// non-blocking effects only — never wait or branch.
pub(crate) fn is_unwinding() -> bool {
    UNWINDING.with(|u| u.get())
}

/// Sentinel panic payload used to tear down sibling threads once an
/// execution is cancelled; never reported as the model's failure.
struct Cancelled;

fn filter_cancel(p: Box<dyn Any + Send + 'static>) -> Option<Box<dyn Any + Send + 'static>> {
    if p.is::<Cancelled>() {
        None
    } else {
        Some(p)
    }
}

static HOOK: std::sync::Once = std::sync::Once::new();

/// Installs a global panic hook (once) that flags model threads as unwinding
/// and suppresses the default backtrace print for panics inside a model: the
/// failure is re-raised from `model()` and reported by the test harness, and
/// expected "teeth" failures stay quiet.
fn install_hook() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_model = CTX.with(|c| c.borrow().is_some());
            if in_model {
                UNWINDING.with(|u| u.set(true));
            } else {
                prev(info);
            }
        }));
    });
}

enum Blocked {
    OnLock(usize),
    OnJoin(usize),
}

fn lock_kernel(rt: &Rt) -> std::sync::MutexGuard<'_, Kernel> {
    rt.kernel
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Perform one visible operation: wait for the scheduler token, apply `f`,
/// hand the token over. `f` may return `Err(Blocked)` to park the thread; it
/// is retried after being woken, so it must not consume decisions on a
/// blocking attempt.
fn step<R>(ctx: &Ctx, mut f: impl FnMut(&mut Kernel, usize) -> Result<R, Blocked>) -> R {
    let mut k = lock_kernel(&ctx.rt);
    loop {
        while !k.cancelled && k.current != ctx.tid {
            k = ctx
                .rt
                .cv
                .wait(k)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if k.cancelled {
            drop(k);
            std::panic::panic_any(Cancelled);
        }
        match f(&mut k, ctx.tid) {
            Ok(r) => {
                k.reschedule(ctx.tid);
                ctx.rt.cv.notify_all();
                return r;
            }
            Err(blocked) => {
                k.threads[ctx.tid].state = match blocked {
                    Blocked::OnLock(id) => Run::BlockedOnLock(id),
                    Blocked::OnJoin(tid) => Run::BlockedOnJoin(tid),
                };
                k.reschedule(ctx.tid);
                ctx.rt.cv.notify_all();
            }
        }
    }
}

fn finish_thread(ctx: &Ctx) {
    step(ctx, |k, me| {
        k.threads[me].state = Run::Finished;
        for t in &mut k.threads {
            if t.state == Run::BlockedOnJoin(me) {
                t.state = Run::Runnable;
            }
        }
        Ok(())
    })
}

/// Tear down after a panic on this model thread: record the payload (unless
/// it is the cancellation sentinel), cancel the execution, and wake everyone.
fn abort_thread(ctx: &Ctx, payload: Option<Box<dyn Any + Send + 'static>>) {
    let mut k = lock_kernel(&ctx.rt);
    if let Some(p) = payload {
        k.fail(p);
    } else {
        k.cancelled = true;
    }
    k.threads[ctx.tid].state = Run::Finished;
    ctx.rt.cv.notify_all();
}

// ---------------------------------------------------------------------------
// Operations used by the shims
// ---------------------------------------------------------------------------

fn acquire_ish(ord: StdOrdering) -> bool {
    matches!(
        ord,
        StdOrdering::Acquire | StdOrdering::AcqRel | StdOrdering::SeqCst
    )
}

fn release_ish(ord: StdOrdering) -> bool {
    matches!(
        ord,
        StdOrdering::Release | StdOrdering::AcqRel | StdOrdering::SeqCst
    )
}

fn init_atomic(value: u64) -> Location {
    Location::Atomic(AtomicState {
        // The initial value happens-before everything (stamp 0, zero release
        // clock): shims are published to model threads via real sync (Arc,
        // closure capture), so initialization is always visible.
        stores: vec![StoreRec {
            value,
            writer: 0,
            stamp: 0,
            release: Some(VClock::default()),
        }],
        last_seen: [0; MAX_THREADS],
    })
}

pub(crate) fn atomic_load(ctx: &Ctx, loc: &LocHandle, init: u64, ord: StdOrdering) -> u64 {
    let epoch = ctx.rt.epoch;
    step(ctx, |k, me| {
        let id = loc.resolve(k, epoch, || init_atomic(init));
        let clock = k.threads[me].clock;
        let (floor, len) = {
            let st = k.atomic(id);
            let mut floor = st.last_seen[me];
            for (i, s) in st.stores.iter().enumerate() {
                // Stores that happen-before this load bound how stale a read
                // may be; anything newer is a legal (branching) choice.
                if s.stamp <= clock.0[s.writer] {
                    floor = floor.max(i);
                }
            }
            (floor, st.stores.len())
        };
        let span = len - floor;
        let pick = if span == 1 || ord == StdOrdering::SeqCst {
            span - 1
        } else {
            k.path.decide(span)
        };
        let idx = floor + pick;
        let st = k.atomic(id);
        let (value, release) = {
            let s = &st.stores[idx];
            (s.value, s.release)
        };
        st.last_seen[me] = st.last_seen[me].max(idx);
        if acquire_ish(ord) {
            if let Some(rc) = release {
                k.threads[me].clock.join(&rc);
            }
        }
        Ok(value)
    })
}

pub(crate) fn atomic_store(ctx: &Ctx, loc: &LocHandle, init: u64, value: u64, ord: StdOrdering) {
    let epoch = ctx.rt.epoch;
    step(ctx, |k, me| {
        let id = loc.resolve(k, epoch, || init_atomic(init));
        k.threads[me].clock.0[me] += 1;
        let clock = k.threads[me].clock;
        let release = release_ish(ord).then_some(clock);
        let st = k.atomic(id);
        st.stores.push(StoreRec {
            value,
            writer: me,
            stamp: clock.0[me],
            release,
        });
        st.last_seen[me] = st.stores.len() - 1;
        Ok(())
    })
}

/// Read-modify-write: always reads the latest store in modification order
/// (RMW atomicity), and continues any release sequence it interrupts — an
/// acquire load of the new store still synchronizes with the earlier release
/// head, but with *this* writer only if `ord` is itself release-ish. This is
/// exactly why a Relaxed `fetch_sub` on a budget counter publishes nothing of
/// the releasing thread's prior writes.
pub(crate) fn atomic_rmw(
    ctx: &Ctx,
    loc: &LocHandle,
    init: u64,
    ord: StdOrdering,
    mut f: impl FnMut(u64) -> u64,
) -> u64 {
    let epoch = ctx.rt.epoch;
    step(ctx, |k, me| {
        let id = loc.resolve(k, epoch, || init_atomic(init));
        let (old, prev_release) = {
            let st = k.atomic(id);
            let s = st.stores.last().expect("non-empty store history");
            (s.value, s.release)
        };
        if acquire_ish(ord) {
            if let Some(rc) = prev_release {
                k.threads[me].clock.join(&rc);
            }
        }
        k.threads[me].clock.0[me] += 1;
        let clock = k.threads[me].clock;
        let release = if release_ish(ord) {
            let mut c = clock;
            if let Some(p) = prev_release {
                c.join(&p);
            }
            Some(c)
        } else {
            prev_release
        };
        let st = k.atomic(id);
        st.stores.push(StoreRec {
            value: f(old),
            writer: me,
            stamp: clock.0[me],
            release,
        });
        st.last_seen[me] = st.stores.len() - 1;
        Ok(old)
    })
}

fn init_mutex() -> Location {
    Location::Lock(LockState {
        kind: LockKind::Mutex { held: false },
        clock: VClock::default(),
    })
}

fn init_rwlock() -> Location {
    Location::Lock(LockState {
        kind: LockKind::RwLock {
            writer: false,
            readers: 0,
        },
        clock: VClock::default(),
    })
}

pub(crate) fn mutex_lock(ctx: &Ctx, loc: &LocHandle) {
    let epoch = ctx.rt.epoch;
    step(ctx, |k, me| {
        let id = loc.resolve(k, epoch, init_mutex);
        let l = k.lock_state(id);
        match &mut l.kind {
            LockKind::Mutex { held } => {
                if *held {
                    return Err(Blocked::OnLock(id));
                }
                *held = true;
            }
            LockKind::RwLock { .. } => unreachable!("lock kind mismatch"),
        }
        let lc = l.clock;
        k.threads[me].clock.join(&lc);
        Ok(())
    })
}

pub(crate) fn mutex_try_lock(ctx: &Ctx, loc: &LocHandle) -> bool {
    let epoch = ctx.rt.epoch;
    step(ctx, |k, me| {
        let id = loc.resolve(k, epoch, init_mutex);
        let l = k.lock_state(id);
        match &mut l.kind {
            LockKind::Mutex { held } => {
                if *held {
                    return Ok(false);
                }
                *held = true;
            }
            LockKind::RwLock { .. } => unreachable!("lock kind mismatch"),
        }
        let lc = l.clock;
        k.threads[me].clock.join(&lc);
        Ok(true)
    })
}

pub(crate) fn mutex_unlock(ctx: &Ctx, loc: &LocHandle) {
    if is_unwinding() {
        // Guard dropped during a panic: apply the state change without
        // scheduling so nothing deadlocks while the execution tears down.
        // The epoch check ensures the handle really names one of *this*
        // execution's locations.
        let mut k = lock_kernel(&ctx.rt);
        if loc.epoch.load(StdOrdering::Relaxed) == ctx.rt.epoch {
            if let Some(Location::Lock(l)) = k.locations.get_mut(loc.id.load(StdOrdering::Relaxed))
            {
                if let LockKind::Mutex { held } = &mut l.kind {
                    *held = false;
                }
            }
        }
        ctx.rt.cv.notify_all();
        return;
    }
    let epoch = ctx.rt.epoch;
    step(ctx, |k, me| {
        let id = loc.resolve(k, epoch, init_mutex);
        k.threads[me].clock.0[me] += 1;
        let clock = k.threads[me].clock;
        let l = k.lock_state(id);
        match &mut l.kind {
            LockKind::Mutex { held } => *held = false,
            LockKind::RwLock { .. } => unreachable!("lock kind mismatch"),
        }
        l.clock.join(&clock);
        k.wake_lock_waiters(id);
        Ok(())
    })
}

pub(crate) fn rwlock_lock(ctx: &Ctx, loc: &LocHandle, write: bool) {
    let epoch = ctx.rt.epoch;
    step(ctx, |k, me| {
        let id = loc.resolve(k, epoch, init_rwlock);
        let l = k.lock_state(id);
        match &mut l.kind {
            LockKind::RwLock { writer, readers } => {
                if *writer || (write && *readers > 0) {
                    return Err(Blocked::OnLock(id));
                }
                if write {
                    *writer = true;
                } else {
                    *readers += 1;
                }
            }
            LockKind::Mutex { .. } => unreachable!("lock kind mismatch"),
        }
        let lc = l.clock;
        k.threads[me].clock.join(&lc);
        Ok(())
    })
}

pub(crate) fn rwlock_unlock(ctx: &Ctx, loc: &LocHandle, write: bool) {
    if is_unwinding() {
        let mut k = lock_kernel(&ctx.rt);
        if loc.epoch.load(StdOrdering::Relaxed) == ctx.rt.epoch {
            if let Some(Location::Lock(l)) = k.locations.get_mut(loc.id.load(StdOrdering::Relaxed))
            {
                if let LockKind::RwLock { writer, readers } = &mut l.kind {
                    if write {
                        *writer = false;
                    } else {
                        *readers = readers.saturating_sub(1);
                    }
                }
            }
        }
        ctx.rt.cv.notify_all();
        return;
    }
    let epoch = ctx.rt.epoch;
    step(ctx, |k, me| {
        let id = loc.resolve(k, epoch, init_rwlock);
        k.threads[me].clock.0[me] += 1;
        let clock = k.threads[me].clock;
        let l = k.lock_state(id);
        match &mut l.kind {
            LockKind::RwLock { writer, readers } => {
                if write {
                    *writer = false;
                } else {
                    *readers -= 1;
                }
            }
            LockKind::Mutex { .. } => unreachable!("lock kind mismatch"),
        }
        // Readers over-synchronize slightly by also merging into the lock
        // clock; harmless (adds edges, never removes real behaviors we rely
        // on finding — no checked protocol publishes via a read-unlock).
        l.clock.join(&clock);
        k.wake_lock_waiters(id);
        Ok(())
    })
}

pub(crate) fn yield_now(ctx: &Ctx) {
    step(ctx, |_, _| Ok(()));
}

// ---------------------------------------------------------------------------
// Spawn / join / model
// ---------------------------------------------------------------------------

/// Register a new model thread; returns its tid. The OS thread itself is
/// spawned by the caller (`thread::spawn`).
pub(crate) fn register_thread(ctx: &Ctx) -> usize {
    step(ctx, |k, me| {
        assert!(
            k.threads.len() < MAX_THREADS,
            "loom model exceeded MAX_THREADS ({MAX_THREADS})"
        );
        let tid = k.threads.len();
        let clock = k.threads[me].clock;
        // Tick the parent so its post-spawn events are not ordered before the
        // child's view of the spawn.
        k.threads[me].clock.0[me] += 1;
        k.threads.push(ThreadCell {
            state: Run::Runnable,
            clock,
        });
        Ok(tid)
    })
}

pub(crate) fn track_os_handle(ctx: &Ctx, handle: std::thread::JoinHandle<()>) {
    lock_kernel(&ctx.rt).os_handles.push(handle);
}

pub(crate) fn join_thread(ctx: &Ctx, target: usize) {
    step(ctx, |k, me| {
        if k.threads[target].state != Run::Finished {
            return Err(Blocked::OnJoin(target));
        }
        let child_clock = k.threads[target].clock;
        k.threads[me].clock.join(&child_clock);
        Ok(())
    })
}

/// Body run on each spawned model thread's OS thread.
pub(crate) fn run_model_thread(ctx: Ctx, body: impl FnOnce()) {
    set_ctx(Some(ctx.clone()));
    let result = catch_unwind(AssertUnwindSafe(|| {
        body();
        finish_thread(&ctx);
    }));
    if let Err(p) = result {
        abort_thread(&ctx, filter_cancel(p));
    }
    UNWINDING.with(|u| u.set(false));
    set_ctx(None);
}

/// Exhaustively explore the interleavings of `f` (up to the preemption
/// bound), panicking with the first failing execution's payload.
pub fn model<F: Fn()>(f: F) {
    install_hook();
    assert!(
        current_ctx().is_none(),
        "nested loom::model calls are not supported"
    );
    let max_preemptions = env_u64("LOOM_MAX_PREEMPTIONS", 2) as usize;
    let max_iterations = env_u64("LOOM_MAX_ITERATIONS", 200_000);
    let mut path = Path::default();
    let mut iterations: u64 = 0;
    loop {
        iterations += 1;
        assert!(
            iterations <= max_iterations,
            "loom model exceeded {max_iterations} iterations; shrink the model \
             or raise LOOM_MAX_ITERATIONS"
        );
        let rt = Arc::new(Rt {
            kernel: Mutex::new(Kernel::new(path, max_preemptions)),
            cv: Condvar::new(),
            epoch: GLOBAL_EPOCH.fetch_add(1, StdOrdering::Relaxed),
        });
        let ctx = Ctx {
            rt: rt.clone(),
            tid: 0,
        };
        set_ctx(Some(ctx.clone()));
        let result = catch_unwind(AssertUnwindSafe(|| {
            f();
            finish_thread(&ctx);
        }));
        if let Err(p) = result {
            abort_thread(&ctx, filter_cancel(p));
        }
        UNWINDING.with(|u| u.set(false));
        // Join every OS thread this execution spawned (loop: a child may
        // itself spawn before finishing).
        loop {
            let handles: Vec<_> = lock_kernel(&rt).os_handles.drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        set_ctx(None);
        let mut k = lock_kernel(&rt);
        if let Some(p) = k.failure.take() {
            drop(k);
            std::panic::resume_unwind(p);
        }
        path = std::mem::take(&mut k.path);
        drop(k);
        if !path.advance() {
            return;
        }
    }
}
