//! Model-aware `thread::spawn`/`join`/`yield_now`.
//!
//! Inside `loom::model`, spawn registers a model thread whose visible
//! operations the scheduler controls; join is itself a visible (possibly
//! blocking) operation that happens-after everything the child did. Outside
//! a model, these delegate to `std::thread`.

use crate::rt;
use std::sync::{Arc, Mutex};

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        tid: usize,
        slot: Arc<Mutex<Option<T>>>,
    },
}

/// Handle to a spawned thread; `join` returns the closure's value.
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// Inside a model a child panic cancels the whole execution (the failure
    /// is re-raised from `loom::model`), so the `Err` variant is only ever
    /// observed on the std fallback path.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Std(h) => h.join(),
            Inner::Model { tid, slot } => {
                let ctx = rt::current_ctx().expect("loom JoinHandle joined outside its model");
                rt::join_thread(&ctx, tid);
                let value = slot
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .expect("joined model thread left no result");
                Ok(value)
            }
        }
    }
}

/// Spawn a thread. Inside a model the thread's visible operations come under
/// scheduler control; outside, this is `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current_ctx() {
        None => JoinHandle(Inner::Std(std::thread::spawn(f))),
        Some(ctx) => {
            let tid = rt::register_thread(&ctx);
            let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
            let slot2 = slot.clone();
            let child_ctx = rt::Ctx {
                rt: ctx.rt.clone(),
                tid,
            };
            let os = std::thread::Builder::new()
                .name(format!("loom-{tid}"))
                .spawn(move || {
                    rt::run_model_thread(child_ctx, move || {
                        let value = f();
                        *slot2
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(value);
                    });
                })
                .expect("failed to spawn loom model thread");
            rt::track_os_handle(&ctx, os);
            JoinHandle(Inner::Model { tid, slot })
        }
    }
}

/// A pure scheduling point inside a model; `std::thread::yield_now` outside.
pub fn yield_now() {
    match rt::current_ctx() {
        None => std::thread::yield_now(),
        Some(ctx) => rt::yield_now(&ctx),
    }
}
