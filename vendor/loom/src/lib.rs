//! Offline stand-in for the subset of `loom` this workspace uses.
//!
//! `loom::model(f)` runs the closure `f` repeatedly, exploring every
//! distinguishable interleaving of the *visible operations* the model threads
//! perform (operations on the [`sync`] shims plus [`thread`] spawn/join/yield)
//! up to a preemption bound. A depth-first search over the tree of scheduling
//! decisions drives the exploration: each iteration replays a recorded prefix
//! of decisions and then extends it greedily, exactly like the real loom.
//!
//! What makes the checker able to find *memory-ordering* bugs — not just lock
//! races — is that the atomic shims model C11-style acquire/release
//! visibility with vector clocks. Every atomic keeps its full store history;
//! a `Relaxed` load may read any coherence-permissible stale store (a branch
//! point in the DFS), while an `Acquire` load that reads a `Release` store
//! joins the releasing thread's clock, which narrows what *later* loads may
//! return. A too-weak ordering therefore manifests as a concrete execution
//! where a stale value is observed, and the model's assertion fails.
//!
//! Intentional simplifications relative to real loom / full C11:
//!
//! - `SeqCst` is modeled as acquire+release that always reads the latest
//!   store in modification order. That is slightly stronger than C11 seq_cst
//!   in mixed-ordering programs, so a bug that *requires* an SC-only anomaly
//!   can be missed; none of the protocols checked here rely on seq_cst
//!   subtleties.
//! - Exploration is bounded by `LOOM_MAX_PREEMPTIONS` (default 2, like real
//!   loom) and a runaway guard of `LOOM_MAX_ITERATIONS` iterations.
//! - At most 8 model threads per execution.
//! - Model closures must be deterministic apart from scheduling (no wall
//!   clock, no ambient randomness); replay divergence panics.
//!
//! Outside `model()` every shim falls back to the plain `std::sync`
//! equivalent, so code compiled against these types (the whole workspace,
//! under `--cfg loom`) still runs normally when no model is active; only the
//! dedicated loom tests engage the scheduler. Atomics created *outside* a
//! model keep their value across iterations; create all model state inside
//! the closure.

mod rt;
pub mod sync;
pub mod thread;

pub use rt::model;

#[cfg(test)]
mod tests {
    use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use crate::sync::{Arc, Mutex};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Asserts that exhaustive exploration finds an execution violating the
    /// model's assertions.
    fn checker_catches(f: impl Fn() + Send + Sync + 'static) {
        let caught = catch_unwind(AssertUnwindSafe(|| crate::model(f))).is_err();
        assert!(caught, "model checker failed to catch a seeded bug");
    }

    #[test]
    fn sequential_model_runs_once() {
        crate::model(|| {
            let a = AtomicU64::new(1);
            a.store(2, Ordering::Relaxed);
            assert_eq!(a.load(Ordering::Relaxed), 2);
        });
    }

    #[test]
    fn fallback_outside_model_behaves_like_std() {
        let a = AtomicU64::new(7);
        assert_eq!(a.fetch_add(1, Ordering::Relaxed), 7);
        assert_eq!(a.load(Ordering::Acquire), 8);
        let m = Mutex::new(3u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 4);
    }

    #[test]
    fn release_acquire_message_passing_is_verified() {
        crate::model(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicUsize::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = crate::thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join().unwrap();
        });
    }

    #[test]
    fn relaxed_message_passing_is_caught() {
        // The same protocol with a Relaxed publish: an execution exists where
        // the reader sees the flag but stale data. Exploration must find it.
        checker_catches(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicUsize::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = crate::thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Relaxed);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join().unwrap();
        });
    }

    #[test]
    fn relaxed_acquire_side_is_caught_too() {
        checker_catches(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicUsize::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = crate::thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Relaxed) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join().unwrap();
        });
    }

    #[test]
    fn rmw_increments_are_never_lost() {
        crate::model(|| {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = n.clone();
            let t = crate::thread::spawn(move || {
                n2.fetch_add(1, Ordering::Relaxed);
            });
            n.fetch_add(1, Ordering::Relaxed);
            t.join().unwrap();
            assert_eq!(n.load(Ordering::Relaxed), 2);
        });
    }

    #[test]
    fn torn_load_store_increment_is_caught() {
        // load+store instead of fetch_add: an interleaving exists where both
        // threads read 0 and one increment is lost.
        checker_catches(|| {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = n.clone();
            let t = crate::thread::spawn(move || {
                let v = n2.load(Ordering::Relaxed);
                n2.store(v + 1, Ordering::Relaxed);
            });
            let v = n.load(Ordering::Relaxed);
            n.store(v + 1, Ordering::Relaxed);
            t.join().unwrap();
            assert_eq!(n.load(Ordering::Relaxed), 2);
        });
    }

    #[test]
    fn mutex_provides_mutual_exclusion_and_visibility() {
        crate::model(|| {
            let m = Arc::new(Mutex::new(0u64));
            let m2 = m.clone();
            let t = crate::thread::spawn(move || {
                *m2.lock() += 1;
            });
            *m.lock() += 1;
            t.join().unwrap();
            assert_eq!(*m.lock(), 2);
        });
    }

    #[test]
    fn join_synchronizes_with_the_joined_thread() {
        crate::model(|| {
            let data = Arc::new(AtomicU64::new(0));
            let d2 = data.clone();
            let t = crate::thread::spawn(move || {
                d2.store(5, Ordering::Relaxed);
            });
            t.join().unwrap();
            // join() happens-after everything the child did, even Relaxed.
            assert_eq!(data.load(Ordering::Relaxed), 5);
        });
    }

    #[test]
    fn deadlock_is_detected() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            crate::model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (a.clone(), b.clone());
                let t = crate::thread::spawn(move || {
                    let _ga = a2.lock();
                    let _gb = b2.lock();
                });
                let _gb = b.lock();
                let _ga = a.lock();
                drop((_gb, _ga));
                t.join().unwrap();
            });
        }));
        assert!(caught.is_err(), "AB/BA lock order must deadlock some path");
    }
}
