//! Checked `sync` shims: atomics with modeled acquire/release visibility,
//! and `Mutex`/`RwLock` whose lock/unlock edges the scheduler controls.
//!
//! Every shim carries a `std` mirror. Outside a model (or while unwinding
//! from a model failure) operations hit the mirror directly, so code
//! compiled against these types behaves exactly like `std::sync` when no
//! model is active. Inside a model the mirror tracks the latest store so a
//! shim living in a `static` re-registers with its carried-over value.
//!
//! The lock guards follow parking_lot's API shape (`lock()` returns the
//! guard directly, no poisoning), matching the facade these shims stand
//! behind.

use crate::rt;
use std::fmt;
use std::ops::{Deref, DerefMut};

pub use std::sync::Arc;

/// Atomic types whose loads may observe coherence-permissible stale stores.
pub mod atomic {
    use super::rt;
    pub use std::sync::atomic::Ordering;

    macro_rules! checked_atomic {
        ($name:ident, $std:ty, $raw:ty) => {
            /// Checked stand-in for the `std::sync::atomic` type of the same
            /// name. Inside `loom::model`, loads/stores/RMWs are visible
            /// operations with modeled acquire/release semantics.
            pub struct $name {
                mirror: $std,
                loc: rt::LocHandle,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub const fn new(value: $raw) -> Self {
                    $name {
                        mirror: <$std>::new(value),
                        loc: rt::LocHandle::new(),
                    }
                }

                fn init(&self) -> u64 {
                    self.mirror.load(Ordering::Relaxed) as u64
                }

                /// Atomic load; under a model, `Relaxed`/`Acquire` loads may
                /// branch over every stale store the memory model permits.
                pub fn load(&self, order: Ordering) -> $raw {
                    match rt::current_ctx() {
                        Some(ctx) if !rt::is_unwinding() => {
                            rt::atomic_load(&ctx, &self.loc, self.init(), order) as $raw
                        }
                        _ => self.mirror.load(order),
                    }
                }

                /// Atomic store.
                pub fn store(&self, value: $raw, order: Ordering) {
                    match rt::current_ctx() {
                        Some(ctx) if !rt::is_unwinding() => {
                            rt::atomic_store(&ctx, &self.loc, self.init(), value as u64, order);
                            self.mirror.store(value, Ordering::Relaxed);
                        }
                        _ => self.mirror.store(value, order),
                    }
                }

                /// Atomic swap; returns the previous value.
                #[allow(clippy::unnecessary_cast)]
                pub fn swap(&self, value: $raw, order: Ordering) -> $raw {
                    self.rmw(order, |_| value as u64, |m| m.swap(value, order))
                }

                // The u64 round-trips are identity casts for AtomicU64 only.
                #[allow(clippy::unnecessary_cast)]
                fn rmw(
                    &self,
                    order: Ordering,
                    model_op: impl FnMut(u64) -> u64,
                    std_op: impl FnOnce(&$std) -> $raw,
                ) -> $raw {
                    match rt::current_ctx() {
                        Some(ctx) if !rt::is_unwinding() => {
                            let mut op = model_op;
                            let old = rt::atomic_rmw(&ctx, &self.loc, self.init(), order, &mut op);
                            self.mirror.store(op(old) as $raw, Ordering::Relaxed);
                            old as $raw
                        }
                        _ => std_op(&self.mirror),
                    }
                }

                /// Consumes the atomic, returning the contained value.
                pub fn into_inner(self) -> $raw {
                    self.mirror.into_inner()
                }

                /// Atomic compare-exchange: stores `new` iff the current
                /// value equals `current`; `Ok(previous)` on success,
                /// `Err(actual)` otherwise.
                ///
                /// Model simplification: a failed exchange is modeled as
                /// an RMW that rewrites the observed value (C11 treats it
                /// as a pure load at `failure` ordering). That is slightly
                /// *stronger* than real failed-CAS semantics, so a bug
                /// that requires failed-CAS weakness could be missed; the
                /// protocols checked here only rely on the success path.
                #[allow(clippy::unnecessary_cast)]
                pub fn compare_exchange(
                    &self,
                    current: $raw,
                    new: $raw,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$raw, $raw> {
                    let old = self.rmw(
                        success,
                        |v| if v == current as u64 { new as u64 } else { v },
                        |m| match m.compare_exchange(current, new, success, failure) {
                            Ok(v) | Err(v) => v,
                        },
                    );
                    if old == current {
                        Ok(old)
                    } else {
                        Err(old)
                    }
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.debug_tuple(stringify!($name))
                        .field(&self.load(Ordering::Relaxed))
                        .finish()
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }
        };
    }

    checked_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    checked_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    macro_rules! int_rmw_ops {
        ($name:ident, $raw:ty) => {
            #[allow(clippy::unnecessary_cast)]
            impl $name {
                /// Atomic add; returns the previous value.
                pub fn fetch_add(&self, value: $raw, order: Ordering) -> $raw {
                    self.rmw(
                        order,
                        |v| (v as $raw).wrapping_add(value) as u64,
                        |m| m.fetch_add(value, order),
                    )
                }

                /// Atomic subtract; returns the previous value.
                pub fn fetch_sub(&self, value: $raw, order: Ordering) -> $raw {
                    self.rmw(
                        order,
                        |v| (v as $raw).wrapping_sub(value) as u64,
                        |m| m.fetch_sub(value, order),
                    )
                }

                /// Atomic max; returns the previous value.
                pub fn fetch_max(&self, value: $raw, order: Ordering) -> $raw {
                    self.rmw(
                        order,
                        |v| (v as $raw).max(value) as u64,
                        |m| m.fetch_max(value, order),
                    )
                }
            }
        };
    }

    int_rmw_ops!(AtomicU64, u64);
    int_rmw_ops!(AtomicUsize, usize);

    /// Checked stand-in for `std::sync::atomic::AtomicBool`.
    pub struct AtomicBool {
        mirror: std::sync::atomic::AtomicBool,
        loc: rt::LocHandle,
    }

    impl AtomicBool {
        /// Creates a new atomic with the given initial value.
        pub const fn new(value: bool) -> Self {
            AtomicBool {
                mirror: std::sync::atomic::AtomicBool::new(value),
                loc: rt::LocHandle::new(),
            }
        }

        fn init(&self) -> u64 {
            self.mirror.load(Ordering::Relaxed) as u64
        }

        /// Atomic load.
        pub fn load(&self, order: Ordering) -> bool {
            match rt::current_ctx() {
                Some(ctx) if !rt::is_unwinding() => {
                    rt::atomic_load(&ctx, &self.loc, self.init(), order) != 0
                }
                _ => self.mirror.load(order),
            }
        }

        /// Atomic store.
        pub fn store(&self, value: bool, order: Ordering) {
            match rt::current_ctx() {
                Some(ctx) if !rt::is_unwinding() => {
                    rt::atomic_store(&ctx, &self.loc, self.init(), value as u64, order);
                    self.mirror.store(value, Ordering::Relaxed);
                }
                _ => self.mirror.store(value, order),
            }
        }

        /// Atomic swap; returns the previous value.
        pub fn swap(&self, value: bool, order: Ordering) -> bool {
            match rt::current_ctx() {
                Some(ctx) if !rt::is_unwinding() => {
                    let old = rt::atomic_rmw(&ctx, &self.loc, self.init(), order, |_| value as u64);
                    self.mirror.store(value, Ordering::Relaxed);
                    old != 0
                }
                _ => self.mirror.swap(value, order),
            }
        }

        /// Consumes the atomic, returning the contained value.
        pub fn into_inner(self) -> bool {
            self.mirror.into_inner()
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_tuple("AtomicBool")
                .field(&self.load(Ordering::Relaxed))
                .finish()
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            AtomicBool::new(false)
        }
    }
}

/// Checked mutex with parking_lot-shaped API (`lock()` returns the guard,
/// no poisoning). Lock acquisition is a blocking visible operation; unlock
/// publishes the holder's clock to the next acquirer.
pub struct Mutex<T: ?Sized> {
    loc: rt::LocHandle,
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; unlocks (a visible op) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            loc: rt::LocHandle::new(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking the model thread until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some(ctx) = rt::current_ctx() {
            if !rt::is_unwinding() {
                rt::mutex_lock(&ctx, &self.loc);
            }
        }
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        MutexGuard {
            lock: self,
            inner: Some(inner),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if let Some(ctx) = rt::current_ctx() {
            if !rt::is_unwinding() && !rt::mutex_try_lock(&ctx, &self.loc) {
                return None;
            }
        }
        match self.inner.try_lock() {
            Ok(inner) => Some(MutexGuard {
                lock: self,
                inner: Some(inner),
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                lock: self,
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first so the next model thread granted the
        // location never contends on the std mutex.
        drop(self.inner.take());
        if let Some(ctx) = rt::current_ctx() {
            rt::mutex_unlock(&ctx, &self.lock.loc);
        }
    }
}

/// Checked reader-writer lock with parking_lot-shaped API.
pub struct RwLock<T: ?Sized> {
    loc: rt::LocHandle,
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            loc: rt::LocHandle::new(),
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        if let Some(ctx) = rt::current_ctx() {
            if !rt::is_unwinding() {
                rt::rwlock_lock(&ctx, &self.loc, false);
            }
        }
        let inner = self
            .inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        RwLockReadGuard {
            lock: self,
            inner: Some(inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if let Some(ctx) = rt::current_ctx() {
            if !rt::is_unwinding() {
                rt::rwlock_lock(&ctx, &self.loc, true);
            }
        }
        let inner = self
            .inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        RwLockWriteGuard {
            lock: self,
            inner: Some(inner),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some(ctx) = rt::current_ctx() {
            rt::rwlock_unlock(&ctx, &self.lock.loc, false);
        }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some(ctx) = rt::current_ctx() {
            rt::rwlock_unlock(&ctx, &self.lock.loc, true);
        }
    }
}
