//! No-op derive macros backing the offline `serde` stand-in.
//!
//! The workspace derives `Serialize`/`Deserialize` on a handful of report
//! structs but never serializes through serde (persistence is hand-rolled —
//! see `openapi_linalg::codec`). Emitting an empty token stream keeps those
//! derives compiling without pulling `syn`/`quote`, which are unavailable
//! offline. Swapping the real serde back in requires no source changes.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
