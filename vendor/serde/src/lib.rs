//! Offline stand-in for the `serde` derive surface this workspace touches.
//!
//! Only `derive(Serialize, Deserialize)` and the corresponding trait names
//! are used (on report/summary structs); no serializer is ever driven, since
//! the workspace's persistence layer is the hand-rolled binary codec in
//! `openapi_linalg::codec`. The traits are therefore markers and the derives
//! are no-ops, preserving source compatibility with real serde.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

/// Mirror of serde's `de` module for code that names the traits fully.
pub mod de {
    pub use super::Deserialize;
}

pub mod ser {
    pub use super::Serialize;
}
