//! Offline stand-in for the subset of `rand` 0.8 used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a small, deterministic implementation of the `rand` API surface it
//! actually calls: `StdRng` (xoshiro256++ seeded via SplitMix64),
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::SliceRandom::{shuffle, choose}`. Signatures mirror rand 0.8 so the
//! workspace can be repointed at the real crate without source changes.

/// A source of random 32/64-bit words — the object-safe core trait.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        T: SampleUniform,
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }

    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.fill_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a "standard" full-range / unit-interval distribution.
pub trait SampleUniform {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly, mirroring `rand::distributions`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as SampleUniform>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // Scale by 2^-53 - 1 ulps so `hi` itself is reachable.
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Slices fillable by `Rng::fill`.
pub trait Fill {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl Fill for [f64] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for v in self.iter_mut() {
            *v = f64::sample_standard(rng);
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for rand's `StdRng`.
    ///
    /// Not cryptographically secure (the real `StdRng` is ChaCha12), but a
    /// high-quality statistical PRNG, which is all the workspace needs:
    /// every call site seeds explicitly via `seed_from_u64`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0xBF58476D1CE4E5B9,
                    0x94D049BB133111EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, matching rand's iteration order contract
            // (deterministic for a given rng state).
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

/// `rand::random` convenience using an OS-independent fallback seed.
pub fn random<T: SampleUniform>() -> T {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x853C49E6748FEA9B);
    let mut rng = <rngs::StdRng as SeedableRng>::seed_from_u64(nanos);
    T::sample_standard(&mut rng)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&x));
            let n = rng.gen_range(0..10);
            assert!((0..10).contains(&n));
            let m = rng.gen_range(3..=5);
            assert!((3..=5).contains(&m));
            let y = rng.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&y));
        }
    }

    #[test]
    fn unit_interval_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left 100 elements in order");
    }
}
