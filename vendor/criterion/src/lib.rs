//! Offline stand-in for the subset of Criterion.rs this workspace uses.
//!
//! Provides `criterion_group!`/`criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `Bencher::{iter, iter_batched}`, `BenchmarkId`, and
//! `BatchSize`, with wall-clock timing and a plain-text report instead of
//! Criterion's statistical machinery. Each benchmark warms up briefly, then
//! times batches until either `sample_size` samples or a time budget is
//! reached, and prints the per-iteration mean and min. Good enough to keep
//! the paper's Figures 2–7 / Table 1 harness runnable and comparable
//! run-over-run; swap in real Criterion for publication-grade statistics.

use std::time::{Duration, Instant};

/// Upper bound on wall-clock time spent measuring one benchmark function.
const TIME_BUDGET: Duration = Duration::from_millis(500);

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost; only a hint here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted where Criterion takes a benchmark name.
pub struct IntoBenchmarkId(String);

impl From<&str> for IntoBenchmarkId {
    fn from(s: &str) -> Self {
        IntoBenchmarkId(s.to_string())
    }
}

impl From<String> for IntoBenchmarkId {
    fn from(s: String) -> Self {
        IntoBenchmarkId(s)
    }
}

impl From<&String> for IntoBenchmarkId {
    fn from(s: &String) -> Self {
        IntoBenchmarkId(s.clone())
    }
}

impl From<BenchmarkId> for IntoBenchmarkId {
    fn from(id: BenchmarkId) -> Self {
        IntoBenchmarkId(id.id)
    }
}

/// Timing state handed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch sizing: aim for samples of ≥ ~100µs each.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        self.iters_per_sample =
            (Duration::from_micros(100).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let budget_start = Instant::now();
        while self.samples.len() < self.sample_size && budget_start.elapsed() < TIME_BUDGET {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Setup runs outside the timed section, once per measured call.
        let budget_start = Instant::now();
        self.iters_per_sample = 1;
        while self.samples.len() < self.sample_size && budget_start.elapsed() < TIME_BUDGET {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("bench {id:<40} (no samples)");
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "bench {id:<40} mean {:>12} min {:>12} ({} samples x {} iters)",
            fmt_ns(mean),
            fmt_ns(min),
            self.samples.len(),
            self.iters_per_sample
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named cluster of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<IntoBenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&full);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<IntoBenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&full);
        self
    }

    pub fn finish(self) {}
}

/// The harness entry point; one per bench binary.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<IntoBenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.into().0;
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&full);
        self
    }

    /// Mirror of Criterion's CLI handling; accepts and ignores the args
    /// cargo-bench forwards (`--bench`, filters) so harness=false targets run.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_function(BenchmarkId::new("sum_n", 100), |b| {
            b.iter_batched(
                || (0..100u64).collect::<Vec<_>>(),
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_reports() {
        benches();
    }
}
