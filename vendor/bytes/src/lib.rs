//! Offline stand-in for the subset of the `bytes` crate this workspace uses:
//! the `Buf` / `BufMut` traits over `&[u8]` and `Vec<u8>`. The persistence
//! codecs (`openapi-linalg`, `openapi-lmt`, `openapi-nn`, `openapi-data`)
//! only need cursor-style little/big-endian reads and appends, so that is
//! all this implements. Semantics match `bytes` 1.x: `get_*`/`copy_to_slice`
//! panic when fewer than the needed bytes remain (callers here always check
//! `remaining()` first and surface typed errors instead).

/// Read side: a cursor over a contiguous byte region.
pub trait Buf {
    fn remaining(&self) -> usize;

    fn chunk(&self) -> &[u8];

    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: need {} bytes, {} remain",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past end of buffer");
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Write side: an append-only byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut};

    #[test]
    fn round_trips_le_scalars() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u16_le(513);
        out.put_u64_le(0xDEADBEEF);
        out.put_f64_le(-2.5);
        let mut buf = out.as_slice();
        assert_eq!(buf.remaining(), 1 + 2 + 8 + 8);
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16_le(), 513);
        assert_eq!(buf.get_u64_le(), 0xDEADBEEF);
        assert_eq!(buf.get_f64_le(), -2.5);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn u32_default_is_big_endian() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u32(0x0000_0803);
        assert_eq!(out, vec![0, 0, 8, 3]);
        let mut buf = out.as_slice();
        assert_eq!(buf.get_u32(), 0x0000_0803);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut buf: &[u8] = &[1, 2];
        let _ = buf.get_u64_le();
    }
}
