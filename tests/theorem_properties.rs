//! Property-based integration tests of the paper's theorems, on randomly
//! generated PLMs (not just fixed fixtures).

use openapi_repro::prelude::*;
use openapi_repro::{api, core, nn};

use api::{LinearSoftmaxModel, LocalLinearModel, TwoRegionPlm};
use core::equations::{solve_determined, EquationSystem, Probe};
use core::sampler::sample_many;
use nn::{Activation, Plnn};
use openapi_repro::linalg::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random linear softmax model with d features, C classes.
fn random_linear_model(d: usize, c: usize) -> impl Strategy<Value = LinearSoftmaxModel> {
    (
        prop::collection::vec(-2.0f64..2.0, d * c),
        prop::collection::vec(-1.0f64..1.0, c),
    )
        .prop_map(move |(w, b)| {
            LinearSoftmaxModel::new(
                Matrix::from_vec(d, c, w).expect("shape by construction"),
                Vector(b),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 2 (single-region case): OpenAPI's first iteration recovers
    /// the exact decision features of ANY linear softmax model, for every
    /// class, from any instance.
    #[test]
    fn openapi_exact_on_random_linear_models(
        model in random_linear_model(6, 4),
        x0 in prop::collection::vec(-3.0f64..3.0, 6),
        seed in 0u64..1000,
    ) {
        let x0 = Vector(x0);
        let interpreter = OpenApiInterpreter::new(OpenApiConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        for class in 0..4 {
            let res = interpreter.interpret(&model, &x0, class, &mut rng).unwrap();
            prop_assert_eq!(res.iterations, 1);
            let truth = model.local().decision_features(class);
            let err = res.interpretation.decision_features.l1_distance(&truth).unwrap();
            prop_assert!(err < 1e-6, "class {}: L1Dist {}", class, err);
        }
    }

    /// Lemma 1: the naive determined system is solvable (full rank) for
    /// uniform hypercube samples, and in the ideal (single-region) case its
    /// solution is exact — at ANY perturbation distance.
    #[test]
    fn naive_system_full_rank_and_exact_in_ideal_case(
        model in random_linear_model(5, 3),
        x0 in prop::collection::vec(-2.0f64..2.0, 5),
        edge_exp in -6.0f64..0.0,
        seed in 0u64..1000,
    ) {
        let x0 = Vector(x0);
        let edge = 10f64.powf(edge_exp);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut probes = vec![Probe::query(&model, x0.clone())];
        for x in sample_many(x0.as_slice(), edge, 5, &mut rng) {
            probes.push(Probe::query(&model, x));
        }
        let sys = EquationSystem::new(probes);
        // Full rank w.p. 1: solve must succeed.
        let params = solve_determined(&sys, 0, 1).unwrap();
        let want_w = model.local().pairwise_decision_features(0, 1);
        let want_b = model.local().pairwise_bias(0, 1);
        prop_assert!(params.weights.l1_distance(&want_w).unwrap() < 1e-5);
        prop_assert!((params.bias - want_b).abs() < 1e-5);
    }

    /// Consistency: within one region of a two-region PLM, interpretations
    /// of different instances coincide exactly.
    #[test]
    fn interpretations_region_constant_on_two_region_plms(
        w_low in prop::collection::vec(-2.0f64..2.0, 4),
        w_high in prop::collection::vec(-2.0f64..2.0, 4),
        xa in -2.0f64..0.2,
        xb in -2.0f64..0.2,
        y in -2.0f64..2.0,
        seed in 0u64..500,
    ) {
        let low = LocalLinearModel::new(
            Matrix::from_vec(2, 2, w_low).expect("shape"),
            Vector(vec![0.0, 0.1]),
        );
        let high = LocalLinearModel::new(
            Matrix::from_vec(2, 2, w_high).expect("shape"),
            Vector(vec![0.2, -0.1]),
        );
        // Skip degenerate draws where the two classes coincide in the low
        // region (decision features ~ 0 make cosine similarity undefined).
        let d_low = low.decision_features(0);
        prop_assume!(d_low.norm_l2() > 1e-6);

        let plm = TwoRegionPlm::axis_split(0, 0.5, low, high);
        let a = Vector(vec![xa, y]);
        let b = Vector(vec![xb, -y]);
        let interpreter = OpenApiInterpreter::new(OpenApiConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let ia = interpreter.interpret(&plm, &a, 0, &mut rng).unwrap();
        let ib = interpreter.interpret(&plm, &b, 0, &mut rng).unwrap();
        let dist = ia.interpretation.decision_features
            .l1_distance(&ib.interpretation.decision_features).unwrap();
        prop_assert!(dist < 1e-6, "same-region interpretations differ by {}", dist);
    }

    /// The OpenBox ground truth obeys softmax shift invariance: adding a
    /// constant to every output-layer bias changes no decision feature.
    #[test]
    fn decision_features_invariant_to_logit_shift(
        seed in 0u64..1000,
        shift in -5.0f64..5.0,
        x in prop::collection::vec(-1.0f64..1.0, 4),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Plnn::mlp(&[4, 6, 3], Activation::ReLU, &mut rng);
        // Rebuild the network with every output bias shifted by the same
        // constant (softmax is invariant to such shifts).
        let mut layers = net.layers().to_vec();
        if let nn::Layer::Dense(l) = &mut layers[1] {
            for b in l.bias.iter_mut() {
                *b += shift;
            }
        }
        let shifted = Plnn::new(layers);
        let d0 = net.local_linear_map(&x).decision_features(0);
        let d0s = shifted.local_linear_map(&x).decision_features(0);
        prop_assert!(d0.l1_distance(&d0s).unwrap() < 1e-9);
        // And the softmax outputs are unchanged too.
        let pa = net.predict(&x);
        let pb = shifted.predict(&x);
        for c in 0..3 {
            prop_assert!((pa[c] - pb[c]).abs() < 1e-12);
        }
    }
}
