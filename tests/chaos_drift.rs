//! Adversarial end-to-end coverage of the chaos API backend and the
//! serving tier's drift detector.
//!
//! Two claims, both seeded and deterministic:
//!
//! 1. **Chaos without drift changes nothing.** Under transient refusals,
//!    rate limits, latency spikes, and bounded output noise, the warm
//!    path serves interpretations bit-identical to a calm run's — the
//!    membership test absorbs bounded degradation (noise ≪ rtol), the
//!    bounded retry absorbs refusals, and no false drift is detected.
//! 2. **Drift never serves stale.** After a silent mid-run model swap
//!    (the one fault `explains_probe` alone can witness), every stale
//!    region is detected on first touch, invalidated from the cache,
//!    tombstoned in the durable store, and re-solved against the live
//!    API; the final interpretations are bit-identical to a fresh
//!    interpreter run against the new model, and the tombstones survive
//!    a restart so a stale region can never serve again.

use openapi_repro::api::{ChaosApi, CountingApi, GroundTruthOracle, TwoRegionPlm};
use openapi_repro::prelude::*;
use openapi_repro::serve::ServeOutcome;
use openapi_repro::store::record::encode_record;
use openapi_repro::sync::atomic::{AtomicU64, Ordering};
use std::path::PathBuf;

mod common;
use common::{two_region_plm, DIM};

/// Fresh per-test store directory (same idiom as `store_recovery.rs`).
fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    // ordering: Relaxed — the counter only disambiguates directory names.
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("openapi_chaos_it_{tag}_{}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic traffic alternating between the two regions of the
/// reference model: even `i` lands in region 0, odd in region 1.
fn instances(n: usize) -> Vec<Vector> {
    let xs: Vec<Vector> = (0..n).map(TwoRegionPlm::reference_instance).collect();
    assert!(xs.iter().all(|x| x.len() == DIM));
    xs
}

/// Single worker so request ids — and with them each request's derived
/// sampling RNG — replay identically across runs and services.
fn config() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        max_leaders_per_class: 1,
        ..ServiceConfig::default()
    }
}

#[test]
fn chaos_without_drift_serves_bit_identical_to_a_calm_run() {
    let xs = instances(10);
    let serve_all = |svc: &InterpretationService<ChaosApi<TwoRegionPlm>>| -> Vec<Vec<u8>> {
        xs.iter()
            .map(|x| {
                let served = svc.submit_instance(x.clone(), 0).wait().expect("serves");
                encode_record(served.fingerprint, &served.interpretation)
            })
            .collect()
    };

    // Calm run: the ground truth for bit-identity.
    let calm = InterpretationService::new(ChaosApi::new(two_region_plm(), 0xC40), config());
    let calm_cold = serve_all(&calm);
    let calm_warm = serve_all(&calm);
    assert_eq!(calm_cold, calm_warm, "calm warm path is consistent");

    // Chaos run: warm up against clean responses first (solves must see
    // the true function), then turn every non-drift fault on and replay.
    let chaotic = InterpretationService::new(ChaosApi::new(two_region_plm(), 0xC41), config());
    let chaos_cold = serve_all(&chaotic);
    assert_eq!(chaos_cold, calm_cold, "same seed-independent exact solves");
    chaotic.api().configure(|c| {
        c.rate_limit_rate = 0.15;
        c.transient_rate = 0.25;
        c.latency_spike_rate = 0.5;
        c.spike = std::time::Duration::ZERO; // counted, not slept
        c.noise_amplitude = 1e-10; // bounded: far below the 1e-6 rtol
    });
    let chaos_warm = serve_all(&chaotic);
    assert_eq!(
        chaos_warm, calm_warm,
        "bounded chaos must not change a single served bit"
    );

    // The chaos actually happened — and none of it read as drift.
    let chaos = chaotic.api().stats();
    assert!(chaos.rate_limited > 0, "no rate limits injected: {chaos:?}");
    assert!(chaos.transient > 0, "no transients injected: {chaos:?}");
    assert!(chaos.latency_spikes > 0, "no spikes injected: {chaos:?}");
    assert!(chaos.noisy > 0, "no noise injected: {chaos:?}");
    assert_eq!(chaos.swaps, 0);
    let stats = chaotic.stats();
    assert_eq!(stats.failures, 0, "retries keep the surface total");
    let drift = stats.drift.expect("service stats carry drift counters");
    assert_eq!(drift.detected, 0, "bounded chaos must not read as drift");
    assert_eq!(drift.tombstones, 0);
}

#[test]
fn silent_swap_tombstones_every_stale_region_and_resolves_against_the_new_model() {
    let dir = temp_dir("swap");
    let xs = instances(8);
    let svc = InterpretationService::open(
        ChaosApi::new(two_region_plm(), 0x5A4B).with_standby(TwoRegionPlm::reference_v2()),
        config(),
        &dir,
    )
    .unwrap();

    // Phase 1: calm traffic solves both regions and witnesses every
    // instance.
    let phase1: Vec<_> = xs
        .iter()
        .map(|x| svc.submit_instance(x.clone(), 0).wait().expect("serves"))
        .collect();
    let stale_fps = [phase1[0].fingerprint, phase1[1].fingerprint];
    assert_ne!(stale_fps[0], stale_fps[1]);
    assert_eq!(svc.stats().drift.unwrap().witnesses, xs.len() as u64);

    // The vendor swaps the hidden model mid-run: scheduled at the current
    // query count, so the very next prediction comes from the standby.
    svc.api().schedule_swap(svc.api().stats().served);

    // Phase 2: identical traffic. Nothing may serve stale — every reply
    // must explain a fresh probe of the NEW model.
    let v2 = TwoRegionPlm::reference_v2();
    let rtol = config().openapi.rtol;
    let phase2: Vec<_> = xs
        .iter()
        .map(|x| svc.submit_instance(x.clone(), 0).wait().expect("serves"))
        .collect();
    assert_eq!(svc.api().stats().swaps, 1, "the scheduled swap fired");
    for (x, served) in xs.iter().zip(&phase2) {
        assert!(
            served
                .interpretation
                .explains_probe(x, v2.predict(x.as_slice()).as_slice(), rtol),
            "stale serve: the reply does not explain the new model at {x:?}"
        );
        assert!(
            !stale_fps.contains(&served.fingerprint),
            "a tombstoned region was served"
        );
        // Exactness against the new model's own ground truth.
        let truth = v2.local_model(x.as_slice()).decision_features(0);
        let err = served
            .interpretation
            .decision_features
            .l1_distance(&truth)
            .unwrap();
        assert!(err < 1e-7, "L1Dist {err}");
    }

    // Each region was detected exactly once — on its first post-swap
    // touch — then invalidated, tombstoned, and re-solved; the region's
    // remaining traffic warm-serves the re-solved parameters.
    let drift = svc.stats().drift.unwrap();
    assert_eq!(drift.detected, 2);
    assert_eq!(drift.invalidated, 2, "one stale cache entry per region");
    assert_eq!(drift.tombstones, 2);
    assert_eq!(drift.resolves, 2);
    let store = svc.store().unwrap();
    for fp in &stale_fps {
        assert!(store.contains_tombstone(0, *fp));
        assert!(!store.contains_fingerprint(0, *fp));
    }
    assert_eq!(store.len(), 2, "the two re-solved regions");
    assert_eq!(store.tombstone_count(), 2);

    // The re-solved interpretations match a fresh interpreter run
    // directly against the new model — drift recovery converges to what
    // a clean slate computes. (Exact up to sampling arithmetic: each
    // service's solve draws from its own request-derived RNG stream, so
    // the recovered parameters agree to solver precision, not bits —
    // bit-identity holds *within* a service, where one cached solve
    // serves every request, as phase 2's own hits already exercised.)
    let fresh =
        InterpretationService::new(CountingApi::new(TwoRegionPlm::reference_v2()), config());
    for (x, served) in xs.iter().zip(&phase2) {
        let clean = fresh.submit_instance(x.clone(), 0).wait().expect("serves");
        assert_eq!(served.interpretation.class, clean.interpretation.class);
        let gap = served
            .interpretation
            .decision_features
            .l1_distance(&clean.interpretation.decision_features)
            .unwrap();
        assert!(
            gap < 1e-9,
            "post-drift serve differs from a fresh interpreter at {x:?}: {gap}"
        );
        assert!(clean
            .interpretation
            .explains_probe(x, v2.predict(x.as_slice()).as_slice(), rtol));
    }
    svc.close().unwrap();

    // Restart against the same directory with the new model live: the
    // tombstones recovered, the stale regions stay unservable, and the
    // re-solved regions serve with zero additional solves.
    let svc = InterpretationService::open(
        CountingApi::new(TwoRegionPlm::reference_v2()),
        config(),
        &dir,
    )
    .unwrap();
    let store = svc.store().unwrap();
    for fp in &stale_fps {
        assert!(
            store.contains_tombstone(0, *fp),
            "tombstone lost on restart"
        );
        assert!(!store.contains_fingerprint(0, *fp));
    }
    for x in &xs {
        let served = svc.submit_instance(x.clone(), 0).wait().expect("serves");
        assert!(matches!(
            served.outcome,
            ServeOutcome::StoreHit | ServeOutcome::CacheHit
        ));
        assert!(!stale_fps.contains(&served.fingerprint));
    }
    assert_eq!(svc.stats().misses, 0, "zero solves after restart");
    svc.close().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
