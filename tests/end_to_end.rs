//! Cross-crate integration tests: train a real PLM, hide it behind the API
//! boundary, interpret it, and verify the paper's claims end to end.

use openapi_repro::prelude::*;
use openapi_repro::{api, core, data, lmt, nn};

use api::CountingApi;
use core::baselines::lime::{LimeConfig, LimeInterpreter};
use core::baselines::zoo::{ZooConfig, ZooInterpreter};
use core::{NaiveConfig, NaiveInterpreter};
use data::synth::{SynthConfig, SynthStyle};
use data::{downsample, Dataset};
use lmt::{Lmt, LmtConfig, LogisticConfig};
use nn::{train, Activation, Plnn, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Small but realistic image data: 14×14 (d = 196), 10 classes.
fn small_image_data(train_n: usize, test_n: usize, seed: u64) -> (Dataset, Dataset) {
    let (train, test) = SynthConfig::small(SynthStyle::MnistLike, train_n, test_n, seed).generate();
    (downsample(&train, 2), downsample(&test, 2))
}

fn trained_plnn(train_set: &Dataset, seed: u64) -> Plnn {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Plnn::mlp(&[train_set.dim(), 24, 12, 10], Activation::ReLU, &mut rng);
    let cfg = TrainConfig {
        epochs: 10,
        batch_size: 32,
        optimizer: nn::Optimizer::adam(3e-3),
        weight_decay: 0.0,
    };
    let _ = train(&mut net, train_set, &cfg, &mut rng);
    net
}

fn trained_lmt(train_set: &Dataset, seed: u64) -> Lmt {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = LmtConfig {
        min_leaf_instances: 100,
        logistic: LogisticConfig {
            epochs: 10,
            ..Default::default()
        },
        ..Default::default()
    };
    Lmt::fit(train_set, &cfg, &mut rng)
}

#[test]
fn openapi_is_exact_on_a_trained_plnn_behind_an_api() {
    let (train_set, test_set) = small_image_data(400, 50, 1);
    let net = trained_plnn(&train_set, 2);
    // The interpreter sees only the counting wrapper (prediction access).
    let api = CountingApi::new(&net);
    let interpreter = OpenApiInterpreter::new(OpenApiConfig::default());
    let mut rng = StdRng::seed_from_u64(3);

    let mut checked = 0;
    for i in 0..5 {
        let x0 = test_set.instance(i);
        let class = net.predict_label(x0.as_slice());
        let Ok(result) = interpreter.interpret(&api, x0, class, &mut rng) else {
            continue; // boundary-degenerate instance: allowed, rare
        };
        // Ground truth via OpenBox (white-box side, never shown to the
        // interpreter).
        let truth = net.local_linear_map(x0.as_slice()).decision_features(class);
        let err = result
            .interpretation
            .decision_features
            .l1_distance(&truth)
            .unwrap();
        assert!(err < 1e-6, "instance {i}: L1Dist {err}");
        assert!(result.iterations <= 100);
        checked += 1;
    }
    assert!(checked >= 4, "too many failures: {checked}/5 interpreted");
    assert!(
        api.queries() > 0,
        "interpretation must have queried the API"
    );
}

#[test]
fn openapi_is_exact_on_a_trained_lmt_behind_an_api() {
    let (train_set, test_set) = small_image_data(500, 40, 4);
    let tree = trained_lmt(&train_set, 5);
    let interpreter = OpenApiInterpreter::new(OpenApiConfig::default());
    let mut rng = StdRng::seed_from_u64(6);

    for i in 0..4 {
        let x0 = test_set.instance(i);
        let class = tree.predict_label(x0.as_slice());
        let result = interpreter
            .interpret(&tree, x0, class, &mut rng)
            .expect("LMT regions are fat; OpenAPI should succeed");
        let truth = tree.local_model(x0.as_slice()).decision_features(class);
        let err = result
            .interpretation
            .decision_features
            .l1_distance(&truth)
            .unwrap();
        assert!(err < 1e-6, "instance {i}: L1Dist {err}");
    }
}

#[test]
fn interpretations_are_consistent_within_a_region() {
    // The consistency claim: instances sharing a locally linear region get
    // identical decision features (cosine similarity 1).
    let (train_set, test_set) = small_image_data(400, 60, 7);
    let net = trained_plnn(&train_set, 8);
    let interpreter = OpenApiInterpreter::new(OpenApiConfig::default());
    let mut rng = StdRng::seed_from_u64(9);

    let mut same_region_pairs = 0;
    for i in 0..test_set.len() {
        for j in i + 1..test_set.len() {
            let a = test_set.instance(i);
            let b = test_set.instance(j);
            if net.activation_pattern(a.as_slice()) != net.activation_pattern(b.as_slice()) {
                continue;
            }
            same_region_pairs += 1;
            let class = net.predict_label(a.as_slice());
            let da = interpreter.interpret(&net, a, class, &mut rng);
            let db = interpreter.interpret(&net, b, class, &mut rng);
            if let (Ok(da), Ok(db)) = (da, db) {
                let cs = da
                    .interpretation
                    .decision_features
                    .cosine_similarity(&db.interpretation.decision_features)
                    .unwrap();
                assert!((cs - 1.0).abs() < 1e-9, "pair ({i},{j}): cs {cs}");
            }
        }
    }
    // Same-region test pairs may or may not exist for this seed; the claim
    // is vacuous otherwise, so only report.
    println!("same-region pairs exercised: {same_region_pairs}");
}

#[test]
fn naive_method_fails_where_openapi_adapts() {
    // Build a PLNN and find a test instance whose region is narrower than
    // h = 0.25 in some direction (so the naive cube escapes).
    let (train_set, test_set) = small_image_data(400, 40, 10);
    let net = trained_plnn(&train_set, 11);
    let naive = NaiveInterpreter::new(NaiveConfig::with_edge(0.25));
    let openapi = OpenApiInterpreter::new(OpenApiConfig::default());
    let mut rng = StdRng::seed_from_u64(12);

    let mut naive_worst: f64 = 0.0;
    let mut openapi_worst: f64 = 0.0;
    for i in 0..8 {
        let x0 = test_set.instance(i);
        let class = net.predict_label(x0.as_slice());
        let truth = net.local_linear_map(x0.as_slice()).decision_features(class);
        if let Ok(ni) = naive.interpret(&net, x0, class, &mut rng) {
            naive_worst = naive_worst.max(ni.decision_features.l1_distance(&truth).unwrap());
        }
        if let Ok(oa) = openapi.interpret(&net, x0, class, &mut rng) {
            openapi_worst = openapi_worst.max(
                oa.interpretation
                    .decision_features
                    .l1_distance(&truth)
                    .unwrap(),
            );
        }
    }
    assert!(
        openapi_worst < 1e-6,
        "OpenAPI must stay exact, worst {openapi_worst}"
    );
    // The naive method at a fixed h = 0.25 on a trained net should go wrong
    // on at least one instance (regions at d=196 are narrow).
    assert!(
        naive_worst > 1e-3,
        "expected the naive method to err somewhere, worst {naive_worst}"
    );
}

#[test]
fn black_box_methods_only_need_the_api_surface() {
    // Compile-time demonstration: LIME/ZOO/naive/OpenAPI run against a
    // CountingApi over an opaque reference — no oracle trait in sight.
    let (train_set, test_set) = small_image_data(300, 10, 13);
    let net = trained_plnn(&train_set, 14);
    let api = CountingApi::new(&net);
    let x0 = test_set.instance(0);
    let class = 0usize;
    let mut rng = StdRng::seed_from_u64(15);

    let lime = LimeInterpreter::new(LimeConfig::linear(1e-3));
    let zoo = ZooInterpreter::new(ZooConfig::with_distance(1e-4));
    let naive = NaiveInterpreter::new(NaiveConfig::with_edge(1e-3));
    let oa = OpenApiInterpreter::new(OpenApiConfig::default());

    let queries_before = api.queries();
    let _ = lime.interpret(&api, x0, class, &mut rng);
    let _ = zoo.interpret(&api, x0, class);
    let _ = naive.interpret(&api, x0, class, &mut rng);
    let _ = oa.interpret(&api, x0, class, &mut rng);
    assert!(
        api.queries() > queries_before,
        "all methods consume queries"
    );
}

#[test]
fn seeded_pipelines_are_fully_reproducible() {
    let run = || {
        let (train_set, test_set) = small_image_data(300, 10, 20);
        let net = trained_plnn(&train_set, 21);
        let interpreter = OpenApiInterpreter::new(OpenApiConfig::default());
        let mut rng = StdRng::seed_from_u64(22);
        let x0 = test_set.instance(3);
        interpreter
            .interpret(&net, x0, 0, &mut rng)
            .map(|r| r.interpretation.decision_features)
            .ok()
    };
    assert_eq!(run(), run());
}
