//! Model-checked concurrency suites for the workspace's protocol cores.
//!
//! Compiled and run only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test --release -p openapi_repro --test loom
//! ```
//!
//! Under that cfg the `openapi-sync` facade re-exports the vendored loom
//! stand-in's checked shims, so the types under test here — the *production*
//! `LatencyHistogram`, `ClassLedger`, `ConnBudget`, `StickyError`, and the
//! trace ring — run their real code over every interleaving the scheduler
//! can produce (up to the preemption bound).
//!
//! Each protocol is pinned from both sides:
//!
//! * a **conservation/visibility test** proves the shipped orderings uphold
//!   the invariant documented in `docs/CONCURRENCY.md`, and
//! * a **mutant test** runs a deliberately weakened variant (a torn RMW, a
//!   relaxed release, a mis-ordered publish) and asserts the checker
//!   *fails* — evidence the passing test has teeth, not a vacuous pass.
//!
//! Models are kept tiny (two threads, one or two operations each): the DFS
//! explores every schedule, so breadth comes from the checker, not from
//! iteration counts.

#![cfg(loom)]

use openapi_repro::metrics::LatencyHistogram;
use openapi_repro::net::ConnBudget;
use openapi_repro::serve::{ClassLedger, Election};
use openapi_repro::store::StickyError;
use openapi_repro::sync::atomic::{AtomicU64, Ordering};
use openapi_repro::sync::Mutex;
use openapi_repro::trace::ring::Ring;
use openapi_repro::trace::{Stage, TraceEvent};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Runs `f` under the model checker and reports whether any explored
/// schedule failed. The mutant tests assert `true` — the checker's whole
/// value is that it *finds* the seeded bug.
fn model_fails(f: impl Fn() + Send + Sync + 'static) -> bool {
    catch_unwind(AssertUnwindSafe(|| loom::model(f))).is_err()
}

// ---------------------------------------------------------------------------
// LatencyHistogram: concurrent `record` never loses an observation.
// ---------------------------------------------------------------------------

#[test]
fn histogram_records_are_never_lost() {
    loom::model(|| {
        let h = Arc::new(LatencyHistogram::new());
        let h2 = Arc::clone(&h);
        // Same bucket on purpose: both increments hit one counter, the
        // worst case for a lost update.
        let t = loom::thread::spawn(move || h2.record(Duration::from_nanos(100)));
        h.record(Duration::from_nanos(100));
        t.join().unwrap();
        // The join edge makes both relaxed increments visible.
        assert_eq!(h.count(), 2, "a concurrent record was lost");
    });
}

#[test]
fn histogram_checker_catches_torn_record() {
    // Same model, but with the seeded mutant: `record_torn` replaces the
    // atomic RMW with a relaxed load+store, so two concurrent records can
    // both read 0 and both store 1. The checker must find that schedule.
    let caught = model_fails(|| {
        let h = Arc::new(LatencyHistogram::new());
        let h2 = Arc::clone(&h);
        let t = loom::thread::spawn(move || h2.record_torn(Duration::from_nanos(100)));
        h.record_torn(Duration::from_nanos(100));
        t.join().unwrap();
        assert_eq!(h.count(), 2, "a concurrent record was lost");
    });
    assert!(caught, "the checker failed to catch the torn-record mutant");
}

// ---------------------------------------------------------------------------
// ClassLedger: the publish -> record_solve -> step_down leader protocol.
// ---------------------------------------------------------------------------

/// A finished leader's exit, in the documented order: publish the result
/// (cache insert), bump the generation, then free the slot. The registry
/// mutex inside `step_down` is what makes the first two visible to the
/// next bid that sees the freed slot.
fn leader_exit(ledger: &ClassLedger<&'static str>, cache: &Mutex<Option<u64>>) {
    *cache.lock() = Some(42);
    ledger.record_solve();
    let drained = ledger.step_down(0);
    assert!(drained.is_empty() || drained == ["b"]);
}

/// A mis-ordered exit — the mutant protocol this suite exists to reject:
/// the slot is freed (and the generation bumped) *before* the result is
/// published, so a new leader can observe "a solve completed" with nothing
/// in the cache and re-pay the solve (or worse, serve a miss as a hit).
fn leader_exit_misordered(ledger: &ClassLedger<&'static str>, cache: &Mutex<Option<u64>>) {
    ledger.record_solve();
    let drained = ledger.step_down(0);
    assert!(drained.is_empty() || drained == ["b"]);
    *cache.lock() = Some(42);
}

/// The second bid: whoever wins a slot after a recorded solve must also
/// see the published entry — the exactness hinge of the coalescing tier.
fn bid_and_check(ledger: &ClassLedger<&'static str>, cache: &Mutex<Option<u64>>) {
    match ledger.try_lead(0, 1, "b") {
        // Parked: the incumbent leader settles this job from its own
        // published result after step_down; nothing to check here.
        Election::Parked => {}
        Election::Led(_) => {
            // Led with a moved generation means the first leader fully
            // exited; its publish must be visible through the same mutex.
            if ledger.generation() > 0 {
                assert!(
                    cache.lock().is_some(),
                    "generation moved but the published result is not visible"
                );
            }
            ledger.step_down(0);
        }
    }
}

#[test]
fn ledger_handoff_publishes_before_the_slot_frees() {
    loom::model(|| {
        let ledger = Arc::new(ClassLedger::new());
        let cache = Arc::new(Mutex::new(None::<u64>));
        let Election::Led(_) = ledger.try_lead(0, 1, "a") else {
            panic!("the first bid on an empty ledger must lead");
        };
        let (l2, c2) = (Arc::clone(&ledger), Arc::clone(&cache));
        let t = loom::thread::spawn(move || bid_and_check(&l2, &c2));
        leader_exit(&ledger, &cache);
        t.join().unwrap();
    });
}

#[test]
fn ledger_checker_catches_a_misordered_publish() {
    let caught = model_fails(|| {
        let ledger = Arc::new(ClassLedger::new());
        let cache = Arc::new(Mutex::new(None::<u64>));
        let Election::Led(_) = ledger.try_lead(0, 1, "a") else {
            panic!("the first bid on an empty ledger must lead");
        };
        let (l2, c2) = (Arc::clone(&ledger), Arc::clone(&cache));
        let t = loom::thread::spawn(move || bid_and_check(&l2, &c2));
        leader_exit_misordered(&ledger, &cache);
        t.join().unwrap();
    });
    assert!(
        caught,
        "the checker failed to catch the publish-after-step-down mutant"
    );
}

// ---------------------------------------------------------------------------
// ConnBudget: release-after-reply publishes the reply to the next admit.
// ---------------------------------------------------------------------------

/// The reader side of the budget contract: an admit that observes freed
/// budget must also observe the reply bytes whose write freed it. The
/// "reply" is a relaxed cell — only the budget's own release/acquire edge
/// may order it.
fn admit_and_check(budget: &ConnBudget, reply: &AtomicU64) {
    if budget.try_admit() {
        // ordering: Relaxed on purpose — the test asserts the *budget*
        // edge alone publishes the reply; see docs/CONCURRENCY.md.
        assert_eq!(
            reply.load(Ordering::Relaxed),
            1,
            "admitted on freed budget without seeing the reply that freed it"
        );
    }
}

#[test]
fn budget_release_publishes_the_reply() {
    loom::model(|| {
        let budget = Arc::new(ConnBudget::new(1));
        let reply = Arc::new(AtomicU64::new(0));
        assert!(budget.try_admit(), "an idle budget must admit");
        let (b2, r2) = (Arc::clone(&budget), Arc::clone(&reply));
        // The writer thread: write the reply, then free the budget.
        let t = loom::thread::spawn(move || {
            // ordering: Relaxed — published by `release`'s Release half.
            r2.store(1, Ordering::Relaxed);
            b2.release(1);
        });
        // The reader races the writer: its admit succeeds only in the
        // schedules where the release landed first.
        admit_and_check(&budget, &reply);
        t.join().unwrap();
    });
}

#[test]
fn budget_checker_catches_a_relaxed_release() {
    let caught = model_fails(|| {
        let budget = Arc::new(ConnBudget::new(1));
        let reply = Arc::new(AtomicU64::new(0));
        assert!(budget.try_admit(), "an idle budget must admit");
        let (b2, r2) = (Arc::clone(&budget), Arc::clone(&reply));
        let t = loom::thread::spawn(move || {
            // ordering: Relaxed — the mutant release below publishes
            // nothing, so this store may stay invisible to the admitter.
            r2.store(1, Ordering::Relaxed);
            b2.release_relaxed(1);
        });
        admit_and_check(&budget, &reply);
        t.join().unwrap();
    });
    assert!(caught, "the checker failed to catch the relaxed release");
}

// ---------------------------------------------------------------------------
// Trace ring: the per-slot seqlock never surfaces a torn event.
// ---------------------------------------------------------------------------

/// An event whose every field mirrors its tag: a snapshotted event where
/// any two disagree was assembled from two different writes — exactly what
/// the seqlock read protocol must make impossible.
fn tagged_event(tag: u64) -> TraceEvent {
    TraceEvent {
        span: tag,
        parent: 0,
        stage: Stage::Queue,
        t_nanos: tag,
        payload: tag,
    }
}

/// Asserts a snapshot holds only whole events.
fn assert_untorn(events: &[TraceEvent]) {
    for ev in events {
        assert!(
            ev.span == ev.payload && ev.span == ev.t_nanos,
            "torn event surfaced: span={} t={} payload={}",
            ev.span,
            ev.t_nanos,
            ev.payload
        );
    }
}

#[test]
fn ring_commits_are_atomic() {
    loom::model(|| {
        // CAP = 1: both writers contend on one slot (worst case — a lap
        // overtake per schedule), while the reader races both.
        let ring = Arc::new(Ring::<1>::new());
        let r2 = Arc::clone(&ring);
        let t = loom::thread::spawn(move || {
            r2.push(&tagged_event(7));
        });
        ring.push(&tagged_event(9));
        assert_untorn(&ring.snapshot());
        t.join().unwrap();
        // The join edge settles accounting: every push either committed or
        // was counted as a lap-overtaken drop, and the survivor is whole.
        let stats = ring.stats();
        assert_eq!(stats.emitted + stats.dropped, 2, "a push went missing");
        assert!(stats.emitted >= 1, "at least one push must commit");
        let settled = ring.snapshot();
        assert_eq!(settled.len(), 1, "one slot, one committed event");
        assert_untorn(&settled);
    });
}

#[test]
fn ring_checker_catches_torn_commit() {
    // The seeded mutant: `push_torn` commits the even sequence value
    // *before* storing the fields, so a racing reader can validate a slot
    // whose fields are half this event's and half the initial state's.
    let caught = model_fails(|| {
        let ring = Arc::new(Ring::<1>::new());
        let r2 = Arc::clone(&ring);
        let t = loom::thread::spawn(move || {
            r2.push_torn(&tagged_event(7));
        });
        assert_untorn(&ring.snapshot());
        t.join().unwrap();
    });
    assert!(caught, "the checker failed to catch the torn commit");
}

// ---------------------------------------------------------------------------
// StickyError: exactly one first failure, visible to everyone, forever.
// ---------------------------------------------------------------------------

#[test]
fn sticky_error_first_write_wins_under_a_race() {
    loom::model(|| {
        let sticky = Arc::new(StickyError::new());
        let s2 = Arc::clone(&sticky);
        let t = loom::thread::spawn(move || s2.record("wal: short write"));
        let mine = sticky.record("wal: fsync failed");
        let theirs = t.join().unwrap();
        // Exactly one recorder stuck, in every schedule.
        assert!(mine ^ theirs, "exactly one first failure must win");
        // And the slot holds the winner's message, immutably.
        let expected = if mine {
            "wal: fsync failed"
        } else {
            "wal: short write"
        };
        assert_eq!(sticky.get().as_deref(), Some(expected));
        assert!(!sticky.record("late, must lose"));
        assert_eq!(sticky.get().as_deref(), Some(expected));
    });
}
