//! Wire-protocol coverage of the TCP serving tier through the facade.
//!
//! Three claims, mirroring what `service_concurrency.rs` and
//! `store_recovery.rs` pin down for their tiers:
//!
//! 1. **The network changes no answer.** Interpretations served over TCP
//!    are exact (they explain their own probe — Theorem 2's membership
//!    identity) and bit-identical to what a direct, in-process
//!    `InterpretationService` run produces on the same instances.
//! 2. **Hostile bytes get typed errors, never panics and never wrong
//!    interpretations.** Every truncation and every byte flip of a framed
//!    request yields either an `ErrorCode::Malformed` response or a clean
//!    close — and the server keeps serving healthy clients afterwards.
//! 3. **The operational protocol holds**: version negotiation, Busy
//!    backpressure at the per-connection bound, deadlines expiring over
//!    the wire, per-item batch results, stats parity, and a graceful close
//!    that drains in-flight requests.

use openapi_repro::api::{CountingApi, PredictionApi, TwoRegionPlm};
use openapi_repro::net::wire::{self, ErrorCode, FrameRead, Request, Response};
use openapi_repro::net::{Client, ClientError, Server, ServerConfig, VERSION};
use openapi_repro::prelude::*;
use openapi_repro::sync::atomic::{AtomicUsize, Ordering};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

mod common;
use common::{two_region_plm, DIM};

/// Membership tolerance used by every cache/store/coalescing lookup in the
/// stack (the `SharedCacheConfig` default).
const RTOL: f64 = 1e-6;

/// Deterministic instances alternating between the two regions of
/// [`two_region_plm`] — the canonical generator, shared with the
/// `net_throughput` bench.
fn instance(i: usize) -> Vector {
    TwoRegionPlm::reference_instance(i)
}

fn service_config(workers: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        // One leader slot per class: the canonical per-region solve is the
        // lowest-id request's, making remote-vs-direct bit-identity exact.
        max_leaders_per_class: 1,
        ..ServiceConfig::default()
    }
}

fn spawn_server(workers: usize) -> Server<CountingApi<TwoRegionPlm>> {
    let service =
        InterpretationService::new(CountingApi::new(two_region_plm()), service_config(workers));
    Server::bind("127.0.0.1:0", service, ServerConfig::default()).expect("ephemeral bind")
}

/// Opens a raw connection and completes the handshake, for tests that
/// need to put hand-crafted bytes on the wire.
fn raw_handshake(addr: SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(&wire::encode_hello(VERSION)).unwrap();
    let mut hello = [0u8; wire::SERVER_HELLO_LEN];
    stream.read_exact(&mut hello).unwrap();
    let (version, _model) = wire::decode_server_hello(&hello).unwrap();
    assert_eq!(version, VERSION);
    stream
}

/// Reads responses until the server closes, asserting every frame is a
/// well-formed `Response` and collecting them.
fn read_until_close(stream: &mut TcpStream) -> Vec<Response> {
    let mut responses = Vec::new();
    loop {
        match wire::read_frame(stream).expect("socket stays healthy") {
            FrameRead::Payload(payload) => {
                responses.push(wire::decode_response(&payload).expect("server speaks the protocol"))
            }
            FrameRead::Closed => return responses,
            FrameRead::Corrupt(e) => panic!("server emitted a corrupt frame: {e}"),
        }
    }
}

/// The acceptance scenario: a server on an ephemeral port, warmed in a
/// deterministic order, then hammered by concurrent clients — every
/// returned interpretation must be exact against its own probe and
/// bit-identical to a direct in-process `InterpretationService` run over
/// the same instances with the same seed.
#[test]
fn remote_serves_are_exact_and_bit_identical_to_direct() {
    const CLIENTS: usize = 3;
    const INSTANCES: usize = 10;
    let instances: Vec<Vector> = (0..INSTANCES).map(instance).collect();
    let model = two_region_plm();

    // The reference: a direct, in-process service, same seed, same
    // submission order.
    let direct = InterpretationService::new(two_region_plm(), service_config(2));
    let reference: Vec<_> = instances
        .iter()
        .map(|x| {
            direct
                .submit_instance(x.clone(), 0)
                .wait()
                .expect("interior instances interpret")
                .interpretation
        })
        .collect();

    let server = spawn_server(4);
    let addr = server.local_addr();

    // Warm pass: one client, same submission order as the direct run, so
    // request ids — and therefore the per-region canonical solves — match
    // the reference bit for bit.
    let mut warm = Client::connect(addr).expect("handshake");
    for (x, reference) in instances.iter().zip(&reference) {
        let served = warm.interpret(x, 0).expect("warm pass serves");
        assert_eq!(
            served.interpretation, *reference,
            "the wire must not change a single bit"
        );
    }

    // Hammer pass: concurrent clients, each its own connection.
    let failures = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            let (instances, reference, model, failures) =
                (&instances, &reference, &model, &failures);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("handshake");
                // Interleave differently per client to vary contention.
                for k in 0..instances.len() {
                    let i = (k * (t + 1)) % instances.len();
                    let x = &instances[i];
                    let Ok(served) = client.interpret(x, 0) else {
                        // ordering: Relaxed — a tally read after the scoped
                        // threads join; the join is the happens-before edge.
                        failures.fetch_add(1, Ordering::Relaxed);
                        continue;
                    };
                    // Exactness: the served parameters explain this
                    // instance's own prediction at every contrast.
                    let probs = model.predict(x.as_slice());
                    assert!(
                        served
                            .interpretation
                            .explains_probe(x, probs.as_slice(), RTOL),
                        "client {t}, instance {i}: served region does not explain the probe"
                    );
                    // Consistency: bit-identical to the direct service.
                    assert_eq!(served.interpretation, reference[i]);
                    assert_eq!(served.fingerprint, reference[i].fingerprint(6));
                    // Warm server: nothing may solve again.
                    assert!(
                        matches!(
                            served.outcome,
                            ServeOutcome::CacheHit | ServeOutcome::Coalesced
                        ),
                        "client {t}, instance {i}: unexpected {:?}",
                        served.outcome
                    );
                    assert_eq!(served.queries, 1, "a warm serve costs one probe");
                }
            });
        }
    });
    // ordering: Relaxed — all writers joined above; no concurrency left.
    assert_eq!(failures.load(Ordering::Relaxed), 0);

    // The ledger adds up across all connections: warm pass + hammer.
    let stats = server.service().stats();
    assert_eq!(stats.requests, (INSTANCES * (1 + CLIENTS)) as u64);
    assert_eq!(
        stats.hits + stats.store_hits + stats.misses + stats.coalesced_served + stats.failures,
        stats.requests
    );
    assert_eq!(stats.failures, 0);
    assert_eq!(stats.misses, 2, "one solve per region, fleet-wide");
    server.close().expect("clean close");
}

/// Mirrors `store_recovery.rs` for the wire: every truncation and every
/// byte flip of a framed request must produce a typed protocol error (or a
/// clean close) — never a panic, never an interpretation.
#[test]
fn corrupted_frames_yield_typed_errors_never_panics() {
    let server = spawn_server(2);
    let addr = server.local_addr();
    let clean = wire::encode_request(&Request::Interpret {
        class: 0,
        deadline_ms: 0,
        instance: instance(0),
    });

    let mut corruptions: Vec<Vec<u8>> = Vec::new();
    for keep in 1..clean.len() {
        corruptions.push(clean[..keep].to_vec());
    }
    for i in 0..clean.len() {
        let mut flipped = clean.clone();
        flipped[i] ^= 0x20;
        corruptions.push(flipped);
    }

    for (case, bytes) in corruptions.iter().enumerate() {
        let mut stream = raw_handshake(addr);
        if stream.write_all(bytes).is_err() {
            continue; // server already hung up on earlier garbage
        }
        let _ = stream.shutdown(Shutdown::Write);
        // The typed error is best-effort: when the server tears down a
        // connection with our corrupt bytes still unread, the OS may turn
        // the close into a reset that outruns the reply. The guarantees
        // under test: any frame that *does* arrive is a typed Malformed
        // error — never a panic artifact, never an interpretation — and
        // the server stays up.
        while let Ok(FrameRead::Payload(payload)) = wire::read_frame(&mut stream) {
            match wire::decode_response(&payload)
                .unwrap_or_else(|e| panic!("case {case}: undecodable response: {e}"))
            {
                Response::Error(e) => assert_eq!(
                    e.code,
                    ErrorCode::Malformed,
                    "case {case}: wrong error kind: {e}"
                ),
                other => panic!("case {case}: corrupt bytes produced {other:?}"),
            }
        }
    }

    // The server survived all of it and still serves healthy clients.
    let mut client = Client::connect(addr).expect("server must still accept");
    let served = client.interpret(&instance(0), 0).expect("still serving");
    let probs = server.service().api().predict(instance(0).as_slice());
    assert!(served
        .interpretation
        .explains_probe(&instance(0), probs.as_slice(), RTOL));
    server.close().expect("clean close");
}

/// A frame that verifies (CRC intact) but carries a malformed payload gets
/// a typed error *without* losing the connection — the stream is still in
/// sync, so the conversation continues.
#[test]
fn malformed_payload_in_a_valid_frame_keeps_the_connection() {
    let server = spawn_server(1);
    let mut stream = raw_handshake(server.local_addr());

    // A perfectly framed message with an unknown tag.
    let mut frame = Vec::new();
    openapi_repro::store::record::put_frame(&mut frame, &[0x7F, 1, 2, 3]);
    stream.write_all(&frame).unwrap();
    match wire::read_frame(&mut stream).unwrap() {
        FrameRead::Payload(payload) => match wire::decode_response(&payload).unwrap() {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::Malformed),
            other => panic!("expected malformed error, got {other:?}"),
        },
        other => panic!("expected a response frame, got {other:?}"),
    }

    // Same connection, valid ping: still alive, still in sync.
    stream
        .write_all(&wire::encode_request(&Request::Ping { nonce: 7 }))
        .unwrap();
    match wire::read_frame(&mut stream).unwrap() {
        FrameRead::Payload(payload) => {
            assert_eq!(
                wire::decode_response(&payload).unwrap(),
                Response::Pong { nonce: 7 }
            );
        }
        other => panic!("expected pong, got {other:?}"),
    }
    server.close().expect("clean close");
}

#[test]
fn version_negotiation_rejects_strangers_with_typed_errors() {
    let server = spawn_server(1);
    let addr = server.local_addr();

    // Wrong version: the server answers with its own hello (so the client
    // learns what it speaks) plus a typed refusal, then hangs up.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(&wire::encode_hello(99)).unwrap();
    // The refusing server still sends its full 28-byte hello — the
    // version-only prefix tells the stranger what we speak, the model
    // tail costs it nothing.
    let mut hello = [0u8; wire::SERVER_HELLO_LEN];
    stream.read_exact(&mut hello).unwrap();
    let (version, _model) = wire::decode_server_hello(&hello).unwrap();
    assert_eq!(version, VERSION);
    let responses = read_until_close(&mut stream);
    assert_eq!(responses.len(), 1);
    match &responses[0] {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::UnsupportedVersion),
        other => panic!("expected version refusal, got {other:?}"),
    }

    // Wrong magic: not this protocol at all — closed without a byte.
    // (Exactly HELLO_LEN junk bytes, so the server reads everything we
    // sent and its close arrives as a clean FIN rather than a reset.)
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(b"NOT-OAPINET!").unwrap();
    let mut sink = Vec::new();
    stream.read_to_end(&mut sink).unwrap();
    assert!(sink.is_empty(), "a stranger gets no bytes, got {sink:?}");

    // The real client still works.
    let mut client = Client::connect(addr).expect("handshake");
    client.ping().expect("server alive");
    server.close().expect("clean close");
}

/// Sleeps on every prediction, so solves occupy workers long enough to
/// observe queueing behaviour deterministically.
struct SlowApi<M> {
    inner: M,
    sleep: Duration,
}

impl<M: PredictionApi> PredictionApi for SlowApi<M> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn predict(&self, x: &[f64]) -> Vector {
        std::thread::sleep(self.sleep);
        self.inner.predict(x)
    }
}

fn slow_server(
    sleep: Duration,
    workers: usize,
    config: ServerConfig,
) -> Server<SlowApi<TwoRegionPlm>> {
    let service = InterpretationService::new(
        SlowApi {
            inner: two_region_plm(),
            sleep,
        },
        service_config(workers),
    );
    Server::bind("127.0.0.1:0", service, config).expect("ephemeral bind")
}

/// Past the per-connection in-flight bound, pipelined interpret requests
/// are answered `Busy` immediately — typed backpressure, in order.
#[test]
fn pipelined_overload_gets_busy_responses() {
    let server = slow_server(
        Duration::from_millis(300),
        2,
        ServerConfig {
            max_inflight_per_conn: 1,
            ..ServerConfig::default()
        },
    );
    let mut stream = raw_handshake(server.local_addr());
    // Three pipelined requests: the first occupies the connection's single
    // in-flight slot for ≥ 300 ms (its probe alone sleeps that long), so
    // the reader sees #2 and #3 while #1 is still solving.
    let frame = wire::encode_request(&Request::Interpret {
        class: 0,
        deadline_ms: 0,
        instance: instance(0),
    });
    for _ in 0..3 {
        stream.write_all(&frame).unwrap();
    }
    stream.flush().unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let responses = read_until_close(&mut stream);
    assert_eq!(responses.len(), 3, "every request gets an answer, in order");
    assert!(
        matches!(responses[0], Response::Interpreted(_)),
        "the in-budget request is served: {:?}",
        responses[0]
    );
    for response in &responses[1..] {
        match response {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::Busy),
            other => panic!("over-budget request got {other:?}"),
        }
    }
    server.close().expect("clean close");
}

/// A batch larger than the whole in-flight budget is admitted when the
/// connection is idle — `Busy` is backpressure, not starvation: an
/// oversized batch succeeds once earlier work drains, it is never
/// rejected forever.
#[test]
fn oversized_batches_succeed_on_an_idle_connection() {
    let service = InterpretationService::new(CountingApi::new(two_region_plm()), service_config(2));
    let server = Server::bind(
        "127.0.0.1:0",
        service,
        ServerConfig {
            max_inflight_per_conn: 1,
            ..ServerConfig::default()
        },
    )
    .expect("ephemeral bind");
    let mut client = Client::connect(server.local_addr()).expect("handshake");
    let items: Vec<(Vector, usize)> = (0..4).map(|i| (instance(i), 0)).collect();
    let results = client
        .interpret_batch(&items, None)
        .expect("an idle connection admits any legal batch");
    assert_eq!(results.len(), 4);
    for (i, result) in results.iter().enumerate() {
        assert!(result.is_ok(), "item {i}: {result:?}");
    }
    server.close().expect("clean close");
}

/// A read timeout mid-exchange leaves the response in flight; the client
/// must refuse further calls (`Poisoned`) rather than risk pairing the
/// stale response with the next request — a silent wrong answer.
#[test]
fn timed_out_clients_poison_instead_of_desyncing() {
    let server = slow_server(Duration::from_millis(100), 1, ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("handshake");
    client
        .set_read_timeout(Some(Duration::from_millis(20)))
        .unwrap();
    // The solve takes ≥ 1 s (10 sleepy queries); the 20 ms read times out
    // with the response still on its way.
    match client.interpret(&instance(0), 0) {
        Err(ClientError::Io(_)) => {}
        other => panic!("expected a transport timeout, got {other:?}"),
    }
    // Every further call on this connection is refused, even after the
    // stale response has long arrived in the socket buffer.
    std::thread::sleep(Duration::from_secs(2));
    match client.interpret(&instance(1), 0) {
        Err(ClientError::Poisoned) => {}
        other => panic!("a poisoned client must refuse calls, got {other:?}"),
    }
    assert!(matches!(client.ping(), Err(ClientError::Poisoned)));
    // A fresh connection to the same server works fine.
    let mut fresh = Client::connect(server.local_addr()).expect("handshake");
    fresh.interpret(&instance(0), 0).expect("server unaffected");
    server.close().expect("clean close");
}

/// A deadline that lapses while the request queues behind a slow solve
/// comes back as a typed `DeadlineExceeded`, not a late answer.
#[test]
fn deadlines_expire_over_the_wire() {
    let server = slow_server(Duration::from_millis(50), 1, ServerConfig::default());
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        // Occupy the single worker with a full solve (≥ 10 sleepy queries).
        let slow = scope.spawn(move || {
            let mut client = Client::connect(addr).expect("handshake");
            client
                .interpret(&instance(0), 0)
                .expect("eventually served")
        });
        // Give the slow request time to reach its worker, then race it
        // with a budget that cannot survive the queue.
        std::thread::sleep(Duration::from_millis(100));
        let mut client = Client::connect(addr).expect("handshake");
        match client.interpret_within(&instance(1), 0, Duration::from_millis(1)) {
            Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::DeadlineExceeded),
            other => panic!("expected a deadline refusal, got {other:?}"),
        }
        slow.join().unwrap();
    });
    assert_eq!(server.service().stats().deadline_expired, 1);
    server.close().expect("clean close");
}

/// Batch requests come back per item, in order, with typed per-item
/// failures for the items the service refuses.
#[test]
fn batches_return_per_item_results() {
    let server = spawn_server(2);
    let mut client = Client::connect(server.local_addr()).expect("handshake");
    let items = vec![
        (instance(0), 0),
        (Vector(vec![1.0; DIM + 3]), 0), // wrong dimension
        (instance(1), 99),               // class out of range
        (instance(2), 1),
    ];
    let results = client
        .interpret_batch(&items, None)
        .expect("batch exchange");
    assert_eq!(results.len(), 4);
    assert!(results[0].is_ok());
    for (i, expectation) in [(1usize, "dimension"), (2, "class")] {
        match &results[i] {
            Err(e) => {
                assert_eq!(e.code, ErrorCode::Interpret);
                assert!(
                    e.message.contains(expectation),
                    "item {i}: diagnostics survive the wire: {e}"
                );
            }
            Ok(_) => panic!("item {i} must fail"),
        }
    }
    let served = results[3].as_ref().expect("valid item serves");
    let x = instance(2);
    let probs = server.service().api().predict(x.as_slice());
    assert!(served
        .interpretation
        .explains_probe(&x, probs.as_slice(), RTOL));
    server.close().expect("clean close");
}

/// The statistics a remote client fetches are the service's own numbers.
#[test]
fn stats_travel_the_wire_faithfully() {
    let server = spawn_server(2);
    let mut client = Client::connect(server.local_addr()).expect("handshake");
    for i in 0..6 {
        client.interpret(&instance(i), 0).expect("serves");
    }
    let local = server.service().stats();
    let remote = client.stats().expect("stats exchange");
    assert_eq!(remote.requests, local.requests);
    assert_eq!(remote.hits, local.hits);
    assert_eq!(remote.misses, local.misses);
    assert_eq!(remote.coalesced_served, local.coalesced_served);
    assert_eq!(remote.failures, 0);
    assert_eq!(remote.queries, local.queries);
    assert_eq!(remote.cached_regions, local.cached_regions);
    assert!(remote.p50_latency.is_some());
    assert!(remote.store.is_none(), "no store attached");
    server.close().expect("clean close");
}

/// `Server::close` is a drain, not an abort: requests in flight when the
/// shutdown starts still get their responses before the socket dies.
#[test]
fn graceful_close_drains_in_flight_requests() {
    let server = slow_server(Duration::from_millis(50), 1, ServerConfig::default());
    let addr = server.local_addr();
    let in_flight = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("handshake");
        client.interpret(&instance(0), 0)
    });
    // Let the request reach its worker (the probe alone sleeps 50 ms),
    // then close while its solve is still running.
    std::thread::sleep(Duration::from_millis(150));
    server.close().expect("drain and close");
    let served = in_flight
        .join()
        .unwrap()
        .expect("in-flight request must be drained to completion, not dropped");
    assert_eq!(served.outcome, ServeOutcome::Solved);
    // The listener is gone: fresh connections are refused now.
    assert!(Client::connect(addr).is_err());
}
