//! Anti-entropy replication across a loopback cluster of `openapi-net`
//! servers sharing one hidden model.
//!
//! Four claims, mirroring what `net_protocol.rs` pins down for a single
//! server:
//!
//! 1. **Each solve is paid once cluster-wide.** After one anti-entropy
//!    exchange, a node that never queried the API warm-serves every
//!    region its peer solved — zero Algorithm-1 solves, and the served
//!    interpretations are bit-identical to the peer's down to the
//!    persisted record frame.
//! 2. **Mismatched models never merge.** A differing model declaration
//!    is refused on both sides of the wire — by the puller from the
//!    server hello, and by the server with a typed `ModelMismatch`
//!    error; a storeless server answers `NoStore`.
//! 3. **Convergence is bounded.** A 2–3 node cluster reaches digest
//!    equality within a bounded number of exchanges, deterministically
//!    (driven) and under the background [`FabricNode`] loop (timed).
//! 4. **Replication is an order-independent set union** (Theorem 2:
//!    regions are immutable and content-addressed, so any interleaving
//!    of record-byte exchange converges to the same bytes) — checked by
//!    property over seeded partitions and shuffles.
//! 5. **Tombstones win the union, permanently.** A region invalidated
//!    for drift replicates as a tombstone fact: a peer that pulls it
//!    suppresses its live copy, a peer that held the tombstone first
//!    refuses the live record no matter which neighbor re-ships it, and
//!    the mixed record/tombstone exchange stays order-independent.

use openapi_repro::api::{CountingApi, TwoRegionPlm};
use openapi_repro::fabric::{sync_peer_once, FabricError};
use openapi_repro::net::{ErrorCode, VERSION};
use openapi_repro::prelude::*;
use openapi_repro::store::{record, DIGEST_BUCKETS};
use openapi_repro::sync::atomic::{AtomicU64, Ordering};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

mod common;
use common::{two_region_plm, DIM};

/// Fresh per-test store directory (same idiom as `store_recovery.rs`).
fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    // ordering: Relaxed — the counter only disambiguates directory names.
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "openapi_fabric_it_{tag}_{}_{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic instances alternating between the two regions of
/// [`two_region_plm`]: even `i` lands in region 0, odd in region 1.
fn instance(i: usize) -> Vector {
    TwoRegionPlm::reference_instance(i)
}

fn service_config(workers: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        // One leader slot per class keeps the canonical per-region solve
        // deterministic, making cross-node bit-identity exact.
        max_leaders_per_class: 1,
        ..ServiceConfig::default()
    }
}

/// A cluster node: a TCP server fronting a durable store.
fn spawn_node(dir: &PathBuf, model_id: u64) -> Server<CountingApi<TwoRegionPlm>> {
    let service =
        InterpretationService::open(CountingApi::new(two_region_plm()), service_config(2), dir)
            .expect("open store dir");
    Server::bind(
        "127.0.0.1:0",
        service,
        ServerConfig {
            model_id,
            ..ServerConfig::default()
        },
    )
    .expect("ephemeral bind")
}

fn fabric_config(model_id: u64) -> FabricConfig {
    FabricConfig {
        model_id,
        ..FabricConfig::default()
    }
}

/// Every record frame a store would ship, as one canonical byte blob
/// (sorted by sync key inside `sync_delta`) — the store's identity for
/// bit-level comparison across nodes.
fn full_dump(store: &RegionStore) -> Vec<u8> {
    let all: Vec<u32> = (0..DIGEST_BUCKETS as u32).collect();
    let delta = store.sync_delta(&all, &[], usize::MAX);
    assert!(!delta.truncated, "usize::MAX budget never truncates");
    delta.frames
}

/// The acceptance scenario: node A pays the Algorithm-1 solves, one
/// anti-entropy exchange replicates them, and node B then serves the
/// same traffic with **zero** solves and bit-identical interpretations.
#[test]
fn peer_warm_serves_every_replicated_region_with_zero_solves() {
    const INSTANCES: usize = 8;
    let dir_a = temp_dir("warm_a");
    let dir_b = temp_dir("warm_b");
    let server_a = spawn_node(&dir_a, 7);
    let server_b = spawn_node(&dir_b, 7);

    // Node A pays the solves over the wire.
    let mut client_a = Client::connect(server_a.local_addr()).expect("handshake A");
    let baseline: Vec<_> = (0..INSTANCES)
        .map(|i| client_a.interpret(&instance(i), 0).expect("A serves"))
        .collect();
    let stats_a = server_a.service().stats();
    assert_eq!(stats_a.misses, 2, "two regions, one canonical solve each");

    // One driven anti-entropy exchange: B pulls everything A has.
    let core_a = server_a.service().core();
    let core_b = server_b.service().core();
    let report = sync_peer_once(
        &core_b,
        &server_a.local_addr().to_string(),
        &fabric_config(7),
    )
    .expect("exchange succeeds");
    assert!(report.converged, "B must hold everything A had: {report:?}");
    assert_eq!(report.ingested, 2);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.duplicates, 0);

    // The stores now agree bucket for bucket — and byte for byte.
    let store_a = core_a.store().expect("A has a store");
    let store_b = core_b.store().expect("B has a store");
    assert_eq!(store_a.digest(), store_b.digest());
    assert_eq!(store_a.record_keys(), store_b.record_keys());
    assert_eq!(full_dump(store_a), full_dump(store_b));

    // A second exchange is a no-op: idempotent, nothing re-shipped.
    let again = sync_peer_once(
        &core_b,
        &server_a.local_addr().to_string(),
        &fabric_config(7),
    )
    .expect("idempotent exchange");
    assert!(again.converged);
    assert_eq!(again.pulled_records, 0);
    assert_eq!(again.ingested, 0);

    // Node B serves the identical traffic without ever touching its API:
    // zero Algorithm-1 solves, every answer bit-identical to node A's.
    let mut client_b = Client::connect(server_b.local_addr()).expect("handshake B");
    for (i, from_a) in baseline.iter().enumerate() {
        let from_b = client_b.interpret(&instance(i), 0).expect("B warm-serves");
        assert_ne!(
            from_b.outcome,
            ServeOutcome::Solved,
            "instance {i} solved on B"
        );
        assert_eq!(from_b.fingerprint, from_a.fingerprint);
        assert_eq!(from_b.interpretation, from_a.interpretation);
        // Down to the persisted record frame, not just structural equality.
        assert_eq!(
            record::encode_record(from_b.fingerprint, &from_b.interpretation),
            record::encode_record(from_a.fingerprint, &from_a.interpretation),
        );
    }
    let stats_b = server_b.service().stats();
    assert_eq!(stats_b.misses, 0, "node B must pay zero API solves");
    assert_eq!(stats_b.failures, 0);
    let fabric_b = stats_b.fabric.expect("fabric stats active after ingest");
    assert_eq!(fabric_b.ingested, 2);
    assert_eq!(fabric_b.rejected, 0);

    drop((client_a, client_b, core_a, core_b));
    server_b.close().expect("B closes clean");
    server_a.close().expect("A closes clean");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Model safety on both sides of the wire: the puller refuses a peer
/// whose hello declares a different model, the server refuses a caller
/// whose digest request declares a different shape, and a storeless
/// server answers `NoStore`.
#[test]
fn mismatched_models_and_missing_stores_are_refused_with_typed_errors() {
    let dir_a = temp_dir("mm_a");
    let dir_b = temp_dir("mm_b");
    let server_a = spawn_node(&dir_a, 1);
    let server_b = spawn_node(&dir_b, 2);

    // Puller side: the hello's model id differs — refused before any
    // record moves.
    let core_b = server_b.service().core();
    match sync_peer_once(
        &core_b,
        &server_a.local_addr().to_string(),
        &fabric_config(2),
    ) {
        Err(FabricError::ModelMismatch { local, remote }) => {
            assert_eq!(local.model_id, 2);
            assert_eq!(remote.model_id, 1);
            assert_eq!(local.dim, DIM);
            assert_eq!(remote.dim, DIM);
        }
        other => panic!("expected ModelMismatch, got {other:?}"),
    }
    assert_eq!(core_b.store().expect("B has a store").len(), 0);

    // Server side: a caller that skips the hello check still gets the
    // typed refusal when its declared shape disagrees.
    let mut client = Client::connect(server_a.local_addr()).expect("handshake");
    assert_eq!(client.server_model().model_id, 1);
    assert_eq!(client.server_model().dim, DIM);
    let bogus = ModelInfo {
        dim: DIM + 1,
        num_classes: 3,
        model_id: 1,
    };
    match client.sync_digest(&bogus) {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::ModelMismatch),
        other => panic!("expected remote ModelMismatch, got {other:?}"),
    }
    // The connection survives a refusal: a correct declaration works.
    let correct = client.server_model();
    let digest = client
        .sync_digest(&correct)
        .expect("correct declaration accepted");
    assert_eq!(digest.total(), 0);

    // A storeless node refuses to sync out...
    let storeless =
        InterpretationService::new(CountingApi::new(two_region_plm()), service_config(1));
    let server_c = Server::bind("127.0.0.1:0", storeless, ServerConfig::default()).expect("bind");
    let core_c = server_c.service().core();
    match sync_peer_once(
        &core_c,
        &server_a.local_addr().to_string(),
        &fabric_config(0),
    ) {
        Err(FabricError::NoLocalStore) => {}
        other => panic!("expected NoLocalStore, got {other:?}"),
    }
    // ...and refuses to sync in, with the typed wire error.
    let mut client_c = Client::connect(server_c.local_addr()).expect("handshake");
    let model_c = client_c.server_model();
    match client_c.sync_digest(&model_c) {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::NoStore),
        other => panic!("expected remote NoStore, got {other:?}"),
    }

    drop((client, client_c, core_b, core_c));
    server_c.close().expect("C closes clean");
    server_b.close().expect("B closes clean");
    server_a.close().expect("A closes clean");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// A 3-node ring with disjoint traffic converges to digest equality in
/// a bounded number of driven passes (here: one ring pass — B pulls A,
/// C pulls B, A pulls C — leaves every store holding the full union).
#[test]
fn three_node_ring_converges_to_digest_equality_in_bounded_passes() {
    let dirs: Vec<PathBuf> = ["ring_a", "ring_b", "ring_c"]
        .iter()
        .map(|t| temp_dir(t))
        .collect();
    let servers: Vec<_> = dirs.iter().map(|d| spawn_node(d, 3)).collect();

    // Disjoint traffic: A solves region 0 (even instances), B solves
    // region 1 (odd instances), C stays cold.
    for i in [0usize, 2] {
        servers[0]
            .service()
            .submit_instance(instance(i), 0)
            .wait()
            .expect("A solves region 0");
    }
    for i in [1usize, 3] {
        servers[1]
            .service()
            .submit_instance(instance(i), 0)
            .wait()
            .expect("B solves region 1");
    }

    let cores: Vec<_> = servers.iter().map(|s| s.service().core()).collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let config = fabric_config(3);
    let digests_agree = |cores: &[ServiceCore<CountingApi<TwoRegionPlm>>]| {
        let first = cores[0].store().expect("store").digest();
        cores[1..]
            .iter()
            .all(|c| c.store().expect("store").digest() == first)
    };

    const PASS_BOUND: usize = 3;
    let mut passes = 0;
    while !digests_agree(&cores) {
        assert!(
            passes < PASS_BOUND,
            "no convergence within {PASS_BOUND} ring passes"
        );
        // One ring pass: each node pulls from its predecessor.
        for (me, pred) in [(1usize, 0usize), (2, 1), (0, 2)] {
            sync_peer_once(&cores[me], &addrs[pred], &config).expect("ring exchange");
        }
        passes += 1;
    }
    assert!(passes <= PASS_BOUND);

    // Full union everywhere, bit for bit.
    let dump = full_dump(cores[0].store().expect("store"));
    for core in &cores[1..] {
        let store = core.store().expect("store");
        assert_eq!(store.len(), 2, "both regions replicated");
        assert_eq!(full_dump(store), dump);
    }

    drop(cores);
    for server in servers {
        server.close().expect("closes clean");
    }
    for dir in dirs {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The background gossip loop reaches the same fixed point without any
/// driving: two [`FabricNode`]s on a short interval converge to digest
/// equality, after which the cold node warm-serves with zero solves.
#[test]
fn background_fabric_nodes_converge_and_then_warm_serve() {
    let dir_a = temp_dir("bg_a");
    let dir_b = temp_dir("bg_b");
    let server_a = spawn_node(&dir_a, 9);
    let server_b = spawn_node(&dir_b, 9);

    for i in 0..4 {
        server_a
            .service()
            .submit_instance(instance(i), 0)
            .wait()
            .expect("A solves");
    }

    let core_a = server_a.service().core();
    let core_b = server_b.service().core();
    let make_config = |peer: &Server<CountingApi<TwoRegionPlm>>| FabricConfig {
        peers: vec![peer.local_addr().to_string()],
        interval: Duration::from_millis(20),
        model_id: 9,
        ..FabricConfig::default()
    };
    let fabric_a = FabricNode::spawn(core_a.clone(), make_config(&server_b));
    let fabric_b = FabricNode::spawn(core_b.clone(), make_config(&server_a));

    // Poll for digest equality with a generous deadline; the loop ticks
    // every 20ms, so convergence is expected within a few ticks.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let a = core_a.store().expect("store").digest();
        let b = core_b.store().expect("store").digest();
        if a == b && a.total() == 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no background convergence within 30s"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Shut the fabric down before the servers (the nodes hold live
    // `ServiceCore` clones).
    fabric_b.shutdown();
    fabric_a.shutdown();

    let fabric_stats = server_b.service().stats().fabric.expect("fabric active");
    assert_eq!(fabric_stats.peers, 1);
    assert!(fabric_stats.rounds >= 1);
    assert_eq!(fabric_stats.ingested, 2);
    assert_eq!(fabric_stats.rejected, 0);

    let mut client_b = Client::connect(server_b.local_addr()).expect("handshake");
    assert_eq!(client_b.server_model().model_id, 9);
    for i in 0..4 {
        let served = client_b.interpret(&instance(i), 0).expect("B warm-serves");
        assert_ne!(served.outcome, ServeOutcome::Solved);
    }
    assert_eq!(server_b.service().stats().misses, 0);

    drop((client_b, core_a, core_b));
    server_b.close().expect("B closes clean");
    server_a.close().expect("A closes clean");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Version sanity for the fabric protocol: the handshake that carries
/// the model declaration is protocol v2.
#[test]
fn fabric_requires_protocol_v2() {
    assert_eq!(VERSION, 2);
}

/// The anti-resurrection scenario: once any node tombstones a region,
/// the suppression replicates like any other fact, beats the live record
/// in every arrival order, and drives the cluster back to digest
/// equality — a forgotten region stays forgotten cluster-wide.
#[test]
fn replicated_tombstone_beats_the_live_record_in_any_order() {
    let dir_a = temp_dir("tomb_a");
    let dir_b = temp_dir("tomb_b");
    let dir_c = temp_dir("tomb_c");
    let server_a = spawn_node(&dir_a, 5);
    let server_b = spawn_node(&dir_b, 5);
    let server_c = spawn_node(&dir_c, 5);
    let core_a = server_a.service().core();
    let core_b = server_b.service().core();
    let core_c = server_c.service().core();
    let addr_a = server_a.local_addr().to_string();
    let addr_b = server_b.local_addr().to_string();
    let config = fabric_config(5);

    // A solves both regions; B replicates them while they are still live.
    let stale = server_a
        .service()
        .submit_instance(instance(0), 0)
        .wait()
        .expect("A solves region 0");
    server_a
        .service()
        .submit_instance(instance(1), 0)
        .wait()
        .expect("A solves region 1");
    let report = sync_peer_once(&core_b, &addr_a, &config).expect("B pulls live records");
    assert_eq!(report.ingested, 2);

    // A invalidates region 0 (the drift detector's verdict, applied via
    // the same entry point the fabric uses).
    assert!(core_a.apply_tombstone(0, stale.fingerprint));
    let store_a = core_a.store().expect("A has a store");
    assert!(store_a.contains_tombstone(0, stale.fingerprint));
    assert_eq!(store_a.len(), 1);

    // Tombstone-first arrival: cold node C pulls A, receiving the
    // surviving live record AND the tombstone — before ever seeing the
    // stale live record.
    let report = sync_peer_once(&core_c, &addr_a, &config).expect("C pulls A");
    assert!(report.converged, "C must hold everything A had: {report:?}");
    assert_eq!(report.ingested, 2, "one live record + one tombstone");
    assert_eq!(report.rejected, 0);
    let store_c = core_c.store().expect("C has a store");
    assert!(store_c.contains_tombstone(0, stale.fingerprint));

    // Resurrection attempt: B still holds the stale live record and
    // happily ships it. C must refuse it — the tombstone wins.
    let one_round = FabricConfig {
        max_rounds: 1,
        ..fabric_config(5)
    };
    let report = sync_peer_once(&core_c, &addr_b, &one_round).expect("C pulls B");
    assert_eq!(report.ingested, 0, "nothing from B is news to C");
    assert!(
        report.pulled_records == 0 || report.duplicates > 0,
        "a re-shipped stale record counts as a duplicate, never an ingest: {report:?}"
    );
    assert!(
        !store_c.contains_fingerprint(0, stale.fingerprint),
        "the stale region must not resurface on C"
    );
    assert!(store_c.contains_tombstone(0, stale.fingerprint));

    // Late tombstone arrival: B pulls A and suppresses its live copy.
    let report = sync_peer_once(&core_b, &addr_a, &config).expect("B pulls A");
    assert!(report.converged);
    let store_b = core_b.store().expect("B has a store");
    assert!(store_b.contains_tombstone(0, stale.fingerprint));
    assert!(!store_b.contains_fingerprint(0, stale.fingerprint));

    // The regression the digest must catch: all three nodes tombstoned
    // the same region by different routes, and their digests agree — a
    // digest blind to tombstones would report false divergence here.
    assert_eq!(store_a.digest(), store_b.digest());
    assert_eq!(store_a.digest(), store_c.digest());
    assert_eq!(full_dump(store_a), full_dump(store_b));
    assert_eq!(full_dump(store_a), full_dump(store_c));
    for store in [store_a, store_b, store_c] {
        assert_eq!(store.len(), 1, "one live region survives cluster-wide");
        assert_eq!(store.tombstone_count(), 1);
    }

    drop((core_a, core_b, core_c));
    server_c.close().expect("C closes clean");
    server_b.close().expect("B closes clean");
    server_a.close().expect("A closes clean");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
    let _ = std::fs::remove_dir_all(&dir_c);
}

/// Builds a small synthetic pool of distinct, well-formed records.
fn synthetic_records(count: usize) -> Vec<(RegionFingerprint, Arc<Interpretation>)> {
    const C: usize = 3;
    (0..count)
        .map(|k| {
            let class = k % C;
            let pairwise: Vec<PairwiseCoreParams> = (0..C)
                .filter(|&c| c != class)
                .map(|c_prime| PairwiseCoreParams {
                    c_prime,
                    weights: Vector::from(vec![
                        k as f64 + 0.25,
                        -(c_prime as f64) - 0.5,
                        (k * 7 % 11) as f64 * 0.125,
                        1.0,
                    ]),
                    bias: k as f64 * 0.5 - c_prime as f64,
                })
                .collect();
            let interpretation =
                Interpretation::from_pairwise(class, pairwise).expect("well-formed");
            let fingerprint = interpretation.fingerprint(6);
            (fingerprint, Arc::new(interpretation))
        })
        .collect()
}

/// The WAL frame either kind of store record encodes to.
fn frame_of(r: &record::StoreRecord) -> Vec<u8> {
    match r {
        record::StoreRecord::Live(r) => record::encode_record(r.fingerprint, &r.interpretation),
        record::StoreRecord::Tombstone(t) => record::encode_tombstone(*t),
    }
}

/// Deterministic pseudo-shuffle: a seeded keyed sort, so each proptest
/// case exercises a different ingestion interleaving — live records and
/// tombstones mixed — without needing a runtime RNG.
fn shuffled(mut records: Vec<record::StoreRecord>, seed: u64) -> Vec<record::StoreRecord> {
    records.sort_by_key(|r| {
        frame_of(r)
            .iter()
            .fold(seed.wrapping_mul(0x9E3779B97F4A7C15), |acc, &b| {
                acc.rotate_left(7) ^ u64::from(b)
            })
    });
    records
}

/// Pulls every frame `from` would ship past `have`, decodes both record
/// kinds, and applies them to `into` in a seed-dependent order.
fn exchange(from: &RegionStore, into: &RegionStore, seed: u64) {
    let all: Vec<u32> = (0..DIGEST_BUCKETS as u32).collect();
    let delta = from.sync_delta(&all, &into.record_keys(), usize::MAX);
    let mut frames = delta.frames.as_slice();
    let mut records = Vec::new();
    while !frames.is_empty() {
        records.push(record::get_any_record(&mut frames).expect("frames decode"));
    }
    for r in shuffled(records, seed) {
        match r {
            record::StoreRecord::Live(r) => {
                let _ = into.append(r.fingerprint, r.interpretation);
            }
            record::StoreRecord::Tombstone(t) => {
                let _ = into.tombstone(t.class, t.fingerprint);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Theorem-2 replication property, now with both kinds of immutable
    /// fact: however a record set is partitioned across two stores (with
    /// overlap), wherever the tombstones originate, and however the
    /// exchanged frames are interleaved on ingest, both stores converge
    /// to the same bit-identical union — with every tombstoned key
    /// suppressed on both sides.
    #[test]
    fn record_exchange_is_an_order_independent_set_union(
        seed in 0u64..1_000_000,
        mask in 1u32..(1 << 10) - 1,
        tomb_mask in 0u32..(1 << 10) - 1,
    ) {
        let pool = synthetic_records(10);
        let dir_a = temp_dir("prop_a");
        let dir_b = temp_dir("prop_b");
        let store_a = RegionStore::open(&dir_a, StoreConfig::default()).expect("open A");
        let store_b = RegionStore::open(&dir_b, StoreConfig::default()).expect("open B");

        // Partition by mask bit; every third record lands in both stores
        // so the exchange also crosses duplicates.
        for (k, (fingerprint, interpretation)) in pool.iter().enumerate() {
            let to_a = mask & (1 << k) != 0;
            if to_a || k % 3 == 0 {
                let _ = store_a.append(*fingerprint, Arc::clone(interpretation));
            }
            if !to_a || k % 3 == 0 {
                let _ = store_b.append(*fingerprint, Arc::clone(interpretation));
            }
        }
        // Tombstones originate on the seed-chosen side — including for
        // keys that side never held (the fact can outrun the record).
        for (k, (fingerprint, interpretation)) in pool.iter().enumerate() {
            if tomb_mask & (1 << k) != 0 {
                let origin = if (seed >> k) & 1 == 0 { &store_a } else { &store_b };
                let _ = origin.tombstone(interpretation.class, *fingerprint);
            }
        }

        // Exchange in both directions, each with its own interleaving;
        // one more round so late tombstones reach the far side too.
        exchange(&store_a, &store_b, seed);
        exchange(&store_b, &store_a, seed.rotate_left(17));
        exchange(&store_a, &store_b, seed.rotate_left(31));

        // Same set, same digest, same bytes — regardless of seed/masks —
        // and tombstones won everywhere they apply.
        let tombstoned = (0..pool.len()).filter(|k| tomb_mask & (1 << k) != 0).count();
        prop_assert_eq!(store_a.len(), pool.len() - tombstoned);
        prop_assert_eq!(store_a.tombstone_count(), tombstoned);
        prop_assert_eq!(store_a.record_keys(), store_b.record_keys());
        prop_assert_eq!(store_a.digest(), store_b.digest());
        prop_assert_eq!(full_dump(&store_a), full_dump(&store_b));
        for (k, (fingerprint, interpretation)) in pool.iter().enumerate() {
            let dead = tomb_mask & (1 << k) != 0;
            for store in [&store_a, &store_b] {
                prop_assert_eq!(store.contains_tombstone(interpretation.class, *fingerprint), dead);
                prop_assert_eq!(store.contains_fingerprint(interpretation.class, *fingerprint), !dead);
            }
        }

        drop((store_a, store_b));
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }
}
