//! Concurrency coverage of the interpretation service through the facade:
//! N client threads hammer one service on overlapping regions, and the
//! paper's guarantees must hold under contention — every returned
//! interpretation explains its own probe (exactness via Theorem 2), the
//! bounded cache never exceeds its capacity, and the statistics ledger adds
//! up request by request. Plus a property-based round-trip of the cache
//! snapshot codec.

use openapi_repro::api::CountingApi;
use openapi_repro::core::decision::PairwiseCoreParams;
use openapi_repro::prelude::*;
use openapi_repro::serve::{CacheSnapshot, ServeOutcome, SnapshotEntry, Ticket};
use proptest::prelude::*;
use std::time::Duration;

mod common;
use common::{two_region_plm, DIM};

const CLIENTS: usize = 6;
const REQUESTS_PER_CLIENT: usize = 25;

/// Client `t`'s `i`-th instance: deterministic, alternating regions.
fn instance(t: usize, i: usize) -> Vector {
    let mut x: Vec<f64> = (0..DIM)
        .map(|j| (((t * REQUESTS_PER_CLIENT + i) * DIM + j) as f64 * 0.61).cos() * 0.4)
        .collect();
    x[1] = if (t + i).is_multiple_of(2) { -0.6 } else { 1.1 };
    Vector(x)
}

#[test]
fn hammered_service_stays_exact_bounded_and_accounted() {
    let model = two_region_plm();
    let service = InterpretationService::new(
        CountingApi::new(two_region_plm()),
        ServiceConfig {
            workers: 4,
            cache: SharedCacheConfig {
                shards: 4,
                capacity: 32,
                ..SharedCacheConfig::default()
            },
            // One leader slot per class keeps the solve count deterministic
            // (≤ one per distinct class/region pair) so the ledger bounds
            // below are exact; the concurrent-leader pool has its own
            // deterministic coverage in the openapi-serve unit tests.
            max_leaders_per_class: 1,
            ..ServiceConfig::default()
        },
    );

    let mut per_request: Vec<(usize, ServeOutcome)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let service = &service;
                scope.spawn(move || {
                    let class = t % 3;
                    let submitted: Vec<(Vector, Ticket)> = (0..REQUESTS_PER_CLIENT)
                        .map(|i| {
                            let x = instance(t, i);
                            let ticket = service.submit_instance(x.clone(), class);
                            (x, ticket)
                        })
                        .collect();
                    submitted
                        .into_iter()
                        .map(|(x, ticket)| {
                            let served = ticket.wait().expect("interior instances interpret");
                            (x, class, served)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (x, class, served) in handle.join().expect("client thread") {
                // Exactness under contention: the served parameters are the
                // ground truth of the instance's own region, for every one
                // of the 150 requests, whatever thread solved it.
                let truth = model.local_model(x.as_slice()).decision_features(class);
                let err = served
                    .interpretation
                    .decision_features
                    .l1_distance(&truth)
                    .unwrap();
                assert!(err < 1e-7, "client class {class}: L1Dist {err}");
                // And the interpretation explains the instance's probe: the
                // membership identity the service verified before serving.
                let probs = model.predict(x.as_slice());
                assert!(served
                    .interpretation
                    .explains_probe(&x, probs.as_slice(), 1e-6));
                per_request.push((served.queries, served.outcome));
            }
        }
    });

    // Capacity bound: 6 distinct (class, region) pairs ≪ 32; nothing may
    // have been evicted, and the cache never exceeds its bound.
    assert!(service.cache().len() <= service.cache().capacity());
    assert_eq!(service.stats().evictions, 0);

    // Stats totals equal the sum of per-request outcomes.
    let stats = service.stats();
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    assert_eq!(stats.requests, total);
    assert_eq!(stats.failures, 0);
    assert_eq!(
        stats.hits + stats.store_hits + stats.misses + stats.coalesced_served + stats.failures,
        total,
        "every request ends in exactly one outcome bucket"
    );
    assert_eq!(stats.store_hits, 0, "no durable store attached here");
    let count = |o: ServeOutcome| per_request.iter().filter(|(_, x)| *x == o).count() as u64;
    assert_eq!(count(ServeOutcome::CacheHit), stats.hits);
    assert_eq!(count(ServeOutcome::Solved), stats.misses);
    assert_eq!(count(ServeOutcome::Coalesced), stats.coalesced_served);
    // Per-request query receipts sum to the ledger, which matches the
    // metered API exactly.
    let receipts: u64 = per_request.iter().map(|(q, _)| *q as u64).sum();
    assert_eq!(receipts, stats.queries);
    assert_eq!(stats.queries, service.api().queries());
    // Region sharing worked: 6 clients × 2 regions × 3 classes can need at
    // most 6 solves (one per distinct class/region pair), not one per
    // client.
    assert!(stats.misses <= 6, "misses {}", stats.misses);
    // Latency quantiles exist and are ordered.
    let (p50, p99) = (stats.p50_latency.unwrap(), stats.p99_latency.unwrap());
    assert!(p50 <= p99 && p99 < Duration::from_secs(3600));
}

#[test]
fn capacity_bound_holds_under_many_distinct_regions() {
    // More distinct (class, region) pairs than capacity: eviction must keep
    // the cache at its bound while every answer stays exact.
    let model = two_region_plm();
    let service = InterpretationService::new(
        two_region_plm(),
        ServiceConfig {
            workers: 3,
            cache: SharedCacheConfig {
                shards: 2,
                capacity: 2,
                ..SharedCacheConfig::default()
            },
            ..ServiceConfig::default()
        },
    );
    std::thread::scope(|scope| {
        for t in 0..3 {
            let service = &service;
            let model = &model;
            scope.spawn(move || {
                for i in 0..10 {
                    let x = instance(t, i);
                    let class = (t + i) % 3;
                    let served = service
                        .submit_instance(x.clone(), class)
                        .wait()
                        .expect("interpretable");
                    let truth = model.local_model(x.as_slice()).decision_features(class);
                    let err = served
                        .interpretation
                        .decision_features
                        .l1_distance(&truth)
                        .unwrap();
                    assert!(err < 1e-7, "thread {t} item {i}: L1Dist {err}");
                }
            });
        }
    });
    assert!(
        service.cache().len() <= service.cache().capacity(),
        "eviction must keep the cache within its bound"
    );
    assert!(
        service.stats().evictions > 0,
        "6 class/region pairs through a 2-capacity cache must evict"
    );
}

/// Strategy: an arbitrary (but valid) interpretation — 1–3 contrasts over
/// distinct classes, finite weights/biases at mixed magnitudes.
fn arb_interpretation() -> impl Strategy<Value = Interpretation> {
    (
        0usize..4,
        1usize..4,
        prop::collection::vec(-1e6f64..1e6, 1..6),
    )
        .prop_flat_map(|(class, contrasts, weights)| {
            let d = weights.len();
            prop::collection::vec(
                (prop::collection::vec(-1e6f64..1e6, d), -1e3f64..1e3),
                contrasts..=contrasts,
            )
            .prop_map(move |per_contrast| {
                let pairwise = per_contrast
                    .into_iter()
                    .enumerate()
                    .map(|(k, (w, bias))| PairwiseCoreParams {
                        // Distinct contrast classes, never equal to `class`.
                        c_prime: class + k + 1,
                        weights: Vector(w),
                        bias,
                    })
                    .collect();
                Interpretation::from_pairwise(class, pairwise).expect("non-empty contrasts")
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_snapshot_round_trips_fingerprints_and_parameters(
        interps in prop::collection::vec(arb_interpretation(), 0..8)
    ) {
        let snapshot = CacheSnapshot {
            entries: interps
                .iter()
                .map(|i| SnapshotEntry {
                    fingerprint: i.fingerprint(6),
                    interpretation: std::sync::Arc::new(i.clone()),
                })
                .collect(),
        };
        let decoded = CacheSnapshot::from_bytes(&snapshot.to_bytes()).unwrap();
        prop_assert_eq!(&decoded, &snapshot);
        for (entry, original) in decoded.entries.iter().zip(&interps) {
            // Recovered parameters are bit-identical…
            prop_assert_eq!(entry.interpretation.as_ref(), original);
            // …so the canonical fingerprint recomputes identically too.
            prop_assert_eq!(entry.fingerprint, entry.interpretation.fingerprint(6));
        }
    }
}
