//! Crash-recovery coverage of the durable region store through the
//! facade: a WAL torn at *every* byte boundary, or corrupted by random
//! byte flips, must either recover a valid prefix of what was written or
//! reject the damage outright — it may never produce a record that was
//! not written. On top of the byte-level guarantees, the service-level
//! restart contract: an `InterpretationService` reopened against the same
//! store directory re-serves every previously solved region with zero
//! additional Algorithm-1 solves, and a store written by a *different*
//! model degrades to ordinary solves (membership re-verification guards
//! every serve).

use openapi_repro::api::CountingApi;
use openapi_repro::core::decision::{Interpretation, PairwiseCoreParams};
use openapi_repro::prelude::*;
use openapi_repro::serve::ServeOutcome;
use openapi_repro::store::record::{
    encode_record, encode_tombstone, RegionTombstone, StoreRecord, StoredRegion,
};
use openapi_repro::store::{Wal, WAL_MAGIC};
use openapi_repro::sync::atomic::{AtomicU64, Ordering};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;

mod common;
use common::{two_region_plm, DIM};

/// A unique, created temp directory per call; every test removes its own.
fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "openapi_store_it_{tag}_{}_{}",
        std::process::id(),
        // ordering: Relaxed — uniqueness only; nothing published.
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A synthetic region whose single weight vector encodes its identity.
fn region(class: usize, weights: Vec<f64>, bias: f64) -> StoredRegion {
    let interpretation = Interpretation::from_pairwise(
        class,
        vec![PairwiseCoreParams {
            c_prime: class + 1,
            weights: Vector(weights),
            bias,
        }],
    )
    .unwrap();
    StoredRegion {
        fingerprint: interpretation.fingerprint(6),
        interpretation: Arc::new(interpretation),
    }
}

/// A tombstone suppressing `r`'s `(class, fingerprint)` key.
fn tombstone_of(r: &StoredRegion) -> StoreRecord {
    StoreRecord::Tombstone(RegionTombstone {
        fingerprint: r.fingerprint,
        class: r.interpretation.class,
    })
}

/// Encodes any store record into its WAL frame.
fn frame_of(record: &StoreRecord) -> Vec<u8> {
    match record {
        StoreRecord::Live(r) => encode_record(r.fingerprint, &r.interpretation),
        StoreRecord::Tombstone(t) => encode_tombstone(*t),
    }
}

/// Writes `records` — live regions and tombstones alike — into a fresh
/// WAL file and returns its raw bytes.
fn wal_bytes(dir: &std::path::Path, records: &[StoreRecord]) -> Vec<u8> {
    let path = dir.join("wal.log");
    let (mut wal, _) = Wal::open(&path).unwrap();
    let frames: Vec<Vec<u8>> = records.iter().map(frame_of).collect();
    wal.append(&frames).unwrap();
    wal.sync().unwrap();
    drop(wal);
    std::fs::read(&path).unwrap()
}

/// Recovers a WAL from `bytes` (written into a scratch file) and asserts
/// the fundamental safety property: the recovered records are exactly a
/// prefix of `originals` — bit-identical, in order, possibly shorter,
/// never different and never reordered. Tombstones obey the same law:
/// damage can lose a suppression from the tail, never invent one.
fn recover_and_check_prefix(scratch: &std::path::Path, bytes: &[u8], originals: &[StoreRecord]) {
    let path = scratch.join("wal.log");
    std::fs::write(&path, bytes).unwrap();
    match Wal::open(&path) {
        Ok((_, recovery)) => {
            assert!(
                recovery.records.len() <= originals.len(),
                "recovered more records than were written"
            );
            for (got, want) in recovery.records.iter().zip(originals) {
                assert_eq!(
                    got, want,
                    "recovery must never yield a record that was not written"
                );
            }
        }
        Err(e) => {
            // Refusal (e.g. the magic itself was damaged) is as safe as a
            // prefix — the store never trusts damaged framing.
            assert!(
                matches!(e, StoreError::BadMagic { .. }),
                "only a damaged header may abort recovery, got {e}"
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncating_the_wal_at_every_byte_boundary_recovers_a_valid_prefix() {
    let dir = temp_dir("truncate");
    // Mixed live records and tombstones: one tombstone retracting an
    // earlier record in the same log, one for a key the log never held
    // (replicated from a peer before the record itself arrived).
    let live: Vec<StoredRegion> = (0..5)
        .map(|i| {
            region(
                i % 3,
                vec![i as f64 + 0.5, -(i as f64) * 0.25],
                0.125 * i as f64,
            )
        })
        .collect();
    let foreign = region(1, vec![99.0, -3.5], 0.75);
    let originals: Vec<StoreRecord> = vec![
        StoreRecord::Live(live[0].clone()),
        StoreRecord::Live(live[1].clone()),
        tombstone_of(&live[0]),
        StoreRecord::Live(live[2].clone()),
        tombstone_of(&foreign),
        StoreRecord::Live(live[3].clone()),
        StoreRecord::Live(live[4].clone()),
        tombstone_of(&live[4]),
    ];
    let clean = wal_bytes(&dir, &originals);
    let scratch = temp_dir("truncate_scratch");
    // Every truncation point, exhaustively — including mid-header,
    // mid-frame-length, mid-CRC, and mid-payload positions.
    for keep in 0..=clean.len() {
        recover_and_check_prefix(&scratch, &clean[..keep], &originals);
    }
    // The untruncated log recovers everything.
    let path = scratch.join("wal.log");
    std::fs::write(&path, &clean).unwrap();
    let (_, recovery) = Wal::open(&path).unwrap();
    assert_eq!(recovery.records, originals);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&scratch).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random byte flips anywhere in the log (header included): recovery
    /// yields a valid prefix or fails with a checksum/framing error —
    /// never a record that was not written. CRC-64 makes a silently
    /// accepted corruption a ~2⁻⁶⁴ event; these cases assert the handling
    /// around it. Seeds divisible by 3 chase their record with its
    /// tombstone, so the sweep covers mixed-kind logs too.
    #[test]
    fn random_byte_flips_never_yield_a_wrong_record(
        seeds in prop::collection::vec(0u64..1_000_000, 1..5),
        flips in prop::collection::vec((0usize..10_000, 1u8..=255), 1..8)
    ) {
        let mut originals: Vec<StoreRecord> = Vec::new();
        for (i, &s) in seeds.iter().enumerate() {
            let w = (s % 997) as f64 * 0.01 - 4.0;
            let r = region(i % 4, vec![w, w * 0.5 - 1.0, 0.25], (s % 31) as f64 * 0.1);
            if s % 3 == 0 {
                originals.push(tombstone_of(&r));
            }
            originals.push(StoreRecord::Live(r));
        }
        let dir = temp_dir("flip");
        let clean = wal_bytes(&dir, &originals);
        let mut corrupted = clean.clone();
        for (pos, xor) in &flips {
            let at = pos % corrupted.len();
            corrupted[at] ^= xor;
        }
        let scratch = temp_dir("flip_scratch");
        recover_and_check_prefix(&scratch, &corrupted, &originals);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&scratch).ok();
    }
}

#[test]
fn damaged_magic_refuses_instead_of_guessing() {
    let dir = temp_dir("magic");
    let clean = wal_bytes(&dir, &[StoreRecord::Live(region(0, vec![1.0], 0.0))]);
    let mut damaged = clean;
    damaged[3] ^= 0xFF; // inside the 8-byte magic
    let path = dir.join("damaged.log");
    std::fs::write(&path, &damaged).unwrap();
    assert!(matches!(Wal::open(&path), Err(StoreError::BadMagic { .. })));
    // Sanity: the magic constant is what the file actually starts with.
    let (reopened, _) = Wal::open(&dir.join("wal.log")).unwrap();
    drop(reopened);
    let bytes = std::fs::read(dir.join("wal.log")).unwrap();
    assert_eq!(
        u64::from_le_bytes(bytes[..8].try_into().unwrap()),
        WAL_MAGIC
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Instances covering both regions of the shared two-region PLM.
fn workload(n: usize) -> Vec<Vector> {
    (0..n)
        .map(|i| {
            let mut x: Vec<f64> = (0..DIM)
                .map(|j| ((i * DIM + j) as f64 * 0.61).cos() * 0.4)
                .collect();
            x[1] = if i % 2 == 0 { -0.6 } else { 1.1 };
            Vector(x)
        })
        .collect()
}

#[test]
fn restarted_service_reserves_from_the_store_with_zero_solves() {
    let dir = temp_dir("service_restart");
    // 4 instances over 2 regions at d = 8: the cold run pays 2 solves
    // (≥ 10 queries each) + 2 probes, the warm run 4 probes — so the ≥5×
    // query-reduction bound below is meaningful, not slack.
    let instances = workload(4);

    // Run 1: cold — every region pays its Algorithm-1 solve, and the
    // store's WAL absorbs the solved regions.
    let svc = InterpretationService::open(
        CountingApi::new(two_region_plm()),
        ServiceConfig::default(),
        &dir,
    )
    .unwrap();
    for x in &instances {
        svc.submit_instance(x.clone(), 0).wait().unwrap();
    }
    let cold = svc.stats();
    assert!(cold.misses >= 2, "both regions solved");
    let cold_queries = cold.queries;
    svc.close().unwrap();

    // Run 2: a brand-new process image (fresh service, fresh cache) over
    // the same directory. Zero additional solves; every request costs
    // exactly its one membership probe.
    let svc = InterpretationService::open(
        CountingApi::new(two_region_plm()),
        ServiceConfig::default(),
        &dir,
    )
    .unwrap();
    let mut outcomes = Vec::new();
    for x in &instances {
        let served = svc.submit_instance(x.clone(), 0).wait().unwrap();
        assert_eq!(served.queries, 1, "restart pays one probe per request");
        outcomes.push(served.outcome);
    }
    let warm = svc.stats();
    assert_eq!(warm.misses, 0, "zero Algorithm-1 solves after restart");
    assert_eq!(warm.store_hits, 2, "one store hit per region, then cache");
    assert!(outcomes
        .iter()
        .all(|o| matches!(o, ServeOutcome::StoreHit | ServeOutcome::CacheHit)));
    assert_eq!(warm.queries, instances.len() as u64);
    assert!(
        cold_queries >= 5 * warm.queries,
        "warm restart must cut queries ≥5×: {cold_queries} vs {}",
        warm.queries
    );
    // Exactness after recovery: the served parameters still match the
    // ground truth of each instance's own region.
    let model = two_region_plm();
    let served = svc.submit_instance(instances[0].clone(), 0).wait().unwrap();
    let truth = model
        .local_model(instances[0].as_slice())
        .decision_features(0);
    let err = served
        .interpretation
        .decision_features
        .l1_distance(&truth)
        .unwrap();
    assert!(err < 1e-7, "L1Dist {err}");
    svc.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_wal_tail_costs_at_most_the_torn_region() {
    // Crash mid-append: the service reopens against a WAL whose last
    // record is torn. The intact region is re-served from the store; the
    // torn one is transparently re-solved. No error, no wrong answer.
    let dir = temp_dir("service_torn");
    let instances = workload(2); // one instance per region
    let svc = InterpretationService::open(
        CountingApi::new(two_region_plm()),
        ServiceConfig::default(),
        &dir,
    )
    .unwrap();
    for x in &instances {
        svc.submit_instance(x.clone(), 0).wait().unwrap();
    }
    svc.close().unwrap();

    // Simulate the crash: tear bytes off the WAL tail (into the second
    // record).
    let wal_path = dir.join("wal.log");
    let len = std::fs::metadata(&wal_path).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&wal_path)
        .unwrap()
        .set_len(len - 9)
        .unwrap();

    let svc = InterpretationService::open(
        CountingApi::new(two_region_plm()),
        ServiceConfig::default(),
        &dir,
    )
    .unwrap();
    assert_eq!(
        svc.store().unwrap().len(),
        1,
        "one region survived the tear"
    );
    assert!(svc.store().unwrap().stats().recovered_discarded_bytes > 0);
    for x in &instances {
        let served = svc.submit_instance(x.clone(), 0).wait().unwrap();
        assert!(served.interpretation.explains_probe(
            x,
            two_region_plm().predict(x.as_slice()).as_slice(),
            1e-6
        ));
    }
    let stats = svc.stats();
    assert_eq!(stats.misses, 1, "only the torn region re-solves");
    assert_eq!(stats.store_hits, 1);
    svc.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_written_by_a_different_model_never_poisons_serves() {
    // The snapshot-from-wrong-model regression, mirrored against the
    // durable tier: records recovered from an unrelated model's store can
    // never pass the live membership test, so requests fall through to
    // clean solves.
    let dir = temp_dir("service_foreign");
    let mut rng = StdRng::seed_from_u64(11);
    let foreign: Vec<StoredRegion> = (0..4)
        .map(|i| {
            region(
                i % 3,
                (0..DIM).map(|_| rng.gen_range(-2.0..2.0)).collect(),
                rng.gen_range(-1.0..1.0),
            )
        })
        .collect();
    {
        let store = RegionStore::open(&dir, StoreConfig::default()).unwrap();
        for r in &foreign {
            store.append(r.fingerprint, Arc::clone(&r.interpretation));
        }
        store.close().unwrap();
    }

    let svc = InterpretationService::open(
        CountingApi::new(two_region_plm()),
        ServiceConfig::default(),
        &dir,
    )
    .unwrap();
    assert_eq!(svc.store().unwrap().len(), 4, "foreign records recovered");
    let instances = workload(4);
    for x in &instances {
        let served = svc
            .submit_instance(x.clone(), 0)
            .wait()
            .expect("foreign store must not poison the class");
        assert!(matches!(
            served.outcome,
            ServeOutcome::Solved | ServeOutcome::CacheHit | ServeOutcome::Coalesced
        ));
    }
    let stats = svc.stats();
    assert_eq!(stats.store_hits, 0, "foreign records never pass membership");
    assert_eq!(stats.failures, 0);
    svc.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_recovered_tombstone_still_suppresses_its_region() {
    // Durability of "forget this region": the suppression must survive a
    // restart (WAL replay), a compaction (segment rewrite), and a restart
    // after the compaction — and keep refusing re-appends at every stage.
    let dir = temp_dir("tombstone_durability");
    let kept = region(0, vec![1.0, 2.0], 0.5);
    let dead = region(1, vec![-3.0, 0.25], -1.5);
    let dead_class = dead.interpretation.class;
    {
        let store = RegionStore::open(&dir, StoreConfig::default()).unwrap();
        assert!(store.append(kept.fingerprint, Arc::clone(&kept.interpretation)));
        assert!(store.append(dead.fingerprint, Arc::clone(&dead.interpretation)));
        assert!(store.tombstone(dead_class, dead.fingerprint));
        store.close().unwrap();
    }

    let assert_suppressed = |store: &RegionStore, when: &str| {
        assert!(
            store.contains_tombstone(dead_class, dead.fingerprint),
            "{when}: tombstone lost"
        );
        assert!(
            !store.contains_fingerprint(dead_class, dead.fingerprint),
            "{when}: suppressed record resurfaced"
        );
        assert!(
            store.contains_fingerprint(kept.interpretation.class, kept.fingerprint),
            "{when}: unrelated record lost"
        );
        assert_eq!(store.len(), 1, "{when}: live count");
        assert!(
            !store.append(dead.fingerprint, Arc::clone(&dead.interpretation)),
            "{when}: a tombstoned key must refuse re-appends"
        );
    };

    // Restart 1: the tombstone replays from the WAL.
    let store = RegionStore::open(&dir, StoreConfig::default()).unwrap();
    assert_suppressed(&store, "after WAL replay");
    // Compaction folds the WAL into segments; the suppression must be
    // carried into the rewritten files, not resurrected out of them.
    store.compact().unwrap();
    assert_suppressed(&store, "after compaction");
    store.close().unwrap();

    // Restart 2: recovery now reads the compacted segments.
    let store = RegionStore::open(&dir, StoreConfig::default()).unwrap();
    assert_suppressed(&store, "after compacted restart");
    store.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
