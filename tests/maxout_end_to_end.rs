//! End-to-end coverage of the MaxOut PLM family (the paper's introduction
//! places MaxOut networks in scope alongside the ReLU family): train one,
//! hide it behind the API, and verify OpenAPI's exactness and the OpenBox
//! oracle on it.

use openapi_repro::data::synth::{SynthConfig, SynthStyle};
use openapi_repro::data::{downsample, Dataset};
use openapi_repro::nn::{train, Plnn, TrainConfig};
use openapi_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn data() -> (Dataset, Dataset) {
    let (tr, te) = SynthConfig::small(SynthStyle::MnistLike, 400, 30, 31).generate();
    (downsample(&tr, 2), downsample(&te, 2))
}

#[test]
fn maxout_network_trains_and_is_exactly_interpretable() {
    let (train_set, test_set) = data();
    let mut rng = StdRng::seed_from_u64(32);
    let mut net = Plnn::maxout_mlp(&[train_set.dim(), 16, 10], 2, &mut rng);
    let cfg = TrainConfig {
        epochs: 8,
        batch_size: 32,
        optimizer: openapi_repro::nn::Optimizer::adam(3e-3),
        weight_decay: 0.0,
    };
    let report = train(&mut net, &train_set, &cfg, &mut rng);
    assert!(
        report.final_train_accuracy > 0.8,
        "MaxOut net should train: {}",
        report.final_train_accuracy
    );

    // OpenAPI against the trained MaxOut network: exact decision features.
    let interpreter = OpenApiInterpreter::new(OpenApiConfig::default());
    let mut checked = 0;
    for i in 0..5 {
        let x0 = test_set.instance(i);
        let class = net.predict_label(x0.as_slice());
        let Ok(result) = interpreter.interpret(&net, x0, class, &mut rng) else {
            continue;
        };
        let truth = net.local_linear_map(x0.as_slice()).decision_features(class);
        let err = result
            .interpretation
            .decision_features
            .l1_distance(&truth)
            .unwrap();
        assert!(err < 1e-6, "instance {i}: L1Dist {err}");
        checked += 1;
    }
    assert!(checked >= 4, "only {checked}/5 interpreted");
}

#[test]
fn maxout_network_persists_and_round_trips() {
    let (train_set, _) = data();
    let mut rng = StdRng::seed_from_u64(33);
    let mut net = Plnn::maxout_mlp(&[train_set.dim(), 12, 10], 3, &mut rng);
    let cfg = TrainConfig {
        epochs: 2,
        ..Default::default()
    };
    let _ = train(&mut net, &train_set, &cfg, &mut rng);
    let back = Plnn::from_bytes(&net.to_bytes()).expect("round trip");
    assert_eq!(net, back);
    let x = train_set.instance(0);
    assert_eq!(net.predict(x.as_slice()), back.predict(x.as_slice()));
    assert_eq!(
        net.activation_pattern(x.as_slice()),
        back.activation_pattern(x.as_slice())
    );
}

#[test]
fn maxout_regions_behave_like_relu_regions_for_metrics() {
    let (train_set, test_set) = data();
    let mut rng = StdRng::seed_from_u64(34);
    let mut net = Plnn::maxout_mlp(&[train_set.dim(), 10, 10], 2, &mut rng);
    let cfg = TrainConfig {
        epochs: 3,
        ..Default::default()
    };
    let _ = train(&mut net, &train_set, &cfg, &mut rng);

    // Region ids partition the test set; same-region instances share maps.
    let x0 = test_set.instance(0);
    let id0 = net.activation_pattern(x0.as_slice());
    for j in 1..test_set.len() {
        let xj = test_set.instance(j);
        if net.activation_pattern(xj.as_slice()) == id0 {
            assert_eq!(
                net.local_linear_map(x0.as_slice()),
                net.local_linear_map(xj.as_slice())
            );
        }
    }
}
