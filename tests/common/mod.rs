//! Fixtures shared by the facade integration tests.

use openapi_repro::api::TwoRegionPlm;

/// Input dimensionality of [`two_region_plm`], derived from the fixture
/// so it can never drift out of sync.
pub const DIM: usize = TwoRegionPlm::REFERENCE_DIM;

/// The canonical d = 8, C = 3 two-region model
/// ([`TwoRegionPlm::reference`]): one definition so the batch-cache,
/// service, and wire tests (and the `net_throughput` bench) always
/// exercise the same model.
pub fn two_region_plm() -> TwoRegionPlm {
    TwoRegionPlm::reference()
}
