//! Fixtures shared by the facade integration tests.

use openapi_repro::api::{LocalLinearModel, TwoRegionPlm};
use openapi_repro::prelude::*;

/// Input dimensionality of [`two_region_plm`].
pub const DIM: usize = 8;

/// d = 8, C = 3, two regions: wide enough that Algorithm 1's per-instance
/// cost (≥ d + 2 queries) towers over a cache layer's 1-query hits, small
/// enough to solve in microseconds. One definition so the batch-cache and
/// service tests always exercise the same model.
pub fn two_region_plm() -> TwoRegionPlm {
    let low = LocalLinearModel::new(
        Matrix::from_fn(DIM, 3, |r, c| ((r * 5 + c * 3) % 11) as f64 * 0.2 - 1.0),
        Vector(vec![0.1, -0.3, 0.2]),
    );
    let high = LocalLinearModel::new(
        Matrix::from_fn(DIM, 3, |r, c| ((r * 7 + c * 2) % 13) as f64 * 0.15 - 0.9),
        Vector(vec![-0.2, 0.4, 0.0]),
    );
    TwoRegionPlm::axis_split(1, 0.25, low, high)
}
