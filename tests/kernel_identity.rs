//! Property-based bit-identity suite for the kernel layer: on random
//! packed matrices, probes, and tolerances, the [`BlockedBackend`] must
//! reproduce the [`ScalarBackend`] oracle *bit for bit* across every
//! kernel — boundary evaluation (single- and multi-probe), membership
//! verdicts, and the residual sweep behind `check_consistency`.
//!
//! These run in CI under `--release` as well: the blocked code paths the
//! optimizer actually emits (vectorized, unrolled) are the ones that must
//! hold the contract, not just the debug build.

use openapi_repro::linalg::kernel::{
    scalar_backend, Backend, BlockedBackend, RowGroup, RowMatrix, ScalarBackend,
};
use openapi_repro::linalg::solve::{
    check_consistency, check_consistency_with, ConsistencyStrategy,
};
use openapi_repro::linalg::Matrix;
use proptest::prelude::*;

/// Strategy: a packed `rows × cols` matrix plus parallel bias, with shapes
/// straddling the blocked kernels' lane boundaries (LANES = PROBE_LANES
/// = 8), and one probe per batch lane.
fn packed_fixture() -> impl Strategy<Value = (usize, usize, Vec<f64>, Vec<f64>, Vec<Vec<f64>>)> {
    ((0usize..40), (1usize..24), (0usize..12)).prop_flat_map(|(rows, cols, probes)| {
        (
            Just(rows),
            Just(cols),
            prop::collection::vec(-8.0f64..8.0, rows * cols),
            prop::collection::vec(-4.0f64..4.0, rows),
            prop::collection::vec(prop::collection::vec(-8.0f64..8.0, cols), probes),
        )
    })
}

fn pack(cols: usize, data: &[f64]) -> RowMatrix {
    let mut w = RowMatrix::new(cols);
    for row in data.chunks_exact(cols) {
        w.push_row(row);
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Single-probe boundary evaluation is bit-identical, on full ranges
    /// and on arbitrary sub-ranges (absolute bias indexing included).
    #[test]
    fn boundary_eval_is_bit_identical(
        fixture in packed_fixture(),
        lo in 0usize..40,
        hi in 0usize..40,
    ) {
        let (rows, cols, data, bias, xs) = fixture;
        let w = pack(cols, &data);
        let (lo, hi) = (lo.min(rows), hi.min(rows));
        let range = lo.min(hi)..lo.max(hi);
        for x in xs.iter().chain(std::iter::once(&vec![0.25f64; cols])) {
            let (mut ys, mut yb) = (Vec::new(), Vec::new());
            ScalarBackend.boundary_eval(&w, &bias, x, range.clone(), &mut ys);
            BlockedBackend.boundary_eval(&w, &bias, x, range.clone(), &mut yb);
            prop_assert_eq!(ys.len(), range.len());
            prop_assert_eq!(ys.len(), yb.len());
            for (a, b) in ys.iter().zip(&yb) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// Multi-probe evaluation is bit-identical between backends AND to the
    /// per-probe single evaluation — batching reuses the matrix, it never
    /// changes a sum.
    #[test]
    fn boundary_eval_batch_is_bit_identical(
        fixture in packed_fixture(),
    ) {
        let (rows, cols, data, bias, xs) = fixture;
        let w = pack(cols, &data);
        let refs: Vec<&[f64]> = xs.iter().map(Vec::as_slice).collect();
        let (mut ys, mut yb) = (Vec::new(), Vec::new());
        ScalarBackend.boundary_eval_batch(&w, &bias, &refs, 0..rows, &mut ys);
        BlockedBackend.boundary_eval_batch(&w, &bias, &refs, 0..rows, &mut yb);
        prop_assert_eq!(ys.len(), refs.len() * rows);
        prop_assert_eq!(ys.len(), yb.len());
        for (a, b) in ys.iter().zip(&yb) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        let mut single = Vec::new();
        for (p, x) in refs.iter().enumerate() {
            BlockedBackend.boundary_eval(&w, &bias, x, 0..rows, &mut single);
            for (i, v) in single.iter().enumerate() {
                prop_assert_eq!(yb[p * rows + i].to_bits(), v.to_bits());
            }
        }
    }

    /// Membership verdicts agree exactly for random group partitions and
    /// tolerances (planted exact hits, near misses, and NaN targets).
    #[test]
    fn membership_verdicts_are_identical(
        fixture in packed_fixture(),
        x in prop::collection::vec(-8.0f64..8.0, 24),
        rtol in prop::sample::select(vec![0.0, 1e-12, 1e-6, 1e-2]),
        lens in prop::collection::vec(0usize..5, 1..12),
        offsets in prop::collection::vec(0usize..3, 0..40),
    ) {
        let (rows, cols, data, bias, _) = fixture;
        let w = pack(cols, &data);
        let mut y = Vec::new();
        ScalarBackend.boundary_eval(&w, &bias, &x[..cols], 0..rows, &mut y);
        // Targets: exact hits where offset lands on 0, NaN on 2, misses on 1.
        let targets: Vec<f64> = y
            .iter()
            .enumerate()
            .map(|(i, v)| match offsets.get(i).copied().unwrap_or(0) {
                0 => *v,
                1 => v + 0.5,
                _ => f64::NAN,
            })
            .collect();
        let mut groups = Vec::new();
        let mut start = 0;
        for len in lens {
            if start + len > rows {
                break;
            }
            groups.push(RowGroup { start, len });
            start += len;
        }
        let (mut vs, mut vb) = (Vec::new(), Vec::new());
        ScalarBackend.membership_verdicts(&y, &targets, rtol, &groups, &mut vs);
        BlockedBackend.membership_verdicts(&y, &targets, rtol, &groups, &mut vb);
        prop_assert_eq!(vs.len(), groups.len());
        prop_assert_eq!(vs, vb);
    }

    /// The residual sweep agrees bit-for-bit, and the consistency verdict
    /// of `check_consistency` is unchanged by the backend choice.
    #[test]
    fn residual_sweep_is_bit_identical(
        fixture in packed_fixture(),
        x in prop::collection::vec(-8.0f64..8.0, 24),
        from in 0usize..40,
        rtol in prop::sample::select(vec![1e-9, 1e-3, 10.0]),
    ) {
        let (rows, cols, data, b, _) = fixture;
        let a = Matrix::from_vec(rows, cols, data).expect("shape by construction");
        let from = from.min(rows);
        let x = &x[..cols];
        let scalar = ScalarBackend.residual_inf(&a, from, x, &b);
        let blocked = BlockedBackend.residual_inf(&a, from, x, &b);
        prop_assert_eq!(scalar.to_bits(), blocked.to_bits());
        if rows > cols {
            let strategy = ConsistencyStrategy::SquareThenCheck;
            let reference = check_consistency(&a, &b, rtol, strategy);
            let via_scalar = check_consistency_with(&a, &b, rtol, strategy, &*scalar_backend());
            let via_blocked = check_consistency_with(&a, &b, rtol, strategy, &BlockedBackend);
            match (reference, via_scalar, via_blocked) {
                (Ok(r), Ok(s), Ok(bl)) => {
                    prop_assert_eq!(r.residual.to_bits(), s.residual.to_bits());
                    prop_assert_eq!(r.residual.to_bits(), bl.residual.to_bits());
                    prop_assert_eq!(r.consistent, bl.consistent);
                    prop_assert_eq!(r.threshold.to_bits(), bl.threshold.to_bits());
                }
                (Err(_), Err(_), Err(_)) => {} // degenerate LU: same for all
                _ => prop_assert!(false, "backends disagreed on solvability"),
            }
        }
    }
}
