//! End-to-end coverage of the `openapi-trace` tier over a real TCP server.
//!
//! Two or more concurrent clients drive single and batch interpretations
//! through `openapi_net::Server`; the global event ring is then snapshotted
//! and the span graph checked for the structural invariants
//! `docs/OBSERVABILITY.md` promises:
//!
//! 1. **Completeness** — every span the wire reported back (the `span`
//!    field of `RemoteServed`) has a `Begin` and a `Finish` event in the
//!    ring, and a successful request's `Finish` payload is the ok outcome.
//! 2. **Well-parentedness** — every event with a nonzero parent belongs to
//!    a span whose parent span also has events (batch items parent on the
//!    frame span, which is itself a root).
//! 3. **Monotonic timestamps** — within one span, events never go back in
//!    time, and `Begin` is first / `Finish` is last among the serving-path
//!    stages.
//!
//! The whole suite is one `#[test]`: the ring and span allocator are
//! process-global, so a single body keeps the traffic small enough that
//! nothing the assertions need is overwritten (a few hundred events in a
//! 4096-slot ring).

// With tracing compiled out every span id is 0 and the ring is empty —
// there is no span graph to check, so the suite only exists when the
// `trace` feature is on.
#![cfg(all(not(loom), feature = "trace"))]

use openapi_repro::api::{CountingApi, TwoRegionPlm};
use openapi_repro::net::{Client, Server, ServerConfig};
use openapi_repro::prelude::*;
use openapi_repro::trace::{self, Stage, TraceEvent};
use std::collections::{BTreeMap, BTreeSet};

const CLIENTS: usize = 3;
const REQUESTS_PER_CLIENT: usize = 6;
const BATCH_ITEMS: usize = 4;

fn spawn_server() -> Server<CountingApi<TwoRegionPlm>> {
    let service = InterpretationService::new(
        CountingApi::new(TwoRegionPlm::reference()),
        ServiceConfig {
            workers: CLIENTS,
            seed: 7,
            ..ServiceConfig::default()
        },
    );
    Server::bind("127.0.0.1:0", service, ServerConfig::default()).expect("ephemeral bind")
}

/// Stages a request span emits strictly between `Begin` and `Finish`.
fn is_serving_stage(stage: Stage) -> bool {
    !matches!(stage, Stage::Begin | Stage::Finish | Stage::Reply)
}

#[test]
fn traced_spans_are_complete_well_parented_and_monotonic() {
    let server = spawn_server();
    let addr = server.local_addr();

    // Concurrent traffic: every client interleaves single interprets with
    // one batch, so the ring ends up holding root spans, frame spans, and
    // frame-parented children all at once.
    let served_spans: Vec<u64> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..CLIENTS {
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("handshake");
                let mut spans = Vec::new();
                for k in 0..REQUESTS_PER_CLIENT {
                    let x = TwoRegionPlm::reference_instance(t + k);
                    let served = client.interpret(&x, 0).expect("interpret");
                    spans.push(served.span);
                }
                let items: Vec<(Vector, usize)> = (0..BATCH_ITEMS)
                    .map(|k| (TwoRegionPlm::reference_instance(t + k), 0))
                    .collect();
                for result in client.interpret_batch(&items, None).expect("batch") {
                    spans.push(result.expect("batch item serves").span);
                }
                spans
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    server.close().expect("clean close");

    assert_eq!(
        served_spans.len(),
        CLIENTS * (REQUESTS_PER_CLIENT + BATCH_ITEMS)
    );
    let distinct: BTreeSet<u64> = served_spans.iter().copied().collect();
    assert_eq!(
        distinct.len(),
        served_spans.len(),
        "every request must get its own span id"
    );
    assert!(
        !distinct.contains(&0),
        "served spans must be real ids, not the detached span"
    );

    // One consistent snapshot; drained oldest-first by timestamp.
    let events = trace::snapshot_events();
    let mut by_span: BTreeMap<u64, Vec<TraceEvent>> = BTreeMap::new();
    for ev in &events {
        by_span.entry(ev.span).or_default().push(*ev);
    }

    // 1. Completeness: Begin and Finish for every span the wire reported,
    //    with the serving-path stages strictly between them.
    for &span in &distinct {
        let span_events = by_span
            .get(&span)
            .unwrap_or_else(|| panic!("span {span} served over the wire left no events"));
        let stages: Vec<Stage> = span_events.iter().map(|e| e.stage).collect();
        assert_eq!(
            stages.first(),
            Some(&Stage::Begin),
            "span {span} must open with Begin: {stages:?}"
        );
        let finish = span_events
            .iter()
            .find(|e| e.stage == Stage::Finish)
            .unwrap_or_else(|| panic!("span {span} has no Finish: {stages:?}"));
        assert_eq!(finish.payload, 0, "a served request settles ok");
        // Every request pays its membership probe; the queue stage is
        // skipped only by batch items answered straight from the cache at
        // decode time (they never become jobs).
        assert!(
            stages.contains(&Stage::Probe),
            "span {span} must pay its probe: {stages:?}"
        );
        assert!(
            stages.contains(&Stage::Queue) || stages.contains(&Stage::CacheHit),
            "span {span} skipped the queue without a cache hit: {stages:?}"
        );
        let finish_t = finish.t_nanos;
        for ev in span_events {
            if is_serving_stage(ev.stage) {
                assert!(
                    ev.t_nanos <= finish_t,
                    "span {span}: {:?} after Finish",
                    ev.stage
                );
            }
        }
    }

    // 2. Well-parentedness: a nonzero parent is a real span with its own
    //    events, and that parent is a root (the two-level batch shape).
    let mut batch_children = 0;
    for ev in &events {
        if ev.parent == 0 {
            continue;
        }
        let parent_events = by_span.get(&ev.parent).unwrap_or_else(|| {
            panic!(
                "event on span {} names unknown parent {}",
                ev.span, ev.parent
            )
        });
        assert!(
            parent_events
                .iter()
                .all(|p| p.parent == 0 || p.stage == Stage::Reply),
            "parent {} of span {} must itself be a root",
            ev.parent,
            ev.span
        );
        if ev.stage == Stage::Begin {
            batch_children += 1;
        }
    }
    assert_eq!(
        batch_children,
        CLIENTS * BATCH_ITEMS,
        "every batch item must begin as a child of its frame span"
    );

    // 3. Monotonic timestamps within every span (the snapshot is sorted
    //    globally, so per-span order falls out of the filter).
    for (span, span_events) in &by_span {
        assert!(
            span_events.windows(2).all(|w| w[0].t_nanos <= w[1].t_nanos),
            "span {span}: timestamps went backwards"
        );
    }

    // The ring accounted for everything it was handed.
    let stats = trace::ring_stats();
    assert!(stats.emitted as usize >= events.len());
}
