//! Integration coverage of the region-deduplicating batch layer through the
//! facade: Theorem 2's consistency property as an executable contract —
//! cache hits are bit-identical to cold runs and cost (almost) no queries.

use openapi_repro::api::CountingApi;
use openapi_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

mod common;
use common::{two_region_plm, DIM};

/// Instances alternating between both regions of the PLM.
fn workload(n: usize) -> Vec<Vector> {
    (0..n)
        .map(|i| {
            let mut x: Vec<f64> = (0..DIM)
                .map(|j| ((i * DIM + j) as f64 * 0.61).cos() * 0.4)
                .collect();
            x[1] = if i % 2 == 0 { -0.6 } else { 1.1 };
            Vector(x)
        })
        .collect()
}

#[test]
fn cache_hits_are_bit_identical_to_the_region_cold_run() {
    let plm = two_region_plm();
    let instances = workload(16);
    // Cold per-instance baseline on the two region representatives.
    let cold_a = OpenApiInterpreter::default()
        .interpret(&plm, &instances[0], 2, &mut StdRng::seed_from_u64(7))
        .unwrap();
    let mut batch = BatchInterpreter::new(BatchConfig::default());
    let out = batch.interpret_batch(&plm, &instances, 2, &mut StdRng::seed_from_u64(7));
    assert_eq!(out.stats.failures, 0);
    assert_eq!(out.stats.misses, 2, "one solve per region");
    assert_eq!(out.stats.hits, 14);
    // Every even-indexed instance shares region 0's interpretation — the
    // batch serves instance 0's cold result, bit for bit.
    let first = out.results[0].as_ref().unwrap();
    assert_eq!(*first.interpretation, cold_a.interpretation);
    for (i, r) in out.results.iter().enumerate() {
        let item = r.as_ref().unwrap();
        assert_eq!(item.cache_hit, i >= 2, "only the first two instances miss");
        if i % 2 == 0 {
            assert_eq!(*item.interpretation, cold_a.interpretation);
        }
        // All answers are exact w.r.t. the ground-truth oracle.
        let truth = plm
            .local_model(instances[i].as_slice())
            .decision_features(2);
        let err = item
            .interpretation
            .decision_features
            .l1_distance(&truth)
            .unwrap();
        assert!(err < 1e-7, "instance {i}: L1Dist {err}");
    }
}

#[test]
fn oracle_keyed_cache_hits_issue_zero_api_queries() {
    let api = CountingApi::new(two_region_plm());
    let instances = workload(10);
    let mut batch = BatchInterpreter::new(BatchConfig::default());
    let mut rng = StdRng::seed_from_u64(9);
    let warm = batch.interpret_batch_oracle(&api, &instances, 0, &mut rng);
    assert_eq!(warm.stats.misses, 2);
    let spent_warming = api.queries();
    assert!(spent_warming > 0);
    let hot = batch.interpret_batch_oracle(&api, &instances, 0, &mut rng);
    assert_eq!(hot.stats.hits, instances.len());
    assert_eq!(api.queries(), spent_warming, "hits must issue zero queries");
}

#[test]
fn black_box_batching_cuts_queries_at_least_five_fold() {
    let plm = two_region_plm();
    let instances = workload(40);
    // Per-instance baseline.
    let counted = CountingApi::new(&plm);
    let interpreter = OpenApiInterpreter::default();
    let mut rng = StdRng::seed_from_u64(11);
    for x in &instances {
        interpreter.interpret(&counted, x, 0, &mut rng).unwrap();
    }
    let solo = counted.queries();
    // Batched.
    let counted_batch = CountingApi::new(&plm);
    let mut batch = BatchInterpreter::new(BatchConfig::default());
    let mut rng = StdRng::seed_from_u64(11);
    let out = batch.interpret_batch(&counted_batch, &instances, 0, &mut rng);
    assert_eq!(out.stats.failures, 0);
    assert_eq!(out.stats.queries as u64, counted_batch.queries());
    assert!(
        counted_batch.queries() * 5 <= solo,
        "expected ≥5× fewer queries: {} vs {solo}",
        counted_batch.queries()
    );
}
