//! Query accounting for prediction APIs.
//!
//! Real cloud APIs meter (and bill) every call; an interpreter's query
//! budget is a first-class cost. [`CountingApi`] wraps any model and counts
//! `predict` calls so experiments can report, e.g., how many queries
//! OpenAPI's adaptive halving spends versus ZOO's fixed `2d` probes.

use crate::traits::{GradientOracle, GroundTruthOracle, LocalLinearModel, PredictionApi, RegionId};
use openapi_linalg::Vector;
use openapi_sync::atomic::{AtomicU64, Ordering};

/// Transparent wrapper that counts prediction queries.
///
/// Counting is lock-free (`AtomicU64` with relaxed ordering — the count is a
/// statistic, not a synchronization point), so a single wrapped model can be
/// shared across evaluation threads.
#[derive(Debug)]
pub struct CountingApi<M> {
    inner: M,
    queries: AtomicU64,
}

impl<M> CountingApi<M> {
    /// Wraps a model, starting the counter at zero.
    pub fn new(inner: M) -> Self {
        CountingApi {
            inner,
            queries: AtomicU64::new(0),
        }
    }

    /// Number of `predict` calls so far.
    pub fn queries(&self) -> u64 {
        // ordering: Relaxed — a statistic, not a synchronization point
        // (see the struct docs); callers quiesce before exact reads.
        self.queries.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero and returns the previous value.
    pub fn reset(&self) -> u64 {
        // ordering: Relaxed — same statistic contract as `queries`.
        self.queries.swap(0, Ordering::Relaxed)
    }

    /// Borrows the wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Unwraps, discarding the counter.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<M: PredictionApi> PredictionApi for CountingApi<M> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn predict(&self, x: &[f64]) -> Vector {
        // ordering: Relaxed — the RMW is atomic regardless; no ordering
        // needed for a billing statistic.
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.inner.predict(x)
    }
}

// Oracle capabilities pass through untouched (and uncounted: ground truth
// and gradients are evaluation-side, not API traffic).
impl<M: GroundTruthOracle> GroundTruthOracle for CountingApi<M> {
    fn region_id(&self, x: &[f64]) -> RegionId {
        self.inner.region_id(x)
    }

    fn local_model(&self, x: &[f64]) -> LocalLinearModel {
        self.inner.local_model(x)
    }
}

impl<M: GradientOracle> GradientOracle for CountingApi<M> {
    fn logit_gradient(&self, x: &[f64], class: usize) -> Vector {
        self.inner.logit_gradient(x, class)
    }

    fn prob_gradient(&self, x: &[f64], class: usize) -> Vector {
        self.inner.prob_gradient(x, class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearSoftmaxModel;
    use openapi_linalg::Matrix;

    fn model() -> LinearSoftmaxModel {
        LinearSoftmaxModel::new(
            Matrix::from_rows(&[&[1.0, -1.0], &[0.0, 1.0]]).unwrap(),
            Vector(vec![0.0, 0.5]),
        )
    }

    #[test]
    fn counts_each_predict_call() {
        let api = CountingApi::new(model());
        assert_eq!(api.queries(), 0);
        let _ = api.predict(&[0.0, 0.0]);
        let _ = api.predict(&[1.0, 2.0]);
        assert_eq!(api.queries(), 2);
    }

    #[test]
    fn batch_prediction_counts_per_instance() {
        let api = CountingApi::new(model());
        let xs = vec![
            Vector(vec![0.0, 0.0]),
            Vector(vec![1.0, 1.0]),
            Vector(vec![2.0, 0.5]),
        ];
        let _ = api.predict_batch(&xs);
        assert_eq!(api.queries(), 3);
    }

    #[test]
    fn reset_returns_previous_count() {
        let api = CountingApi::new(model());
        let _ = api.predict(&[0.0, 0.0]);
        assert_eq!(api.reset(), 1);
        assert_eq!(api.queries(), 0);
    }

    #[test]
    fn passthrough_preserves_predictions() {
        let raw = model();
        let api = CountingApi::new(model());
        let x = [0.3, -0.7];
        assert_eq!(raw.predict(&x), api.predict(&x));
        assert_eq!(raw.dim(), api.dim());
        assert_eq!(raw.num_classes(), api.num_classes());
    }

    #[test]
    fn oracle_calls_are_not_counted() {
        let api = CountingApi::new(model());
        let _ = api.region_id(&[0.0, 0.0]);
        let _ = api.local_model(&[0.0, 0.0]);
        let _ = api.logit_gradient(&[0.0, 0.0], 0);
        assert_eq!(api.queries(), 0);
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let api = std::sync::Arc::new(CountingApi::new(model()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let api = api.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..250 {
                    let _ = api.predict(&[0.1, 0.2]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(api.queries(), 1000);
    }
}
