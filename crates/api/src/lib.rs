#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! The hidden-model boundary of the OpenAPI reproduction.
//!
//! The paper's threat model is precise: the interpreter sees **only** a
//! prediction API — instances in, class probabilities out — with no access
//! to parameters or training data. This crate encodes that boundary as
//! traits so the rest of the workspace cannot cheat by construction:
//!
//! * [`PredictionApi`] — the only capability OpenAPI, LIME, ZOO, and the
//!   naive method receive.
//! * [`GradientOracle`] — white-box gradient access for the gradient-based
//!   baselines (Saliency Maps, Gradient*Input, Integrated Gradients), which
//!   the paper *allows* to see model parameters.
//! * [`GroundTruthOracle`] — region identity and exact local linear models,
//!   used **only** by the evaluation metrics (RD, WD, L1Dist) that compare
//!   against ground truth, never by interpreters.
//!
//! It also ships instrumentation and degradation wrappers ([`counter`],
//! [`degrade`]), a deterministic fault-injection wrapper ([`chaos`]) for
//! the adversarial suites, and two self-contained reference PLMs
//! ([`linear`], [`toy`]) used pervasively in tests.

pub mod chaos;
pub mod counter;
pub mod degrade;
pub mod linear;
pub mod probability;
pub mod toy;
pub mod traits;

pub use chaos::{ApiError, ChaosApi, ChaosConfig, ChaosStats};
pub use counter::CountingApi;
pub use degrade::{NoisyApi, QuantizedApi};
pub use linear::LinearSoftmaxModel;
pub use probability::{log_ratio, softmax, stable_log_softmax};
pub use toy::TwoRegionPlm;
pub use traits::{GradientOracle, GroundTruthOracle, LocalLinearModel, PredictionApi, RegionId};
