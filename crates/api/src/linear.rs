//! A plain linear softmax classifier — the degenerate PLM with one region.
//!
//! Logistic regression *is* a piecewise linear model with `K = 1`, which
//! makes it the sharpest possible unit-test target: OpenAPI must recover its
//! decision features exactly on the very first iteration, from any
//! hypercube, because every sample lies in the same (global) region.

use crate::probability::softmax;
use crate::traits::{GradientOracle, GroundTruthOracle, LocalLinearModel, PredictionApi, RegionId};
use openapi_linalg::{Matrix, Vector};

/// `y = softmax(Wᵀ·x + b)` over the whole input space.
#[derive(Debug, Clone)]
pub struct LinearSoftmaxModel {
    model: LocalLinearModel,
}

impl LinearSoftmaxModel {
    /// Creates the model from a `d × C` weight matrix and length-`C` bias.
    ///
    /// # Panics
    /// Panics when shapes disagree (see [`LocalLinearModel::new`]).
    pub fn new(weights: Matrix, bias: Vector) -> Self {
        LinearSoftmaxModel {
            model: LocalLinearModel::new(weights, bias),
        }
    }

    /// Access to the underlying affine map.
    pub fn local(&self) -> &LocalLinearModel {
        &self.model
    }
}

impl PredictionApi for LinearSoftmaxModel {
    fn dim(&self) -> usize {
        self.model.dim()
    }

    fn num_classes(&self) -> usize {
        self.model.num_classes()
    }

    fn predict(&self, x: &[f64]) -> Vector {
        softmax(self.model.logits(x).as_slice())
    }
}

impl GroundTruthOracle for LinearSoftmaxModel {
    fn region_id(&self, x: &[f64]) -> RegionId {
        assert_eq!(x.len(), self.dim(), "region_id: dimension mismatch");
        RegionId::from_index(0)
    }

    fn local_model(&self, x: &[f64]) -> LocalLinearModel {
        assert_eq!(x.len(), self.dim(), "local_model: dimension mismatch");
        self.model.clone()
    }
}

impl GradientOracle for LinearSoftmaxModel {
    fn logit_gradient(&self, x: &[f64], class: usize) -> Vector {
        assert_eq!(x.len(), self.dim(), "logit_gradient: dimension mismatch");
        assert!(class < self.num_classes(), "class out of range");
        // z_c = W_cᵀ x + b_c, so the gradient is column c of W, everywhere.
        self.model.weights.col(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LinearSoftmaxModel {
        // d = 3, C = 2.
        let w = Matrix::from_rows(&[&[1.0, -1.0], &[0.5, 0.5], &[-2.0, 0.0]]).unwrap();
        LinearSoftmaxModel::new(w, Vector(vec![0.25, -0.25]))
    }

    #[test]
    fn predictions_are_probabilities() {
        let m = model();
        let p = m.predict(&[0.2, -0.4, 1.0]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn single_region_everywhere() {
        let m = model();
        assert_eq!(m.region_id(&[0.0; 3]), m.region_id(&[100.0, -50.0, 3.0]));
    }

    #[test]
    fn local_model_is_the_global_model() {
        let m = model();
        let lm = m.local_model(&[1.0, 2.0, 3.0]);
        assert_eq!(&lm, m.local());
    }

    #[test]
    fn logit_gradient_is_weight_column() {
        let m = model();
        let g = m.logit_gradient(&[9.0, 9.0, 9.0], 1);
        assert_eq!(g.as_slice(), &[-1.0, 0.5, 0.0]);
    }

    #[test]
    fn prob_gradient_matches_finite_differences() {
        let m = model();
        let x = [0.3, 0.1, -0.2];
        let g = m.prob_gradient(&x, 0);
        let h = 1e-6;
        for i in 0..3 {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let fd = (m.predict(&xp)[0] - m.predict(&xm)[0]) / (2.0 * h);
            assert!((g[i] - fd).abs() < 1e-6, "coord {i}: {g:?} vs fd {fd}");
        }
    }

    #[test]
    fn predicted_label_tracks_logits() {
        let m = model();
        // Push coordinate 0 very positive: class 0 logit dominates.
        assert_eq!(m.predict_label(&[10.0, 0.0, 0.0]), 0);
        // Coordinate 0 very negative favours class 1.
        assert_eq!(m.predict_label(&[-10.0, 0.0, 0.0]), 1);
    }

    #[test]
    #[should_panic]
    fn wrong_dimension_panics() {
        let m = model();
        let _ = m.predict(&[1.0, 2.0]);
    }
}
