//! Probability utilities shared by every model implementation.
//!
//! All PLMs in this workspace emit probabilities through the same stable
//! softmax, and all black-box interpreters consume them through the same
//! clamped log-ratio — so softmax-saturation behaviour (paper §V-D) is
//! uniform and attributable.

use openapi_linalg::Vector;

/// Numerically stable softmax: subtracts the max logit before
/// exponentiating, so no overflow occurs for any finite input.
///
/// Returns a probability vector (non-negative, sums to 1).
///
/// # Panics
/// Panics on an empty slice.
pub fn softmax(logits: &[f64]) -> Vector {
    assert!(!logits.is_empty(), "softmax of empty logits");
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut out: Vec<f64> = logits.iter().map(|z| (z - max).exp()).collect();
    let sum: f64 = out.iter().sum();
    for o in &mut out {
        *o /= sum;
    }
    Vector(out)
}

/// Stable log-softmax: `z_c − max(z) − ln Σ exp(z_j − max(z))`.
///
/// Useful for cross-entropy losses where `ln(softmax)` would underflow.
///
/// # Panics
/// Panics on an empty slice.
pub fn stable_log_softmax(logits: &[f64]) -> Vector {
    assert!(!logits.is_empty(), "log_softmax of empty logits");
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let lse = logits.iter().map(|z| (z - max).exp()).sum::<f64>().ln();
    Vector(logits.iter().map(|z| z - max - lse).collect())
}

/// The paper's Equation 2 right-hand side: `ln(y_c / y_{c'})` from a
/// probability vector.
///
/// Probabilities are clamped to `f64::MIN_POSITIVE` before the logarithm so
/// a saturated softmax (a class probability rounded to exactly 0) yields a
/// large-but-finite ratio instead of ±inf. This mirrors what a real client
/// of a prediction API can do, and deliberately *surfaces* the saturation
/// instability the paper discusses rather than hiding it.
///
/// # Panics
/// Panics when either class index is out of range.
pub fn log_ratio(probs: &[f64], c: usize, c_prime: usize) -> f64 {
    let yc = probs[c].max(f64::MIN_POSITIVE);
    let ycp = probs[c_prime].max(f64::MIN_POSITIVE);
    yc.ln() - ycp.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders_by_logit() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for i in 0..3 {
            assert!((a[i] - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_survives_extreme_logits() {
        let p = softmax(&[-1e8, 0.0, 1e8]);
        assert!(p.is_finite());
        assert!((p[2] - 1.0).abs() < 1e-12);
        assert_eq!(p[0], 0.0);
    }

    #[test]
    fn uniform_logits_give_uniform_probabilities() {
        let p = softmax(&[5.0; 4]);
        for i in 0..4 {
            assert!((p[i] - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn log_softmax_matches_ln_of_softmax_when_safe() {
        let z = [0.3, -1.2, 2.0];
        let p = softmax(&z);
        let lp = stable_log_softmax(&z);
        for i in 0..3 {
            assert!((lp[i] - p[i].ln()).abs() < 1e-12);
        }
    }

    #[test]
    fn log_ratio_is_logit_difference_for_softmax_outputs() {
        // For y = softmax(z): ln(y_c/y_c') = z_c − z_c' exactly.
        let z = [0.5, -0.25, 1.75];
        let p = softmax(&z);
        for c in 0..3 {
            for cp in 0..3 {
                let lr = log_ratio(p.as_slice(), c, cp);
                assert!(
                    (lr - (z[c] - z[cp])).abs() < 1e-10,
                    "({c},{cp}): {lr} vs {}",
                    z[c] - z[cp]
                );
            }
        }
    }

    #[test]
    fn log_ratio_clamps_saturated_probabilities() {
        let probs = [1.0, 0.0];
        let lr = log_ratio(&probs, 0, 1);
        assert!(lr.is_finite());
        assert!(lr > 700.0, "clamped ratio must be very large: {lr}");
        assert_eq!(log_ratio(&probs, 1, 0), -lr);
    }

    #[test]
    fn log_ratio_same_class_is_zero() {
        let probs = [0.3, 0.7];
        assert_eq!(log_ratio(&probs, 1, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn softmax_empty_panics() {
        let _ = softmax(&[]);
    }
}
