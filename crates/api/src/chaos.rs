//! Chaos backend: what a *hostile* production API does to its callers.
//!
//! The degradation wrappers in [`crate::degrade`] model polite services
//! that round or perturb their outputs. Real cloud APIs misbehave in
//! richer ways: they stall (latency spikes), refuse (rate limits,
//! transient 5xx), answer slightly wrong (noise bursts), and — the one
//! the interpretation stack must *detect*, not merely survive — they
//! silently redeploy a different model behind the same endpoint.
//! [`ChaosApi`] injects all four, deterministically from a seed, so the
//! adversarial suites can replay an exact chaos schedule and assert the
//! serving tier's drift detection fires on every stale region.
//!
//! Fault injection is runtime-reconfigurable ([`ChaosApi::configure`]):
//! tests warm the stack against a calm API, then switch the chaos on and
//! assert the warm path stays bit-identical — or schedule a silent model
//! swap and assert no stale interpretation survives it.

use crate::traits::{GroundTruthOracle, LocalLinearModel, PredictionApi, RegionId};
use openapi_linalg::Vector;
use openapi_sync::atomic::{AtomicU64, Ordering};
use openapi_sync::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::time::Duration;

/// A prediction attempt refused by the API. These are *transient* by
/// construction — the service stayed up, the caller is expected to retry
/// — which is exactly what makes them dangerous to a query-frugal
/// interpreter: every retry is a billable query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiError {
    /// The caller exceeded its query budget window; retry after backoff.
    RateLimited,
    /// A transient server-side failure (the HTTP 5xx of this model).
    Transient,
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::RateLimited => f.write_str("rate limited"),
            ApiError::Transient => f.write_str("transient API failure"),
        }
    }
}

impl std::error::Error for ApiError {}

/// Runtime-tunable fault-injection knobs. All rates are probabilities in
/// `[0, 1)` drawn independently per prediction attempt from the seeded
/// RNG, so a given `(seed, schedule)` pair replays bit-identically.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Probability an attempt is refused with [`ApiError::RateLimited`].
    pub rate_limit_rate: f64,
    /// Probability an attempt is refused with [`ApiError::Transient`].
    pub transient_rate: f64,
    /// Probability an attempt stalls for [`ChaosConfig::spike`] first.
    pub latency_spike_rate: f64,
    /// How long a latency spike stalls the caller. Zero still *counts*
    /// the spike (so value-level tests can assert the schedule without
    /// slowing down) but skips the sleep.
    pub spike: Duration,
    /// Zero-mean uniform noise `±amplitude` added to each probability of
    /// an otherwise-successful response, then clamped and renormalized
    /// (the same bounded degradation as [`crate::degrade::NoisyApi`]).
    pub noise_amplitude: f64,
    /// How many consecutive refusals [`ChaosApi::predict`] absorbs by
    /// retrying before it forces a clean call through — the bounded
    /// client-side retry budget that keeps the infallible
    /// [`PredictionApi`] surface total even under heavy chaos.
    pub max_retries: usize,
}

impl Default for ChaosConfig {
    /// Starts **calm**: no failures, no spikes, no noise. Chaos is opted
    /// into per knob via [`ChaosApi::configure`], which is what lets a
    /// test warm the serving tier against clean responses first.
    fn default() -> Self {
        ChaosConfig {
            rate_limit_rate: 0.0,
            transient_rate: 0.0,
            latency_spike_rate: 0.0,
            spike: Duration::ZERO,
            noise_amplitude: 0.0,
            max_retries: 8,
        }
    }
}

impl ChaosConfig {
    fn validate(&self) {
        for (name, rate) in [
            ("rate_limit_rate", self.rate_limit_rate),
            ("transient_rate", self.transient_rate),
            ("latency_spike_rate", self.latency_spike_rate),
        ] {
            assert!(
                rate.is_finite() && (0.0..=1.0).contains(&rate),
                "chaos {name} {rate} outside [0, 1]"
            );
        }
        assert!(
            self.rate_limit_rate + self.transient_rate < 1.0,
            "total failure rate must stay below 1 or retries cannot make progress"
        );
        assert!(
            self.noise_amplitude.is_finite() && self.noise_amplitude >= 0.0,
            "bad noise amplitude"
        );
    }
}

/// Counters proving the chaos actually happened — a test that asserts
/// "the stack survived N rate limits" needs evidence there *were* N.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Successful predictions served (after any retries).
    pub served: u64,
    /// Attempts refused with [`ApiError::RateLimited`].
    pub rate_limited: u64,
    /// Attempts refused with [`ApiError::Transient`].
    pub transient: u64,
    /// Latency spikes injected.
    pub latency_spikes: u64,
    /// Responses that carried injected noise.
    pub noisy: u64,
    /// Times [`ChaosApi::predict`] exhausted its retry budget and forced
    /// a clean call through.
    pub retries_exhausted: u64,
    /// Silent model swaps performed.
    pub swaps: u64,
}

/// Query count sentinel meaning "no swap scheduled".
const NEVER: u64 = u64::MAX;

/// A deterministic chaos wrapper around any [`PredictionApi`].
///
/// Composes with the [`crate::degrade`] wrappers (e.g.
/// `ChaosApi<QuantizedApi<M>>` models a rate-limited fixed-precision
/// service). The RNG sits behind a mutex so the wrapper stays `Sync`;
/// determinism comes from the seed, with draws consumed in attempt
/// order.
///
/// The headline fault is the **silent model swap**: the wrapper holds a
/// standby model and atomically redirects every subsequent query to it —
/// either at a scheduled query count ([`ChaosApi::schedule_swap`]) or
/// immediately ([`ChaosApi::swap_now`]). Nothing about the response
/// shape changes; only the serving tier's `explains_probe` consistency
/// check can notice, which is precisely the drift-detection loop the
/// adversarial suites exercise.
#[derive(Debug)]
pub struct ChaosApi<M> {
    models: Vec<M>,
    /// Index into `models` of the live deployment.
    active: AtomicU64,
    /// Successful queries after which the next query triggers a swap.
    swap_at: AtomicU64,
    served: AtomicU64,
    rate_limited: AtomicU64,
    transient: AtomicU64,
    latency_spikes: AtomicU64,
    noisy: AtomicU64,
    retries_exhausted: AtomicU64,
    swaps: AtomicU64,
    config: Mutex<ChaosConfig>,
    rng: Mutex<StdRng>,
}

impl<M: PredictionApi> ChaosApi<M> {
    /// Wraps `model` with a calm (all-off) chaos schedule, seeded for
    /// reproducibility.
    pub fn new(model: M, seed: u64) -> Self {
        ChaosApi {
            models: vec![model],
            active: AtomicU64::new(0),
            swap_at: AtomicU64::new(NEVER),
            served: AtomicU64::new(0),
            rate_limited: AtomicU64::new(0),
            transient: AtomicU64::new(0),
            latency_spikes: AtomicU64::new(0),
            noisy: AtomicU64::new(0),
            retries_exhausted: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            config: Mutex::new(ChaosConfig::default()),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// Adds a standby model the silent swap will redirect to. Standbys
    /// activate in the order added, one per swap.
    ///
    /// # Panics
    /// Panics when the standby disagrees with the primary on shape — a
    /// silent swap keeps the endpoint's contract, only its function
    /// changes.
    pub fn with_standby(mut self, standby: M) -> Self {
        assert_eq!(
            standby.dim(),
            self.models[0].dim(),
            "standby model changes dim"
        );
        assert_eq!(
            standby.num_classes(),
            self.models[0].num_classes(),
            "standby model changes class count"
        );
        self.models.push(standby);
        self
    }

    /// Mutates the chaos knobs in place, atomically with respect to
    /// in-flight predictions.
    ///
    /// # Panics
    /// Panics when the resulting config is invalid (rates outside
    /// `[0, 1]`, total failure rate ≥ 1, non-finite amplitude).
    pub fn configure(&self, mutate: impl FnOnce(&mut ChaosConfig)) {
        let mut config = self.config.lock();
        mutate(&mut config);
        config.validate();
    }

    /// Schedules a silent model swap: once `after_queries` predictions
    /// have been served, the next one (and all following) come from the
    /// next standby. A no-op at prediction time if no standby remains.
    pub fn schedule_swap(&self, after_queries: u64) {
        // ordering: Relaxed — the swap schedule is a plain knob; the
        // predict path re-reads it on every attempt.
        self.swap_at.store(after_queries, Ordering::Relaxed);
    }

    /// Swaps to the next standby immediately. Returns `false` (and does
    /// nothing) when every standby is already live.
    pub fn swap_now(&self) -> bool {
        self.advance_active()
    }

    /// Index of the live model (0 = primary).
    pub fn active_model(&self) -> usize {
        // ordering: Relaxed — monotonic counter read for observation.
        self.active.load(Ordering::Relaxed) as usize
    }

    /// Borrows the live model — the ground truth *as of now*, which is
    /// what post-swap exactness must be judged against.
    pub fn live(&self) -> &M {
        &self.models[self.active_model()]
    }

    /// Injection counters so far.
    pub fn stats(&self) -> ChaosStats {
        // ordering: Relaxed — independent counters; a snapshot torn
        // across concurrent predictions is still a valid observation.
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ChaosStats {
            served: ld(&self.served),
            rate_limited: ld(&self.rate_limited),
            transient: ld(&self.transient),
            latency_spikes: ld(&self.latency_spikes),
            noisy: ld(&self.noisy),
            retries_exhausted: ld(&self.retries_exhausted),
            swaps: ld(&self.swaps),
        }
    }

    /// One prediction attempt, refusable. This is the surface a
    /// retry-aware caller would use; [`PredictionApi::predict`] wraps it
    /// in the bounded retry loop.
    ///
    /// # Errors
    /// [`ApiError`] when this attempt drew a refusal.
    ///
    /// # Panics
    /// Panics when `x.len() != self.dim()`.
    pub fn try_predict(&self, x: &[f64]) -> Result<Vector, ApiError> {
        self.maybe_swap();
        let config = self.config.lock().clone();
        // One draw per fault class, in a fixed order, so the chaos
        // schedule for a given seed is independent of which knobs are
        // currently enabled.
        let (spike, refusal, noise_seed) = {
            let mut rng = self.rng.lock();
            let spike = rng.gen::<f64>() < config.latency_spike_rate;
            let fail: f64 = rng.gen();
            let refusal = if fail < config.rate_limit_rate {
                Some(ApiError::RateLimited)
            } else if fail < config.rate_limit_rate + config.transient_rate {
                Some(ApiError::Transient)
            } else {
                None
            };
            (spike, refusal, rng.gen::<u64>())
        };
        if spike {
            // ordering: Relaxed — independent event counter.
            self.latency_spikes.fetch_add(1, Ordering::Relaxed);
            if !config.spike.is_zero() {
                std::thread::sleep(config.spike);
            }
        }
        if let Some(e) = refusal {
            let counter = match e {
                ApiError::RateLimited => &self.rate_limited,
                ApiError::Transient => &self.transient,
            };
            // ordering: Relaxed — independent event counter.
            counter.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        Ok(self.respond(x, &config, noise_seed))
    }

    /// Serves a successful response: live-model prediction plus any
    /// configured noise, with the served-query counter advanced.
    fn respond(&self, x: &[f64], config: &ChaosConfig, noise_seed: u64) -> Vector {
        let mut p = self.live().predict(x);
        if config.noise_amplitude > 0.0 {
            // A derived per-response RNG keeps the main stream's draw
            // count independent of the output dimensionality.
            let mut rng = StdRng::seed_from_u64(noise_seed);
            for v in p.iter_mut() {
                *v = (*v + rng.gen_range(-config.noise_amplitude..=config.noise_amplitude))
                    .clamp(0.0, 1.0);
            }
            let sum: f64 = p.iter().sum();
            if sum > 0.0 {
                p.scale(1.0 / sum);
            } else {
                let c = p.len();
                for v in p.iter_mut() {
                    *v = 1.0 / c as f64;
                }
            }
            // ordering: Relaxed — independent event counter.
            self.noisy.fetch_add(1, Ordering::Relaxed);
        }
        // ordering: Relaxed — the swap check re-reads this; exact
        // swap-point interleaving under concurrency is inherently racy
        // and the drift detector upstream handles either side.
        self.served.fetch_add(1, Ordering::Relaxed);
        p
    }

    /// Performs the scheduled swap once the served-query count crosses
    /// the schedule.
    fn maybe_swap(&self) {
        // ordering: Relaxed — see `schedule_swap`; the CAS below makes
        // the swap itself single-shot.
        let at = self.swap_at.load(Ordering::Relaxed);
        if at == NEVER || self.served.load(Ordering::Relaxed) < at {
            return;
        }
        let disarmed = self
            .swap_at
            // ordering: Relaxed — single-shot disarm; losing the race just
            // means the other thread performed the identical swap.
            .compare_exchange(at, NEVER, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok();
        if disarmed {
            self.advance_active();
        }
    }

    fn advance_active(&self) -> bool {
        // ordering: Relaxed — bounded monotonic index; readers tolerate
        // observing either side of the swap.
        let current = self.active.load(Ordering::Relaxed) as usize;
        if current + 1 >= self.models.len() {
            return false;
        }
        // ordering: Relaxed — see above; the store publishes only the index.
        self.active.store(current as u64 + 1, Ordering::Relaxed);
        // ordering: Relaxed — independent event counter.
        self.swaps.fetch_add(1, Ordering::Relaxed);
        true
    }
}

impl<M: PredictionApi> PredictionApi for ChaosApi<M> {
    fn dim(&self) -> usize {
        self.models[0].dim()
    }

    fn num_classes(&self) -> usize {
        self.models[0].num_classes()
    }

    /// Predicts through the chaos: refusals are absorbed by retrying up
    /// to [`ChaosConfig::max_retries`] times, after which a clean call
    /// is forced through (counted in
    /// [`ChaosStats::retries_exhausted`]). Since the validated failure
    /// rate is < 1, the expected retry count is finite and the surface
    /// stays total — the serving tier above never sees a refusal, only
    /// the latency and noise.
    fn predict(&self, x: &[f64]) -> Vector {
        let max_retries = self.config.lock().max_retries;
        for _ in 0..=max_retries {
            if let Ok(p) = self.try_predict(x) {
                return p;
            }
        }
        // ordering: Relaxed — independent event counter.
        self.retries_exhausted.fetch_add(1, Ordering::Relaxed);
        self.maybe_swap();
        let config = self.config.lock().clone();
        let noise_seed = self.rng.lock().gen::<u64>();
        self.respond(x, &config, noise_seed)
    }
}

// Ground truth follows the *live* model: after a silent swap, exactness
// (and the drift detector's verdicts) must be judged against what the
// endpoint now computes, not what it used to.
impl<M: GroundTruthOracle> GroundTruthOracle for ChaosApi<M> {
    fn region_id(&self, x: &[f64]) -> RegionId {
        self.live().region_id(x)
    }

    fn local_model(&self, x: &[f64]) -> LocalLinearModel {
        self.live().local_model(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearSoftmaxModel;
    use crate::toy::TwoRegionPlm;
    use openapi_linalg::Matrix;

    fn model() -> LinearSoftmaxModel {
        LinearSoftmaxModel::new(
            Matrix::from_rows(&[&[1.3, -0.4], &[-0.2, 0.9]]).unwrap(),
            Vector(vec![0.1, -0.1]),
        )
    }

    #[test]
    fn calm_chaos_is_bit_identical_to_the_inner_model() {
        let api = ChaosApi::new(model(), 3);
        for i in 0..16 {
            let x = [i as f64 * 0.2 - 1.0, 0.3];
            assert_eq!(api.predict(&x), model().predict(&x));
        }
        let stats = api.stats();
        assert_eq!(stats.served, 16);
        assert_eq!(stats.rate_limited + stats.transient + stats.noisy, 0);
    }

    #[test]
    fn chaos_schedule_is_seed_deterministic() {
        let build = || {
            let api = ChaosApi::new(model(), 41);
            api.configure(|c| {
                c.rate_limit_rate = 0.2;
                c.transient_rate = 0.1;
                c.noise_amplitude = 0.01;
                c.latency_spike_rate = 0.3;
            });
            api
        };
        let a = build();
        let b = build();
        let x = [0.4, -0.2];
        for _ in 0..64 {
            assert_eq!(a.try_predict(&x), b.try_predict(&x));
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().rate_limited > 0, "schedule must inject failures");
        assert!(a.stats().latency_spikes > 0, "schedule must inject spikes");
    }

    #[test]
    fn predict_absorbs_refusals_and_stays_total() {
        let api = ChaosApi::new(model(), 7);
        api.configure(|c| {
            c.rate_limit_rate = 0.45;
            c.transient_rate = 0.45;
            c.max_retries = 64;
        });
        let x = [0.1, 0.9];
        for _ in 0..200 {
            let p = api.predict(&x);
            assert_eq!(p, model().predict(&x), "noise off: values stay exact");
        }
        let stats = api.stats();
        assert_eq!(stats.served, 200);
        assert!(stats.rate_limited > 0 && stats.transient > 0);
    }

    #[test]
    fn exhausted_retry_budget_forces_a_clean_call() {
        let api = ChaosApi::new(model(), 11);
        api.configure(|c| {
            c.rate_limit_rate = 0.55;
            c.transient_rate = 0.40;
            c.max_retries = 0;
        });
        let x = [0.0, 0.0];
        for _ in 0..50 {
            let _ = api.predict(&x);
        }
        let stats = api.stats();
        assert_eq!(stats.served, 50, "predict never fails outward");
        assert!(stats.retries_exhausted > 0, "budget of 0 must exhaust");
    }

    #[test]
    fn noise_is_bounded_and_responses_stay_distributions() {
        let api = ChaosApi::new(model(), 13);
        api.configure(|c| c.noise_amplitude = 0.05);
        for i in 0..32 {
            let x = [i as f64 * 0.1, -(i as f64) * 0.07];
            let p = api.predict(&x);
            assert!(p.iter().all(|v| *v >= 0.0));
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        assert_eq!(api.stats().noisy, 32);
    }

    #[test]
    fn scheduled_swap_fires_exactly_once_at_the_query_count() {
        let api =
            ChaosApi::new(TwoRegionPlm::reference(), 5).with_standby(TwoRegionPlm::reference_v2());
        api.schedule_swap(3);
        let x = TwoRegionPlm::reference_instance(0);
        let before = api.predict(x.as_slice());
        assert_eq!(before, TwoRegionPlm::reference().predict(x.as_slice()));
        let _ = api.predict(x.as_slice());
        let _ = api.predict(x.as_slice());
        assert_eq!(api.active_model(), 0, "swap waits for the schedule");
        let after = api.predict(x.as_slice());
        assert_eq!(api.active_model(), 1, "fourth query crosses the schedule");
        assert_eq!(after, TwoRegionPlm::reference_v2().predict(x.as_slice()));
        assert_ne!(before, after, "the swap must actually change answers");
        assert_eq!(api.stats().swaps, 1);
    }

    #[test]
    fn swap_now_without_standby_is_refused() {
        let api = ChaosApi::new(model(), 1);
        assert!(!api.swap_now());
        assert_eq!(api.stats().swaps, 0);
        let with = ChaosApi::new(model(), 1).with_standby(model());
        assert!(with.swap_now());
        assert!(!with.swap_now(), "no standby left");
    }

    #[test]
    fn ground_truth_follows_the_live_model() {
        let api =
            ChaosApi::new(TwoRegionPlm::reference(), 2).with_standby(TwoRegionPlm::reference_v2());
        let x = TwoRegionPlm::reference_instance(1);
        let before = api.local_model(x.as_slice());
        api.swap_now();
        let after = api.local_model(x.as_slice());
        assert_ne!(before, after, "oracle must track the swap");
        assert_eq!(
            after,
            TwoRegionPlm::reference_v2().local_model(x.as_slice())
        );
    }

    #[test]
    #[should_panic(expected = "below 1")]
    fn saturating_failure_rates_are_rejected() {
        let api = ChaosApi::new(model(), 0);
        api.configure(|c| {
            c.rate_limit_rate = 0.6;
            c.transient_rate = 0.4;
        });
    }

    #[test]
    #[should_panic(expected = "changes dim")]
    fn standby_with_wrong_shape_is_rejected() {
        let narrow = LinearSoftmaxModel::new(Matrix::zeros(1, 2), Vector::zeros(2));
        let _ = ChaosApi::new(model(), 0).with_standby(narrow);
    }
}
