//! Response-degradation wrappers: what real APIs do to their outputs.
//!
//! OpenAPI's exactness proof assumes the API returns real-valued softmax
//! probabilities. Production APIs often truncate to a few decimal places or
//! add noise (rate-limiting tarpits, differential privacy). These wrappers
//! let the failure-injection tests and ablation benches measure how the
//! consistency check behaves when that assumption is broken — the expected
//! (and observed) outcome is that `Ω_{d+2}` stops being consistent at any
//! radius and OpenAPI reports failure instead of returning a wrong answer.

use crate::traits::{GroundTruthOracle, LocalLinearModel, PredictionApi, RegionId};
use openapi_linalg::Vector;
use openapi_sync::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rounds each probability to `decimals` places.
///
/// Models an API that serializes probabilities with fixed precision (very
/// common: JSON responses with 4–6 digits). A real service rounds each value
/// independently at serialization time and does **not** re-sum them to 1, so
/// by default this wrapper returns the raw rounded values — the reported
/// distribution may sum to slightly more or less than 1, exactly as the JSON
/// a client sees would. [`QuantizedApi::renormalized`] opts into the
/// re-summing variant for studying that (milder, less realistic)
/// degradation instead.
#[derive(Debug, Clone)]
pub struct QuantizedApi<M> {
    inner: M,
    scale: f64,
    renormalize: bool,
}

impl<M> QuantizedApi<M> {
    /// Wraps `inner`, rounding to `decimals` decimal places. Rounded values
    /// are served as-is (no renormalization).
    ///
    /// # Panics
    /// Panics when `decimals > 15` (beyond f64 precision, the wrapper would
    /// be a no-op pretending otherwise).
    pub fn new(inner: M, decimals: u32) -> Self {
        assert!(decimals <= 15, "quantization beyond f64 precision");
        QuantizedApi {
            inner,
            scale: 10f64.powi(decimals as i32),
            renormalize: false,
        }
    }

    /// Like [`QuantizedApi::new`], but rescales the rounded values to sum
    /// to 1 (uniform when every class rounds to zero). This partially undoes
    /// the fixed-precision degradation — use it only to model services that
    /// explicitly re-normalize after rounding.
    ///
    /// # Panics
    /// Panics when `decimals > 15`.
    pub fn renormalized(inner: M, decimals: u32) -> Self {
        QuantizedApi {
            renormalize: true,
            ..Self::new(inner, decimals)
        }
    }

    /// Borrows the wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: PredictionApi> PredictionApi for QuantizedApi<M> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn predict(&self, x: &[f64]) -> Vector {
        let mut p = self.inner.predict(x);
        let mut sum = 0.0;
        for v in p.iter_mut() {
            *v = (*v * self.scale).round() / self.scale;
            sum += *v;
        }
        if self.renormalize {
            if sum > 0.0 {
                p.scale(1.0 / sum);
            } else {
                // Every class rounded to zero: fall back to uniform, as a
                // renormalizing service would rather than divide by zero.
                let c = p.len();
                for v in p.iter_mut() {
                    *v = 1.0 / c as f64;
                }
            }
        }
        p
    }

    /// The predicted label, computed from the *full-precision* scores.
    ///
    /// A service rounds probabilities at serialization time but derives its
    /// label from the underlying scores, so the label never depends on how
    /// rounding broke a tie. This also makes tie-breaking well defined:
    /// rounding can map distinct probabilities onto the same grid value
    /// (e.g. `0.5004` and `0.4996` both to `0.500`), and an argmax over the
    /// rounded vector would silently resolve such ties by class order.
    fn predict_label(&self, x: &[f64]) -> usize {
        self.inner.predict_label(x)
    }
}

// Ground truth passes through: the *model* is unchanged, only its reported
// probabilities degrade — exactly the situation the failure tests study.
impl<M: GroundTruthOracle> GroundTruthOracle for QuantizedApi<M> {
    fn region_id(&self, x: &[f64]) -> RegionId {
        self.inner.region_id(x)
    }

    fn local_model(&self, x: &[f64]) -> LocalLinearModel {
        self.inner.local_model(x)
    }
}

/// Adds zero-mean uniform noise `±amplitude` to each probability, clamps to
/// `[0, 1]`, and renormalizes.
///
/// The RNG sits behind a mutex so the wrapper stays `Sync`; determinism
/// comes from the seed, with draws consumed in query order.
#[derive(Debug)]
pub struct NoisyApi<M> {
    inner: M,
    amplitude: f64,
    rng: Mutex<StdRng>,
}

impl<M> NoisyApi<M> {
    /// Wraps `inner` with noise `±amplitude`, seeded for reproducibility.
    ///
    /// # Panics
    /// Panics when `amplitude` is negative or not finite.
    pub fn new(inner: M, amplitude: f64, seed: u64) -> Self {
        assert!(
            amplitude.is_finite() && amplitude >= 0.0,
            "bad noise amplitude"
        );
        NoisyApi {
            inner,
            amplitude,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// Borrows the wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: PredictionApi> PredictionApi for NoisyApi<M> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn predict(&self, x: &[f64]) -> Vector {
        let mut p = self.inner.predict(x);
        if self.amplitude > 0.0 {
            let mut rng = self.rng.lock();
            for v in p.iter_mut() {
                *v = (*v + rng.gen_range(-self.amplitude..=self.amplitude)).clamp(0.0, 1.0);
            }
        }
        let sum: f64 = p.iter().sum();
        if sum > 0.0 {
            p.scale(1.0 / sum);
        } else {
            let c = p.len();
            for v in p.iter_mut() {
                *v = 1.0 / c as f64;
            }
        }
        p
    }
}

impl<M: GroundTruthOracle> GroundTruthOracle for NoisyApi<M> {
    fn region_id(&self, x: &[f64]) -> RegionId {
        self.inner.region_id(x)
    }

    fn local_model(&self, x: &[f64]) -> LocalLinearModel {
        self.inner.local_model(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearSoftmaxModel;
    use openapi_linalg::Matrix;

    fn model() -> LinearSoftmaxModel {
        LinearSoftmaxModel::new(
            Matrix::from_rows(&[&[1.3, -0.4], &[-0.2, 0.9]]).unwrap(),
            Vector(vec![0.1, -0.1]),
        )
    }

    #[test]
    fn quantized_outputs_live_on_the_grid() {
        // Raw mode serves the rounded values untouched: every output sits
        // exactly on the 10⁻² grid, and the sum need not be exactly 1 — the
        // fixed-precision degradation a JSON response actually exhibits.
        let api = QuantizedApi::new(model(), 2);
        let p = api.predict(&[0.31, 0.77]);
        for v in p.iter() {
            assert_eq!((v * 100.0).round() / 100.0, *v, "off-grid value {v}");
        }
        let exact = model().predict(&[0.31, 0.77]);
        assert!(
            (p[0] / p[1] - exact[0] / exact[1]).abs() > 0.0,
            "quantization must perturb the ratio"
        );
        // Rounding errors stay within half a grid step per class.
        assert!((p.iter().sum::<f64>() - 1.0).abs() <= 0.01);
    }

    #[test]
    fn raw_rounding_does_not_renormalize() {
        // A uniform 3-class prediction rounds to (0.3, 0.3, 0.3) at one
        // decimal: the served sum is 0.9, exactly as the serialized JSON
        // would read — raw mode must NOT re-sum it to 1.
        let uniform = LinearSoftmaxModel::new(Matrix::zeros(2, 3), Vector::zeros(3));
        let api = QuantizedApi::new(uniform, 1);
        let p = api.predict(&[0.4, -1.7]);
        assert_eq!(p.as_slice(), &[0.3, 0.3, 0.3]);
        assert!((p.iter().sum::<f64>() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn renormalized_variant_sums_to_one() {
        let api = QuantizedApi::renormalized(model(), 1);
        for x in [[0.0, 0.0], [5.0, -3.0], [-2.0, 2.0]] {
            let p = api.predict(&x);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn heavy_quantization_stays_finite_in_both_modes() {
        // With 0 decimals everything rounds to 0 or 1.
        let raw = QuantizedApi::new(model(), 0);
        let p = raw.predict(&[10.0, 0.0]);
        assert!(p.is_finite());
        // float: 0-decimal quantization rounds to exactly 0.0 or 1.0 by
        // construction; bit-exact equality is the assertion.
        assert!(p.iter().all(|v| *v == 0.0 || *v == 1.0));
        let renorm = QuantizedApi::renormalized(model(), 0);
        let q = renorm.predict(&[10.0, 0.0]);
        assert!(q.is_finite());
        assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn predict_label_uses_full_precision_scores_on_rounding_ties() {
        // A model whose probabilities at x straddle 0.5 by less than half a
        // 10⁻¹ grid step: both classes round to 0.5 (an exact tie), but the
        // true scores order class 1 first. The label must follow the scores.
        let w = Matrix::from_rows(&[&[1.0, 1.0]]).unwrap();
        let tie_model = LinearSoftmaxModel::new(w, Vector(vec![0.0, 0.02]));
        let x = [0.3];
        let api = QuantizedApi::new(tie_model, 1);
        let p = api.predict(&x);
        assert_eq!(p[0], p[1], "rounding must create an exact tie");
        assert_eq!(api.predict_label(&x), 1, "label follows the true scores");
        // An argmax over the tied rounded vector would have said 0.
        assert_eq!(p.argmax().unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "precision")]
    fn excessive_decimals_panic() {
        let _ = QuantizedApi::new(model(), 16);
    }

    #[test]
    fn noisy_api_is_seed_deterministic() {
        let a = NoisyApi::new(model(), 0.01, 7);
        let b = NoisyApi::new(model(), 0.01, 7);
        let x = [0.4, 0.6];
        assert_eq!(a.predict(&x), b.predict(&x));
        // Second draws also agree (stream determinism).
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn noisy_api_zero_amplitude_is_exact() {
        let api = NoisyApi::new(model(), 0.0, 1);
        let x = [0.4, 0.6];
        assert_eq!(api.predict(&x), model().predict(&x));
    }

    #[test]
    fn noisy_outputs_remain_valid_distributions() {
        let api = NoisyApi::new(model(), 0.3, 42);
        for i in 0..20 {
            let x = [i as f64 * 0.1, -(i as f64) * 0.05];
            let p = api.predict(&x);
            assert!(p.iter().all(|v| *v >= 0.0));
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn oracle_passthrough_reports_undegraded_truth() {
        let api = QuantizedApi::new(model(), 2);
        let lm = api.local_model(&[0.0, 0.0]);
        assert_eq!(&lm, model().local());
    }
}
