//! Capability traits separating black-box access from white-box oracles.

use openapi_linalg::{Matrix, Vector};

/// The prediction API of a model hidden behind a cloud service.
///
/// This is the *entire* capability available to the black-box interpreters
/// (OpenAPI, the naive method, LIME, ZOO): submit an instance, receive the
/// class-probability vector. Nothing about parameters, architecture, or
/// training data leaks through this trait.
///
/// # Contract
/// * `predict(x)` requires `x.len() == dim()` and returns a vector of
///   `num_classes()` probabilities that are finite, non-negative, and sum to
///   1 up to round-off. Implementations panic on a wrong input length — that
///   is a caller bug, not an environmental condition.
/// * Predictions are deterministic functions of the input unless the
///   implementation explicitly documents otherwise (see
///   [`crate::degrade::NoisyApi`]).
pub trait PredictionApi {
    /// Input dimensionality `d`.
    fn dim(&self) -> usize;

    /// Number of classes `C` (length of the probability output).
    fn num_classes(&self) -> usize;

    /// Predicts class probabilities for one instance.
    ///
    /// # Panics
    /// Panics when `x.len() != self.dim()`.
    fn predict(&self, x: &[f64]) -> Vector;

    /// Predicts many instances. The default loops over [`Self::predict`];
    /// implementations with batch-friendly internals may override.
    fn predict_batch(&self, xs: &[Vector]) -> Vec<Vector> {
        xs.iter().map(|x| self.predict(x.as_slice())).collect()
    }

    /// Convenience: the predicted label (argmax probability).
    ///
    /// # Panics
    /// Panics when `x.len() != self.dim()` or the model has zero classes.
    fn predict_label(&self, x: &[f64]) -> usize {
        self.predict(x)
            .argmax()
            .expect("PredictionApi must have at least one class")
    }
}

/// Identity of a locally linear region of a PLM.
///
/// A ReLU network's region is its activation pattern (one bit per hidden
/// unit); an LMT's region is its leaf. The id stores the packed pattern /
/// leaf index in full, so equality is exact — no hash collisions can corrupt
/// the Region Difference metric.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RegionId(pub Vec<u64>);

impl RegionId {
    /// Region id from a single index (e.g. an LMT leaf number).
    pub fn from_index(i: u64) -> Self {
        RegionId(vec![i])
    }

    /// Region id from a sequence of boolean activations, packed 64 per word.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut words = Vec::new();
        let mut cur = 0u64;
        let mut n = 0u32;
        let mut total = 0u64;
        for bit in bits {
            if bit {
                cur |= 1 << n;
            }
            n += 1;
            total += 1;
            if n == 64 {
                words.push(cur);
                cur = 0;
                n = 0;
            }
        }
        if n > 0 {
            words.push(cur);
        }
        // Append the bit count so patterns of different lengths never alias
        // (e.g. 64 zero-bits vs 65 zero-bits).
        words.push(total);
        RegionId(words)
    }
}

/// The exact locally linear classifier governing one region of a PLM:
/// `y = softmax(Wᵀ·x + b)` with `W ∈ R^{d×C}` (column `c` scores class `c`)
/// and `b ∈ R^C`.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalLinearModel {
    /// `d × C` coefficient matrix (the paper's `W`).
    pub weights: Matrix,
    /// Length-`C` bias vector (the paper's `b`).
    pub bias: Vector,
}

impl LocalLinearModel {
    /// Validates shapes and constructs.
    ///
    /// # Panics
    /// Panics when `weights.cols() != bias.len()`.
    pub fn new(weights: Matrix, bias: Vector) -> Self {
        assert_eq!(
            weights.cols(),
            bias.len(),
            "LocalLinearModel: weights ({} cols) and bias ({}) disagree on C",
            weights.cols(),
            bias.len()
        );
        LocalLinearModel { weights, bias }
    }

    /// Input dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.weights.rows()
    }

    /// Number of classes `C`.
    pub fn num_classes(&self) -> usize {
        self.bias.len()
    }

    /// Logits `Wᵀ·x + b`.
    ///
    /// # Panics
    /// Panics when `x.len() != dim()`.
    pub fn logits(&self, x: &[f64]) -> Vector {
        let mut z = self
            .weights
            .matvec_t(x)
            .expect("LocalLinearModel::logits: dimension mismatch");
        z += &self.bias;
        z
    }

    /// Pairwise decision features `D_{c,c'} = W_c − W_{c'}` (paper §IV-A).
    ///
    /// # Panics
    /// Panics when either class index is out of range.
    pub fn pairwise_decision_features(&self, c: usize, c_prime: usize) -> Vector {
        let wc = self.weights.col(c);
        let wcp = self.weights.col(c_prime);
        &wc - &wcp
    }

    /// Pairwise bias difference `B_{c,c'} = b_c − b_{c'}`.
    ///
    /// # Panics
    /// Panics when either class index is out of range.
    pub fn pairwise_bias(&self, c: usize, c_prime: usize) -> f64 {
        self.bias[c] - self.bias[c_prime]
    }

    /// The paper's Equation 1: decision features of class `c`,
    /// `D_c = (1/(C−1)) Σ_{c'≠c} D_{c,c'}`.
    ///
    /// # Panics
    /// Panics when `c` is out of range or `C < 2`.
    pub fn decision_features(&self, c: usize) -> Vector {
        let cc = self.num_classes();
        assert!(cc >= 2, "decision features need at least two classes");
        assert!(c < cc, "class {c} out of range ({cc} classes)");
        let mut acc = Vector::zeros(self.dim());
        for c_prime in 0..cc {
            if c_prime == c {
                continue;
            }
            let d = self.pairwise_decision_features(c, c_prime);
            acc.axpy(1.0, &d).expect("dimension invariant");
        }
        acc.scale(1.0 / (cc as f64 - 1.0));
        acc
    }
}

/// White-box ground-truth access for *evaluation only*.
///
/// The RD / WD / L1Dist metrics (Figures 5–7) compare interpreter output
/// against the true region structure and local models. Interpreters must
/// never receive this trait — the type system enforces the paper's
/// black-box setting.
pub trait GroundTruthOracle: PredictionApi {
    /// Identity of the locally linear region containing `x`.
    ///
    /// # Panics
    /// Panics when `x.len() != dim()`.
    fn region_id(&self, x: &[f64]) -> RegionId;

    /// The exact locally linear classifier at `x`.
    ///
    /// # Panics
    /// Panics when `x.len() != dim()`.
    fn local_model(&self, x: &[f64]) -> LocalLinearModel;
}

/// White-box gradient access for the gradient-based baselines.
///
/// The paper grants Saliency Maps, Gradient*Input, and Integrated Gradients
/// full parameter access; this trait is the minimal interface they need.
pub trait GradientOracle: PredictionApi {
    /// Gradient of the pre-softmax logit `z_c` with respect to the input.
    ///
    /// # Panics
    /// Panics when `x.len() != dim()` or `class >= num_classes()`.
    fn logit_gradient(&self, x: &[f64], class: usize) -> Vector;

    /// Gradient of the softmax probability `y_c` with respect to the input.
    ///
    /// Default implementation composes logit gradients through the softmax
    /// Jacobian: `∂y_c/∂x = Σ_j y_c (δ_{cj} − y_j) ∂z_j/∂x`.
    ///
    /// # Panics
    /// Panics when `x.len() != dim()` or `class >= num_classes()`.
    fn prob_gradient(&self, x: &[f64], class: usize) -> Vector {
        let y = self.predict(x);
        let yc = y[class];
        let mut grad = Vector::zeros(self.dim());
        for j in 0..self.num_classes() {
            let gz = self.logit_gradient(x, j);
            let coef = yc * (if j == class { 1.0 } else { 0.0 } - y[j]);
            grad.axpy(coef, &gz).expect("dimension invariant");
        }
        grad
    }
}

// Blanket impls so `&M` and `Box<M>` work wherever `M` does — interpreters
// borrow the API, metrics borrow the oracle, and neither forces ownership.
impl<M: PredictionApi + ?Sized> PredictionApi for &M {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn num_classes(&self) -> usize {
        (**self).num_classes()
    }
    fn predict(&self, x: &[f64]) -> Vector {
        (**self).predict(x)
    }
}

impl<M: GroundTruthOracle + ?Sized> GroundTruthOracle for &M {
    fn region_id(&self, x: &[f64]) -> RegionId {
        (**self).region_id(x)
    }
    fn local_model(&self, x: &[f64]) -> LocalLinearModel {
        (**self).local_model(x)
    }
}

impl<M: GradientOracle + ?Sized> GradientOracle for &M {
    fn logit_gradient(&self, x: &[f64], class: usize) -> Vector {
        (**self).logit_gradient(x, class)
    }
    fn prob_gradient(&self, x: &[f64], class: usize) -> Vector {
        (**self).prob_gradient(x, class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_id_from_bits_packs_and_distinguishes() {
        let a = RegionId::from_bits([true, false, true]);
        let b = RegionId::from_bits([true, false, true]);
        let c = RegionId::from_bits([true, false, false]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.0, vec![0b101, 3]);
    }

    #[test]
    fn region_id_lengths_do_not_alias() {
        // 64 zeros vs 65 zeros must differ even though all bits are zero.
        let a = RegionId::from_bits(std::iter::repeat_n(false, 64));
        let b = RegionId::from_bits(std::iter::repeat_n(false, 65));
        assert_ne!(a, b);
    }

    #[test]
    fn region_id_crosses_word_boundary() {
        let mut bits = vec![false; 70];
        bits[64] = true;
        let r = RegionId::from_bits(bits);
        assert_eq!(r.0.len(), 3); // two data words + bit count
        assert_eq!(r.0[1], 1);
        assert_eq!(r.0[2], 70);
    }

    fn toy_llm() -> LocalLinearModel {
        // d = 2, C = 3. Columns are per-class weights.
        let w = Matrix::from_rows(&[&[1.0, 0.0, -1.0], &[2.0, 1.0, 0.0]]).unwrap();
        let b = Vector(vec![0.1, 0.2, 0.3]);
        LocalLinearModel::new(w, b)
    }

    #[test]
    fn llm_logits_affine_form() {
        let m = toy_llm();
        let z = m.logits(&[1.0, 1.0]);
        // Wᵀx + b = [3, 1, -1] + [0.1, 0.2, 0.3]
        assert!((z[0] - 3.1).abs() < 1e-12);
        assert!((z[1] - 1.2).abs() < 1e-12);
        assert!((z[2] + 0.7).abs() < 1e-12);
    }

    #[test]
    fn pairwise_decision_features_are_column_differences() {
        let m = toy_llm();
        let d01 = m.pairwise_decision_features(0, 1);
        assert_eq!(d01.as_slice(), &[1.0, 1.0]);
        assert!((m.pairwise_bias(0, 1) - (-0.1f64)).abs() < 1e-12);
    }

    #[test]
    fn decision_features_average_over_contrasts() {
        let m = toy_llm();
        let d0 = m.decision_features(0);
        // D_{0,1} = (1,1), D_{0,2} = (2,2); mean = (1.5, 1.5).
        assert_eq!(d0.as_slice(), &[1.5, 1.5]);
    }

    #[test]
    fn decision_features_antisymmetry_two_classes() {
        let w = Matrix::from_rows(&[&[1.0, -1.0], &[0.5, 0.0]]).unwrap();
        let m = LocalLinearModel::new(w, Vector(vec![0.0, 0.0]));
        let d0 = m.decision_features(0);
        let d1 = m.decision_features(1);
        assert_eq!(d0.as_slice(), &[2.0, 0.5]);
        assert_eq!((&d0 + &d1).norm_linf(), 0.0);
    }

    #[test]
    #[should_panic(expected = "disagree on C")]
    fn llm_shape_mismatch_panics() {
        let w = Matrix::zeros(2, 3);
        let _ = LocalLinearModel::new(w, Vector::zeros(2));
    }
}
