//! A hand-built two-region PLM mirroring Figure 1 of the paper.
//!
//! Figure 1 motivates OpenAPI with an instance `B` whose neighbourhood
//! straddles a region boundary: any fixed perturbation distance either works
//! (instance `A`, interior) or silently fails (instance `B`, near the
//! boundary). [`TwoRegionPlm`] realizes exactly that geometry — a single
//! hyperplane splits the space into two regions, each with its own linear
//! classifier — so tests can place instances at controlled distances from
//! the boundary and observe the naive method fail while OpenAPI adapts.

use crate::probability::softmax;
use crate::traits::{GradientOracle, GroundTruthOracle, LocalLinearModel, PredictionApi, RegionId};
use openapi_linalg::{Matrix, Vector};

/// A PLM with exactly two locally linear regions separated by the
/// hyperplane `n·x = t`.
///
/// Instances with `n·x ≥ t` fall in region 1, the rest in region 0. The two
/// regions carry independent [`LocalLinearModel`]s; the piecewise function
/// need not be continuous across the boundary (the interpretation problem
/// only requires local linearity, and a discontinuity makes region-escape
/// failures maximally visible in tests).
#[derive(Debug, Clone)]
pub struct TwoRegionPlm {
    normal: Vector,
    threshold: f64,
    regions: [LocalLinearModel; 2],
}

impl TwoRegionPlm {
    /// Builds the PLM.
    ///
    /// # Panics
    /// Panics when shapes disagree between the normal vector and the two
    /// local models, or the local models disagree on `C`.
    pub fn new(
        normal: Vector,
        threshold: f64,
        low: LocalLinearModel,
        high: LocalLinearModel,
    ) -> Self {
        assert_eq!(normal.len(), low.dim(), "normal/low dimension mismatch");
        assert_eq!(low.dim(), high.dim(), "region dimension mismatch");
        assert_eq!(
            low.num_classes(),
            high.num_classes(),
            "region class-count mismatch"
        );
        TwoRegionPlm {
            normal,
            threshold,
            regions: [low, high],
        }
    }

    /// Convenience: split on coordinate `axis` at `threshold` (axis-aligned
    /// boundary, as drawn in Figure 1).
    ///
    /// # Panics
    /// Panics when `axis >= low.dim()` or shapes disagree.
    pub fn axis_split(
        axis: usize,
        threshold: f64,
        low: LocalLinearModel,
        high: LocalLinearModel,
    ) -> Self {
        assert!(axis < low.dim(), "split axis out of range");
        let normal = Vector::basis(low.dim(), axis);
        Self::new(normal, threshold, low, high)
    }

    /// Input dimensionality of [`TwoRegionPlm::reference`] and its probe
    /// instances ([`TwoRegionPlm::reference_instance`]).
    pub const REFERENCE_DIM: usize = 8;

    /// The workspace's canonical `d = 8`, `C = 3` two-region fixture
    /// (split on axis 1 at 0.25): wide enough that Algorithm 1's
    /// per-instance cost (≥ `d + 2` queries) towers over a cache layer's
    /// 1-query hits, small enough to solve in microseconds. One
    /// definition, shared by the facade's integration tests and the
    /// `net_throughput` bench, so cross-suite numbers describe the same
    /// model.
    pub fn reference() -> Self {
        const D: usize = TwoRegionPlm::REFERENCE_DIM;
        let low = LocalLinearModel::new(
            Matrix::from_fn(D, 3, |r, c| ((r * 5 + c * 3) % 11) as f64 * 0.2 - 1.0),
            Vector(vec![0.1, -0.3, 0.2]),
        );
        let high = LocalLinearModel::new(
            Matrix::from_fn(D, 3, |r, c| ((r * 7 + c * 2) % 13) as f64 * 0.15 - 0.9),
            Vector(vec![-0.2, 0.4, 0.0]),
        );
        Self::axis_split(1, 0.25, low, high)
    }

    /// The "silently updated" counterpart of [`TwoRegionPlm::reference`]:
    /// identical shape and region boundary, different local classifiers
    /// in both regions — the model a vendor swaps in behind the same
    /// endpoint. Every region solved against [`TwoRegionPlm::reference`]
    /// fails `explains_probe` against this model (the weights differ
    /// everywhere), which is what the drift-detection suites rely on.
    pub fn reference_v2() -> Self {
        const D: usize = TwoRegionPlm::REFERENCE_DIM;
        let low = LocalLinearModel::new(
            Matrix::from_fn(D, 3, |r, c| ((r * 3 + c * 5) % 17) as f64 * 0.18 - 1.2),
            Vector(vec![-0.15, 0.25, 0.05]),
        );
        let high = LocalLinearModel::new(
            Matrix::from_fn(D, 3, |r, c| ((r * 11 + c * 7) % 19) as f64 * 0.12 - 0.8),
            Vector(vec![0.3, -0.1, 0.15]),
        );
        Self::axis_split(1, 0.25, low, high)
    }

    /// The `i`-th canonical probe instance for [`TwoRegionPlm::reference`]:
    /// deterministic, interior (well away from the split at 0.25), and
    /// alternating regions with `i`'s parity. One generator, so the suites
    /// that drive the reference model drive it with the same traffic.
    pub fn reference_instance(i: usize) -> Vector {
        const D: usize = TwoRegionPlm::REFERENCE_DIM;
        let mut x: Vec<f64> = (0..D)
            .map(|j| ((i * D + j) as f64 * 0.61).cos() * 0.4)
            .collect();
        x[1] = if i.is_multiple_of(2) { -0.6 } else { 1.1 };
        Vector(x)
    }

    /// Index (0 or 1) of the region containing `x`.
    pub fn region_index(&self, x: &[f64]) -> usize {
        let side: f64 = self.normal.iter().zip(x.iter()).map(|(n, v)| n * v).sum();
        usize::from(side >= self.threshold)
    }

    /// Signed distance from `x` to the boundary, in units of `‖n‖`.
    pub fn boundary_margin(&self, x: &[f64]) -> f64 {
        let side: f64 = self.normal.iter().zip(x.iter()).map(|(n, v)| n * v).sum();
        (side - self.threshold) / self.normal.norm_l2().max(f64::MIN_POSITIVE)
    }
}

impl PredictionApi for TwoRegionPlm {
    fn dim(&self) -> usize {
        self.regions[0].dim()
    }

    fn num_classes(&self) -> usize {
        self.regions[0].num_classes()
    }

    fn predict(&self, x: &[f64]) -> Vector {
        let region = &self.regions[self.region_index(x)];
        softmax(region.logits(x).as_slice())
    }
}

impl GroundTruthOracle for TwoRegionPlm {
    fn region_id(&self, x: &[f64]) -> RegionId {
        assert_eq!(x.len(), self.dim(), "region_id: dimension mismatch");
        RegionId::from_index(self.region_index(x) as u64)
    }

    fn local_model(&self, x: &[f64]) -> LocalLinearModel {
        assert_eq!(x.len(), self.dim(), "local_model: dimension mismatch");
        self.regions[self.region_index(x)].clone()
    }
}

impl GradientOracle for TwoRegionPlm {
    fn logit_gradient(&self, x: &[f64], class: usize) -> Vector {
        assert!(class < self.num_classes(), "class out of range");
        self.regions[self.region_index(x)].weights.col(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_linalg::Matrix;

    fn plm() -> TwoRegionPlm {
        // d = 2, C = 2; boundary at x0 = 0.5.
        let low = LocalLinearModel::new(
            Matrix::from_rows(&[&[2.0, -2.0], &[1.0, 0.0]]).unwrap(),
            Vector(vec![0.0, 0.0]),
        );
        let high = LocalLinearModel::new(
            Matrix::from_rows(&[&[-1.0, 1.0], &[0.0, 3.0]]).unwrap(),
            Vector(vec![0.5, -0.5]),
        );
        TwoRegionPlm::axis_split(0, 0.5, low, high)
    }

    #[test]
    fn region_routing() {
        let m = plm();
        assert_eq!(m.region_index(&[0.0, 9.9]), 0);
        assert_eq!(m.region_index(&[0.5, -1.0]), 1); // boundary inclusive to high
        assert_eq!(m.region_index(&[0.9, 0.0]), 1);
    }

    #[test]
    fn region_ids_differ_across_boundary() {
        let m = plm();
        assert_ne!(m.region_id(&[0.0, 0.0]), m.region_id(&[1.0, 0.0]));
        assert_eq!(m.region_id(&[0.1, 5.0]), m.region_id(&[0.2, -5.0]));
    }

    #[test]
    fn local_models_switch_at_boundary() {
        let m = plm();
        let lo = m.local_model(&[0.0, 0.0]);
        let hi = m.local_model(&[1.0, 0.0]);
        assert_ne!(lo, hi);
        assert_eq!(lo.weights[(0, 0)], 2.0);
        assert_eq!(hi.weights[(0, 0)], -1.0);
    }

    #[test]
    fn boundary_margin_is_signed_distance() {
        let m = plm();
        assert!((m.boundary_margin(&[0.5, 0.0]) - 0.0).abs() < 1e-12);
        assert!((m.boundary_margin(&[0.75, 3.0]) - 0.25).abs() < 1e-12);
        assert!((m.boundary_margin(&[0.25, -3.0]) + 0.25).abs() < 1e-12);
    }

    #[test]
    fn general_hyperplane_split() {
        let low = LocalLinearModel::new(Matrix::zeros(2, 2), Vector(vec![1.0, 0.0]));
        let high = LocalLinearModel::new(Matrix::zeros(2, 2), Vector(vec![0.0, 1.0]));
        // Boundary: x + y = 1.
        let m = TwoRegionPlm::new(Vector(vec![1.0, 1.0]), 1.0, low, high);
        assert_eq!(m.region_index(&[0.2, 0.2]), 0);
        assert_eq!(m.region_index(&[0.8, 0.8]), 1);
        // Margin normalizes by ‖n‖ = √2.
        assert!((m.boundary_margin(&[1.0, 1.0]) - 1.0 / 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn predictions_use_the_right_region() {
        let m = plm();
        // In the low region, class 0 logit = 2*x0 + x1; strongly positive x0
        // (but < 0.5) favours class 0.
        let p_low = m.predict(&[0.49, 1.0]);
        assert!(p_low[0] > p_low[1]);
        // In the high region weights flip: class 1 wins for large x1.
        let p_high = m.predict(&[0.9, 2.0]);
        assert!(p_high[1] > p_high[0]);
    }

    #[test]
    fn gradient_oracle_is_region_local() {
        let m = plm();
        let g_low = m.logit_gradient(&[0.0, 0.0], 0);
        let g_high = m.logit_gradient(&[1.0, 0.0], 0);
        assert_eq!(g_low.as_slice(), &[2.0, 1.0]);
        assert_eq!(g_high.as_slice(), &[-1.0, 0.0]);
    }
}
