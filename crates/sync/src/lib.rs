#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Synchronization facade for the workspace's concurrency cores.
//!
//! Every crate with cross-thread state imports its atomics and locks from
//! here instead of `std::sync`/`parking_lot` directly (machine-enforced by
//! `cargo xtask lint`). Normally the facade re-exports the plain primitives,
//! so it compiles away. Under `RUSTFLAGS="--cfg loom"` it re-exports the
//! vendored loom stand-in's *checked* shims instead, so `loom::model` tests
//! can exhaustively explore the interleavings of the real production types —
//! the same `LatencyHistogram`, coalescing ledger, connection budget, and
//! sticky-error cell that serve traffic.
//!
//! The lock API follows parking_lot's shape in both configurations:
//! `lock()`/`read()`/`write()` return guards directly and panics never
//! poison.
//!
//! See `docs/CONCURRENCY.md` for the catalogue of protocols built on these
//! primitives and the loom suite that owns each one.

#[cfg(loom)]
pub use loom::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(not(loom))]
pub use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Atomic integer and bool types plus `Ordering`, re-exported from
/// `std::sync::atomic` (or the loom shims under `--cfg loom`).
pub mod atomic {
    #[cfg(loom)]
    pub use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

    #[cfg(not(loom))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}
