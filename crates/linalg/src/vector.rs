//! Dense `f64` vector with the arithmetic and norms the interpreters need.

use crate::error::LinalgError;
use crate::Result;
use std::ops::{Add, AddAssign, Deref, DerefMut, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense, heap-allocated vector of `f64`.
///
/// `Vector` is the currency of the whole workspace: model inputs (flattened
/// images), probability outputs, decision-feature vectors `D_c`, and the
/// unknowns of the linear systems are all `Vector`s. It dereferences to
/// `[f64]`, so slice-based APIs interoperate without copies.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector(pub Vec<f64>);

impl Vector {
    /// Creates a vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        Vector(vec![0.0; n])
    }

    /// Creates a vector of `n` copies of `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Vector(vec![value; n])
    }

    /// Creates a standard basis vector `e_i` of length `n`.
    ///
    /// # Panics
    /// Panics if `i >= n`.
    pub fn basis(n: usize, i: usize) -> Self {
        assert!(i < n, "basis index {i} out of range for length {n}");
        let mut v = Vector::zeros(n);
        v[i] = 1.0;
        v
    }

    /// Builds a vector from anything iterable over `f64`.
    #[allow(clippy::should_implement_trait)] // FromIterator is also implemented; this inherent name is the ergonomic entry point
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector(iter.into_iter().collect())
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when the vector has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrow the underlying slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Borrow the underlying slice mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Consumes the vector, returning the raw `Vec`.
    pub fn into_inner(self) -> Vec<f64> {
        self.0
    }

    /// Dot product `self · other`.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] when lengths differ.
    pub fn dot(&self, other: &Vector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "Vector::dot",
                expected: self.len(),
                found: other.len(),
            });
        }
        Ok(dot_slices(&self.0, &other.0))
    }

    /// `self += alpha * other` (BLAS `axpy`), in place.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] when lengths differ.
    pub fn axpy(&mut self, alpha: f64, other: &Vector) -> Result<()> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "Vector::axpy",
                expected: self.len(),
                found: other.len(),
            });
        }
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every entry by `alpha`, in place.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.0 {
            *a *= alpha;
        }
    }

    /// Returns a scaled copy `alpha * self`.
    pub fn scaled(&self, alpha: f64) -> Vector {
        Vector(self.0.iter().map(|a| a * alpha).collect())
    }

    /// L1 norm: `Σ |x_i|`.
    pub fn norm_l1(&self) -> f64 {
        self.0.iter().map(|a| a.abs()).sum()
    }

    /// Euclidean (L2) norm.
    pub fn norm_l2(&self) -> f64 {
        self.dot_self().sqrt()
    }

    /// Infinity norm: `max |x_i]` (0 for the empty vector).
    pub fn norm_linf(&self) -> f64 {
        self.0.iter().fold(0.0, |m, a| m.max(a.abs()))
    }

    /// Squared Euclidean norm, without the square root.
    pub fn dot_self(&self) -> f64 {
        dot_slices(&self.0, &self.0)
    }

    /// L1 distance `‖self − other‖₁`, the paper's `L1Dist` exactness metric.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] when lengths differ.
    pub fn l1_distance(&self, other: &Vector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "Vector::l1_distance",
                expected: self.len(),
                found: other.len(),
            });
        }
        Ok(self
            .0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| (a - b).abs())
            .sum())
    }

    /// Euclidean distance `‖self − other‖₂`.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] when lengths differ.
    pub fn l2_distance(&self, other: &Vector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "Vector::l2_distance",
                expected: self.len(),
                found: other.len(),
            });
        }
        Ok(self
            .0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum::<f64>()
            .sqrt())
    }

    /// Cosine similarity between two vectors, the paper's consistency metric
    /// (Figure 4).
    ///
    /// Returns 0 when either vector has zero norm — two "no-signal"
    /// interpretations are treated as maximally dissimilar rather than
    /// undefined, matching how degenerate interpretations are scored.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] when lengths differ.
    pub fn cosine_similarity(&self, other: &Vector) -> Result<f64> {
        let dot = self.dot(other)?;
        let denom = self.norm_l2() * other.norm_l2();
        if denom == 0.0 {
            return Ok(0.0);
        }
        Ok(dot / denom)
    }

    /// `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|a| a.is_finite())
    }

    /// Index of the maximum entry (ties broken toward the lower index).
    ///
    /// # Errors
    /// [`LinalgError::Empty`] for an empty vector.
    pub fn argmax(&self) -> Result<usize> {
        if self.is_empty() {
            return Err(LinalgError::Empty {
                op: "Vector::argmax",
            });
        }
        let mut best = 0;
        for (i, v) in self.0.iter().enumerate().skip(1) {
            if *v > self.0[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Arithmetic mean of the entries.
    ///
    /// # Errors
    /// [`LinalgError::Empty`] for an empty vector.
    pub fn mean(&self) -> Result<f64> {
        if self.is_empty() {
            return Err(LinalgError::Empty { op: "Vector::mean" });
        }
        Ok(self.0.iter().sum::<f64>() / self.len() as f64)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] when lengths differ.
    pub fn hadamard(&self, other: &Vector) -> Result<Vector> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "Vector::hadamard",
                expected: self.len(),
                found: other.len(),
            });
        }
        Ok(Vector(
            self.0
                .iter()
                .zip(other.0.iter())
                .map(|(a, b)| a * b)
                .collect(),
        ))
    }

    /// Element-wise absolute value.
    pub fn abs(&self) -> Vector {
        Vector(self.0.iter().map(|a| a.abs()).collect())
    }
}

#[inline]
fn dot_slices(a: &[f64], b: &[f64]) -> f64 {
    // Four-lane manual unrolling: gives the optimizer independent
    // accumulation chains; measurably faster than a naive fold at d = 784.
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    let mut tail = 0.0;
    for j in chunks * 4..a.len() {
        tail += a[j] * b[j];
    }
    s0 + s1 + s2 + s3 + tail
}

impl From<Vec<f64>> for Vector {
    fn from(v: Vec<f64>) -> Self {
        Vector(v)
    }
}

impl From<&[f64]> for Vector {
    fn from(v: &[f64]) -> Self {
        Vector(v.to_vec())
    }
}

impl Deref for Vector {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.0
    }
}

impl DerefMut for Vector {
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.0
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for Vector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl Add<&Vector> for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "Vector add: length mismatch");
        Vector(
            self.0
                .iter()
                .zip(rhs.0.iter())
                .map(|(a, b)| a + b)
                .collect(),
        )
    }
}

impl Sub<&Vector> for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "Vector sub: length mismatch");
        Vector(
            self.0
                .iter()
                .zip(rhs.0.iter())
                .map(|(a, b)| a - b)
                .collect(),
        )
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "Vector add_assign: length mismatch");
        for (a, b) in self.0.iter_mut().zip(rhs.0.iter()) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "Vector sub_assign: length mismatch");
        for (a, b) in self.0.iter_mut().zip(rhs.0.iter()) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        assert_eq!(Vector::zeros(3).as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(Vector::filled(2, 1.5).as_slice(), &[1.5, 1.5]);
    }

    #[test]
    fn basis_vector() {
        let e1 = Vector::basis(3, 1);
        assert_eq!(e1.as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_out_of_range_panics() {
        let _ = Vector::basis(2, 2);
    }

    #[test]
    fn dot_product() {
        let a = Vector(vec![1.0, 2.0, 3.0]);
        let b = Vector(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
    }

    #[test]
    fn dot_mismatch_errors() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        assert!(matches!(
            a.dot(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn dot_handles_non_multiple_of_four_lengths() {
        for n in 0..9 {
            let a = Vector::from_iter((0..n).map(|i| i as f64));
            let b = Vector::from_iter((0..n).map(|i| (i * 2) as f64));
            let expected: f64 = (0..n).map(|i| (i * i * 2) as f64).sum();
            assert_eq!(a.dot(&b).unwrap(), expected, "n = {n}");
        }
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Vector(vec![1.0, 1.0]);
        let b = Vector(vec![2.0, 3.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 2.5]);
    }

    #[test]
    fn norms() {
        let v = Vector(vec![3.0, -4.0]);
        assert_eq!(v.norm_l1(), 7.0);
        assert_eq!(v.norm_l2(), 5.0);
        assert_eq!(v.norm_linf(), 4.0);
    }

    #[test]
    fn distances() {
        let a = Vector(vec![1.0, 2.0]);
        let b = Vector(vec![4.0, 6.0]);
        assert_eq!(a.l1_distance(&b).unwrap(), 7.0);
        assert_eq!(a.l2_distance(&b).unwrap(), 5.0);
    }

    #[test]
    fn cosine_similarity_of_parallel_vectors_is_one() {
        let a = Vector(vec![1.0, 2.0, 3.0]);
        let b = a.scaled(4.0);
        assert!((a.cosine_similarity(&b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_similarity_of_orthogonal_vectors_is_zero() {
        let a = Vector(vec![1.0, 0.0]);
        let b = Vector(vec![0.0, 1.0]);
        assert_eq!(a.cosine_similarity(&b).unwrap(), 0.0);
    }

    #[test]
    fn cosine_similarity_zero_vector_is_zero_not_nan() {
        let a = Vector::zeros(2);
        let b = Vector(vec![1.0, 1.0]);
        assert_eq!(a.cosine_similarity(&b).unwrap(), 0.0);
    }

    #[test]
    fn argmax_prefers_first_of_ties() {
        let v = Vector(vec![1.0, 5.0, 5.0, 2.0]);
        assert_eq!(v.argmax().unwrap(), 1);
        assert!(Vector::zeros(0).argmax().is_err());
    }

    #[test]
    fn hadamard_and_abs() {
        let a = Vector(vec![1.0, -2.0]);
        let b = Vector(vec![3.0, 4.0]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[3.0, -8.0]);
        assert_eq!(a.abs().as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn operator_overloads() {
        let a = Vector(vec![1.0, 2.0]);
        let b = Vector(vec![3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);

        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(Vector(vec![1.0, 2.0]).is_finite());
        assert!(!Vector(vec![1.0, f64::NAN]).is_finite());
        assert!(!Vector(vec![f64::INFINITY]).is_finite());
    }

    #[test]
    fn mean_of_entries() {
        assert_eq!(Vector(vec![1.0, 2.0, 3.0]).mean().unwrap(), 2.0);
        assert!(Vector::zeros(0).mean().is_err());
    }
}
