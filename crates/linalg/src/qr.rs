//! Householder QR factorization and least squares.
//!
//! QR is the robust path of OpenAPI's consistency check — factoring the full
//! `(d+2)×(d+1)` system and reading the residual — and the fitting engine for
//! the LIME baselines, which regress `ln(y_c/y_{c'})` on perturbed instances.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::Result;

/// Default relative tolerance for declaring an `R` diagonal entry zero when
/// estimating numerical rank.
const DEFAULT_RANK_RTOL: f64 = 1e-12;

/// Householder QR factorization of an `m × n` matrix with `m ≥ n`.
///
/// The reflectors are stored in packed form (below the diagonal of the work
/// matrix plus a separate `tau`-like normalization), so applying `Qᵀ` to a
/// right-hand side costs `O(m·n)` instead of forming `Q` explicitly.
#[derive(Debug, Clone)]
pub struct QrFactor {
    /// Packed Householder vectors (below diagonal, with implicit leading 1)
    /// and `R` (on and above the diagonal).
    packed: Matrix,
    /// Scaling factors `beta_k = 2 / (v_kᵀ v_k)` for each reflector; zero for
    /// a degenerate (identity) reflector.
    betas: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl QrFactor {
    /// Factors `a` (requires `rows ≥ cols`).
    ///
    /// # Errors
    /// * [`LinalgError::DimensionMismatch`] when `rows < cols`.
    /// * [`LinalgError::NonFinite`] when the matrix contains NaN/inf.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = (a.rows(), a.cols());
        if m < n {
            return Err(LinalgError::DimensionMismatch {
                op: "QrFactor::new (rows >= cols required)",
                expected: n,
                found: m,
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite {
                op: "QrFactor::new",
            });
        }
        let mut packed = a.clone();
        let mut betas = vec![0.0; n];

        for k in 0..n {
            // Build the Householder reflector annihilating column k below
            // the diagonal.
            let mut norm2 = 0.0;
            for r in k..m {
                let v = packed[(r, k)];
                norm2 += v * v;
            }
            let norm = norm2.sqrt();
            if norm == 0.0 {
                // Column already zero: identity reflector.
                betas[k] = 0.0;
                continue;
            }
            let akk = packed[(k, k)];
            // Choose the sign that avoids cancellation.
            let alpha = if akk >= 0.0 { -norm } else { norm };
            // v = x - alpha * e1, stored with v[0] in place of a_kk.
            packed[(k, k)] = akk - alpha;
            let mut vtv = 0.0;
            for r in k..m {
                let v = packed[(r, k)];
                vtv += v * v;
            }
            if vtv == 0.0 {
                betas[k] = 0.0;
                packed[(k, k)] = alpha;
                continue;
            }
            let beta = 2.0 / vtv;
            betas[k] = beta;
            // Apply the reflector to the trailing columns.
            for c in k + 1..n {
                let mut dot = 0.0;
                for r in k..m {
                    dot += packed[(r, k)] * packed[(r, c)];
                }
                let s = beta * dot;
                for r in k..m {
                    let v = packed[(r, k)];
                    packed[(r, c)] -= s * v;
                }
            }
            // Normalize the reflector so v[0] = 1; it can then live below the
            // diagonal implicitly while R_kk = alpha takes the diagonal slot.
            // Rescaling v by 1/v0 requires beta -> beta * v0^2 to keep
            // H = I - beta v v^T unchanged.
            let v0 = packed[(k, k)];
            if v0 != 0.0 {
                for r in k + 1..m {
                    packed[(r, k)] /= v0;
                }
                // With v normalized (v0 = 1), beta becomes beta * v0².
                betas[k] = beta * v0 * v0;
            }
            packed[(k, k)] = alpha;
        }
        Ok(QrFactor {
            packed,
            betas,
            rows: m,
            cols: n,
        })
    }

    /// Applies `Qᵀ` to a right-hand side, in place.
    // Index loops mirror the textbook Householder update; iterators obscure
    // the triangular access pattern here.
    #[allow(clippy::needless_range_loop)]
    fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = (self.rows, self.cols);
        for k in 0..n {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            // v has implicit v[0] = 1 at row k, stored entries below.
            let mut dot = b[k];
            for r in k + 1..m {
                dot += self.packed[(r, k)] * b[r];
            }
            let s = beta * dot;
            b[k] -= s;
            for r in k + 1..m {
                b[r] -= s * self.packed[(r, k)];
            }
        }
    }

    /// Numerical column rank: the number of `R` diagonal entries above
    /// `rtol * max |R_kk|`.
    pub fn rank_with_tolerance(&self, rtol: f64) -> usize {
        let mut maxd: f64 = 0.0;
        for k in 0..self.cols {
            maxd = maxd.max(self.packed[(k, k)].abs());
        }
        if maxd == 0.0 {
            return 0;
        }
        let tol = rtol * maxd;
        (0..self.cols)
            .filter(|&k| self.packed[(k, k)].abs() > tol)
            .count()
    }

    /// Numerical column rank with the default tolerance.
    pub fn rank(&self) -> usize {
        self.rank_with_tolerance(DEFAULT_RANK_RTOL)
    }

    /// Solves the least-squares problem `min ‖A·x − b‖₂`.
    ///
    /// Returns the minimizer `x̂` together with the residual 2-norm
    /// `‖A·x̂ − b‖₂` computed from the orthogonal transform (the norm of the
    /// trailing `m − n` entries of `Qᵀb`), which is exact up to round-off and
    /// free — OpenAPI's least-squares consistency check reads it directly.
    ///
    /// # Errors
    /// * [`LinalgError::DimensionMismatch`] when `b.len() != rows`.
    /// * [`LinalgError::RankDeficient`] when `R` is numerically singular.
    pub fn solve_lstsq(&self, b: &[f64]) -> Result<(Vector, f64)> {
        let (m, n) = (self.rows, self.cols);
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "QrFactor::solve_lstsq",
                expected: m,
                found: b.len(),
            });
        }
        let rank = self.rank();
        if rank < n {
            return Err(LinalgError::RankDeficient { rank, cols: n });
        }
        let mut qtb = b.to_vec();
        self.apply_qt(&mut qtb);
        // Back substitution on R.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = qtb[i];
            for (j, xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.packed[(i, j)] * xj;
            }
            x[i] = s / self.packed[(i, i)];
        }
        let residual = qtb[n..m].iter().map(|v| v * v).sum::<f64>().sqrt();
        Ok((Vector(x), residual))
    }

    /// The `R` factor as a dense upper-triangular `n × n` matrix
    /// (top block of the packed storage).
    pub fn r(&self) -> Matrix {
        let n = self.cols;
        Matrix::from_fn(n, n, |r, c| if c >= r { self.packed[(r, c)] } else { 0.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_system_has_zero_residual() {
        // Square, well-conditioned: least squares equals the exact solution.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let qr = QrFactor::new(&a).unwrap();
        let (x, res) = qr.solve_lstsq(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
        assert!(res < 1e-12);
    }

    #[test]
    fn overdetermined_consistent_system() {
        // Rows are (x_i, 1) and rhs = 2*x_i + 3: consistent despite being 4x2.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0], &[5.0, 1.0]]).unwrap();
        let b = [3.0, 5.0, 7.0, 13.0];
        let (x, res) = QrFactor::new(&a).unwrap().solve_lstsq(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!(res < 1e-12, "consistent system must have ~zero residual");
    }

    #[test]
    fn overdetermined_inconsistent_system_reports_residual() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let b = [1.0, 1.0, 0.0]; // inconsistent: x=1, y=1, but x+y=0
        let (x, res) = QrFactor::new(&a).unwrap().solve_lstsq(&b).unwrap();
        // The LS solution of this classic system is x = y = 1/3.
        assert!((x[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((x[1] - 1.0 / 3.0).abs() < 1e-12);
        // Residual vector is (2/3, 2/3, -2/3), norm = 2/sqrt(3).
        assert!((res - 2.0 / 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn residual_matches_explicit_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, -1.0], &[0.5, 0.5], &[2.0, 2.0]]).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0];
        let (x, res) = QrFactor::new(&a).unwrap().solve_lstsq(&b).unwrap();
        let ax = a.matvec(x.as_slice()).unwrap();
        let explicit = ax
            .iter()
            .zip(b.iter())
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        assert!((res - explicit).abs() < 1e-10);
    }

    #[test]
    fn rank_detects_dependent_columns() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0, 3.0],
            &[2.0, 4.0, 6.0],
            &[0.0, 1.0, 1.0],
            &[1.0, 0.0, 1.0],
        ])
        .unwrap(); // col3 = col1 + col2
        let qr = QrFactor::new(&a).unwrap();
        assert_eq!(qr.rank(), 2);
        assert!(matches!(
            qr.solve_lstsq(&[1.0; 4]),
            Err(LinalgError::RankDeficient { rank: 2, cols: 3 })
        ));
    }

    #[test]
    fn rejects_underdetermined_shapes() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            QrFactor::new(&a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_non_finite() {
        let mut a = Matrix::identity(2);
        a[(1, 0)] = f64::INFINITY;
        assert!(matches!(
            QrFactor::new(&a),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn r_factor_is_upper_triangular_and_reproduces_norms() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[4.0, 2.0], &[0.0, 5.0]]).unwrap();
        let qr = QrFactor::new(&a).unwrap();
        let r = qr.r();
        assert_eq!(r.rows(), 2);
        assert_eq!(r[(1, 0)], 0.0);
        // |R_00| must equal the norm of A's first column (5.0) since Q is
        // orthogonal.
        assert!((r[(0, 0)].abs() - 5.0).abs() < 1e-12);
        // Frobenius norm is preserved by orthogonal transforms.
        assert!((r.norm_frobenius() - a.norm_frobenius()).abs() < 1e-10);
    }

    #[test]
    fn handles_zero_column_gracefully() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 2.0], &[0.0, 3.0]]).unwrap();
        let qr = QrFactor::new(&a).unwrap();
        assert_eq!(qr.rank(), 1);
    }

    #[test]
    fn moderately_sized_random_system_round_trips() {
        // Deterministic pseudo-random matrix; checks numerical health at the
        // d+2 x d+1 shape OpenAPI uses (scaled down).
        let (m, n) = (34, 33);
        let a = Matrix::from_fn(m, n, |r, c| {
            let h = ((r * 2654435761usize) ^ (c * 40503)) % 1000;
            h as f64 / 500.0 - 1.0 + if r == c { 3.0 } else { 0.0 }
        });
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
        let b = a.matvec(&x_true).unwrap();
        let (x, res) = QrFactor::new(&a)
            .unwrap()
            .solve_lstsq(b.as_slice())
            .unwrap();
        assert!(res < 1e-8, "constructed-consistent system residual {res}");
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-8);
        }
    }
}
