//! LU factorization with partial pivoting.
//!
//! This is the fast path of OpenAPI's consistency check: the square
//! subsystem `Θ_i` of the overdetermined `Ω_{d+2}` (Theorem 2 of the paper)
//! is solved once via LU, and the left-out equation's residual decides
//! consistency. Lemma 1 guarantees the coefficient matrix is full rank with
//! probability 1, but floating point still demands pivoting and an explicit
//! singularity tolerance.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::Result;

/// Relative pivot tolerance: a pivot below `tol * max|A|` is treated as zero.
const DEFAULT_PIVOT_RTOL: f64 = 1e-13;

/// LU factorization `P·A = L·U` of a square matrix, with partial pivoting.
///
/// The factors are stored packed in a single matrix (`U` on and above the
/// diagonal, the unit-lower `L` multipliers below), alongside the row
/// permutation. One factorization serves any number of [`LuFactor::solve`]
/// calls — OpenAPI solves the same coefficient matrix for up to `C − 1`
/// right-hand sides (one per contrast class), so this split pays for itself.
#[derive(Debug, Clone)]
pub struct LuFactor {
    packed: Matrix,
    /// Row permutation: `perm[i]` is the original index of factored row `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (`+1.0` or `-1.0`), for determinants.
    perm_sign: f64,
}

impl LuFactor {
    /// Factors a square matrix with the default pivot tolerance.
    ///
    /// # Errors
    /// * [`LinalgError::DimensionMismatch`] for a non-square input.
    /// * [`LinalgError::NonFinite`] when the matrix contains NaN/inf.
    /// * [`LinalgError::Singular`] when a pivot column is numerically zero.
    pub fn new(a: &Matrix) -> Result<Self> {
        Self::with_tolerance(a, DEFAULT_PIVOT_RTOL)
    }

    /// Factors with an explicit relative pivot tolerance.
    ///
    /// See [`LuFactor::new`] for the error conditions.
    pub fn with_tolerance(a: &Matrix, pivot_rtol: f64) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                op: "LuFactor::new (square required)",
                expected: a.rows(),
                found: a.cols(),
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite {
                op: "LuFactor::new",
            });
        }
        let n = a.rows();
        let mut packed = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let scale = packed.norm_max().max(f64::MIN_POSITIVE);
        let tol = pivot_rtol * scale;

        for k in 0..n {
            // Partial pivoting: bring the largest remaining entry of column k
            // to the diagonal.
            let mut pivot_row = k;
            let mut pivot_mag = packed[(k, k)].abs();
            for r in k + 1..n {
                let mag = packed[(r, k)].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag <= tol {
                return Err(LinalgError::Singular {
                    pivot: k,
                    magnitude: pivot_mag,
                });
            }
            if pivot_row != k {
                packed.swap_rows(pivot_row, k);
                perm.swap(pivot_row, k);
                perm_sign = -perm_sign;
            }
            let pivot = packed[(k, k)];
            for r in k + 1..n {
                let m = packed[(r, k)] / pivot;
                packed[(r, k)] = m;
                if m != 0.0 {
                    for c in k + 1..n {
                        let ukc = packed[(k, c)];
                        packed[(r, c)] -= m * ukc;
                    }
                }
            }
        }
        Ok(LuFactor {
            packed,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.packed.rows()
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] when `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "LuFactor::solve",
                expected: n,
                found: b.len(),
            });
        }
        // Forward substitution with permuted b: L·y = P·b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[self.perm[i]];
            for (j, yj) in y.iter().enumerate().take(i) {
                s -= self.packed[(i, j)] * yj;
            }
            y[i] = s;
        }
        // Back substitution: U·x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for (j, xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.packed[(i, j)] * xj;
            }
            x[i] = s / self.packed[(i, i)];
        }
        Ok(Vector(x))
    }

    /// Determinant of the factored matrix (product of `U`'s diagonal times
    /// the permutation sign).
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.packed[(i, i)];
        }
        d
    }

    /// A cheap lower bound on the condition of the factorization: the ratio
    /// of the largest to smallest absolute diagonal entry of `U`. Useful to
    /// flag nearly-degenerate sampling geometry in diagnostics, not a
    /// rigorous condition number.
    pub fn diagonal_condition(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        for i in 0..self.dim() {
            let d = self.packed[(i, i)].abs();
            lo = lo.min(d);
            hi = hi.max(d);
        }
        if lo == 0.0 {
            f64::INFINITY
        } else {
            hi / lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_dense(a: &Matrix, b: &[f64]) -> Vector {
        LuFactor::new(a).unwrap().solve(b).unwrap()
    }

    #[test]
    fn solves_known_2x2() {
        // [2 1; 1 3] x = [3; 5]  =>  x = [4/5, 7/5]
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = solve_dense(&a, &[3.0, 5.0]);
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_matching_rhs_length() {
        let a = Matrix::identity(3);
        let f = LuFactor::new(&a).unwrap();
        assert!(f.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // Naive elimination without pivoting would divide by zero here.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve_dense(&a, &[2.0, 3.0]);
        assert_eq!(x.as_slice(), &[3.0, 2.0]);
    }

    #[test]
    fn detects_singular_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuFactor::new(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_non_square_and_non_finite() {
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            LuFactor::new(&rect),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        let mut nan = Matrix::identity(2);
        nan[(0, 1)] = f64::NAN;
        assert!(matches!(
            LuFactor::new(&nan),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn determinant_with_permutation_sign() {
        // Swapping rows of the identity gives det = -1.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let f = LuFactor::new(&a).unwrap();
        assert!((f.det() + 1.0).abs() < 1e-12);

        let b = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        assert!((LuFactor::new(&b).unwrap().det() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_residual_is_small() {
        // A·x̂ should reproduce b to near machine precision on a
        // well-conditioned random-ish matrix.
        let n = 12;
        let a = Matrix::from_fn(n, n, |r, c| {
            if r == c {
                (n as f64) + 1.0
            } else {
                ((r * 31 + c * 17) % 7) as f64 * 0.25 - 0.75
            }
        });
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = solve_dense(&a, &b);
        let r = a.matvec(&x).unwrap();
        for i in 0..n {
            assert!((r[i] - b[i]).abs() < 1e-10, "residual too large at {i}");
        }
    }

    #[test]
    fn diagonal_condition_flags_near_singular() {
        let good = Matrix::identity(3);
        assert!((LuFactor::new(&good).unwrap().diagonal_condition() - 1.0).abs() < 1e-12);

        let mut bad = Matrix::identity(3);
        bad[(2, 2)] = 1e-9;
        let cond = LuFactor::new(&bad).unwrap().diagonal_condition();
        assert!(cond > 1e8);
    }

    #[test]
    fn multiple_rhs_reuse_one_factorization() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let f = LuFactor::new(&a).unwrap();
        for b in [[1.0, 0.0], [0.0, 1.0], [2.0, -1.0]] {
            let x = f.solve(&b).unwrap();
            let back = a.matvec(&x).unwrap();
            assert!((back[0] - b[0]).abs() < 1e-12);
            assert!((back[1] - b[1]).abs() < 1e-12);
        }
    }
}
