//! Ridge (Tikhonov-regularized) regression.
//!
//! The paper's `Ridge Regression LIME` baseline fits
//! `min ‖A·x − b‖² + λ‖x‖²` over perturbed instances. Section V-D shows this
//! regularization is exactly what destroys exactness: with tiny perturbation
//! distances the penalty dominates and the fit collapses toward a constant
//! predictor. We implement it faithfully so the benchmark reproduces that
//! failure mode.

use crate::error::LinalgError;
use crate::lu::LuFactor;
use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::Result;

/// Solves the ridge regression problem `min ‖A·x − b‖² + λ‖x'‖²`.
///
/// `A` is `m × n` (any `m`, including `m < n` — the penalty makes the normal
/// equations nonsingular for `λ > 0`). When `penalize_intercept` is `false`
/// the *first* column of `A` is treated as the intercept column and excluded
/// from the penalty, matching the equation layout used throughout this
/// workspace (`[1 | x]`-style design matrices, bias first).
///
/// # Errors
/// * [`LinalgError::DimensionMismatch`] when `b.len() != A.rows()`.
/// * [`LinalgError::NonFinite`] for NaN/inf inputs or negative `λ`.
/// * [`LinalgError::Singular`] when `λ = 0` and `AᵀA` is singular.
pub fn ridge_regression(
    a: &Matrix,
    b: &[f64],
    lambda: f64,
    penalize_intercept: bool,
) -> Result<Vector> {
    if b.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "ridge_regression",
            expected: a.rows(),
            found: b.len(),
        });
    }
    if !a.is_finite() || b.iter().any(|v| !v.is_finite()) || !lambda.is_finite() || lambda < 0.0 {
        return Err(LinalgError::NonFinite {
            op: "ridge_regression",
        });
    }
    let n = a.cols();
    // Normal equations: (AᵀA + λ·P) x = Aᵀ b, with P the penalty selector.
    let mut ata = gram(a);
    for i in 0..n {
        if i == 0 && !penalize_intercept {
            continue;
        }
        ata[(i, i)] += lambda;
    }
    let atb = a.matvec_t(b)?;
    let f = LuFactor::new(&ata)?;
    f.solve(atb.as_slice())
}

/// Computes the Gram matrix `AᵀA` exploiting symmetry.
fn gram(a: &Matrix) -> Matrix {
    let n = a.cols();
    let mut g = Matrix::zeros(n, n);
    for r in 0..a.rows() {
        let row = a.row(r);
        for i in 0..n {
            let ri = row[i];
            if ri == 0.0 {
                continue;
            }
            for j in i..n {
                g[(i, j)] += ri * row[j];
            }
        }
    }
    for i in 0..n {
        for j in 0..i {
            g[(i, j)] = g[(j, i)];
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::QrFactor;

    #[test]
    fn lambda_zero_matches_least_squares() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let b = [1.0, 3.0, 5.0, 7.0];
        let ridge = ridge_regression(&a, &b, 0.0, true).unwrap();
        let (ls, _) = QrFactor::new(&a).unwrap().solve_lstsq(&b).unwrap();
        for i in 0..2 {
            assert!((ridge[i] - ls[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn large_lambda_shrinks_slope_toward_zero() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = [0.0, 2.0, 4.0]; // true slope 2
        let small = ridge_regression(&a, &b, 1e-6, false).unwrap();
        let large = ridge_regression(&a, &b, 1e6, false).unwrap();
        assert!((small[1] - 2.0).abs() < 1e-3);
        assert!(large[1].abs() < 1e-3, "slope must collapse under huge λ");
        // With the intercept unpenalized, it absorbs the mean response.
        assert!((large[0] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn penalized_intercept_also_shrinks() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0]]).unwrap();
        let b = [5.0, 5.0];
        let x = ridge_regression(&a, &b, 1e9, true).unwrap();
        assert!(x[0].abs() < 1e-3);
        assert!(x[1].abs() < 1e-3);
    }

    #[test]
    fn underdetermined_is_fine_with_positive_lambda() {
        // 1 equation, 2 unknowns: λ > 0 regularizes to a unique solution.
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = [5.0];
        let x = ridge_regression(&a, &b, 0.5, true).unwrap();
        assert!(x.is_finite());
        // Minimum-norm-flavored solution keeps the ratio of coefficients at
        // the ratio of the design entries (1:2) for a single row.
        assert!((x[1] / x[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        let a = Matrix::identity(2);
        assert!(ridge_regression(&a, &[1.0], 0.1, true).is_err());
        assert!(ridge_regression(&a, &[1.0, f64::NAN], 0.1, true).is_err());
        assert!(ridge_regression(&a, &[1.0, 1.0], -0.1, true).is_err());
    }

    #[test]
    fn gram_matrix_is_symmetric_and_correct() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let g = gram(&a);
        let explicit = a.transpose().matmul(&a).unwrap();
        assert_eq!(g, explicit);
    }
}
