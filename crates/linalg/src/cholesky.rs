//! Cholesky factorization for symmetric positive-definite systems.
//!
//! The ridge normal equations `(AᵀA + λP)x = Aᵀb` are SPD for `λ > 0`;
//! Cholesky solves them in half the flops of LU and *certifies* positive
//! definiteness as a by-product (a failed pivot means the penalty did not
//! regularize the Gram matrix — a diagnostic the LIME baseline surfaces).

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::Result;

/// Cholesky factor `L` with `A = L·Lᵀ` of an SPD matrix.
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    /// Lower-triangular factor (upper part of the storage is unused zeros).
    l: Matrix,
}

impl CholeskyFactor {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper part
    /// is the caller's contract (the ridge path builds `AᵀA`, symmetric by
    /// construction).
    ///
    /// # Errors
    /// * [`LinalgError::DimensionMismatch`] for non-square input.
    /// * [`LinalgError::NonFinite`] for NaN/inf entries.
    /// * [`LinalgError::Singular`] when the matrix is not positive definite
    ///   (a non-positive pivot arises).
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                op: "CholeskyFactor::new (square required)",
                expected: a.rows(),
                found: a.cols(),
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite {
                op: "CholeskyFactor::new",
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(LinalgError::Singular {
                            pivot: i,
                            magnitude: s,
                        });
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(CholeskyFactor { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A·x = b` via forward/back substitution on `L`.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] when `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "CholeskyFactor::solve",
                expected: n,
                found: b.len(),
            });
        }
        // L·y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for (j, yj) in y.iter().enumerate().take(i) {
                s -= self.l[(i, j)] * yj;
            }
            y[i] = s / self.l[(i, i)];
        }
        // Lᵀ·x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for (j, xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.l[(j, i)] * xj;
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(Vector(x))
    }

    /// Borrow the lower-triangular factor.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Log-determinant of `A` (`2 Σ ln L_ii`) — numerically stable even when
    /// the determinant itself under/overflows.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::LuFactor;

    fn spd(n: usize, seed: u64) -> Matrix {
        // AᵀA + n·I is SPD for any A.
        let a = Matrix::from_fn(n, n, |r, c| {
            (((r * 31 + c * 17 + seed as usize) % 13) as f64) / 6.0 - 1.0
        });
        let mut g = a.transpose().matmul(&a).unwrap();
        for i in 0..n {
            g[(i, i)] += n as f64;
        }
        g
    }

    #[test]
    fn factor_reconstructs_the_matrix() {
        let a = spd(6, 1);
        let f = CholeskyFactor::new(&a).unwrap();
        let recon = f.factor().matmul(&f.factor().transpose()).unwrap();
        for i in 0..6 {
            for j in 0..6 {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd(8, 2);
        let b: Vec<f64> = (0..8).map(|i| (i as f64).cos()).collect();
        let x_chol = CholeskyFactor::new(&a).unwrap().solve(&b).unwrap();
        let x_lu = LuFactor::new(&a).unwrap().solve(&b).unwrap();
        for i in 0..8 {
            assert!((x_chol[i] - x_lu[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn rejects_indefinite_matrices() {
        let indefinite = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            CholeskyFactor::new(&indefinite),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_non_square_and_non_finite() {
        assert!(CholeskyFactor::new(&Matrix::zeros(2, 3)).is_err());
        let mut nan = Matrix::identity(2);
        nan[(1, 1)] = f64::NAN;
        assert!(matches!(
            CholeskyFactor::new(&nan),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn log_det_matches_lu_determinant() {
        let a = spd(5, 3);
        let f = CholeskyFactor::new(&a).unwrap();
        let det = LuFactor::new(&a).unwrap().det();
        assert!((f.log_det() - det.ln()).abs() < 1e-8);
    }

    #[test]
    fn solve_validates_rhs_length() {
        let f = CholeskyFactor::new(&Matrix::identity(3)).unwrap();
        assert!(f.solve(&[1.0]).is_err());
    }

    #[test]
    fn identity_solve_is_identity() {
        let f = CholeskyFactor::new(&Matrix::identity(4)).unwrap();
        let b = [1.0, -2.0, 3.0, -4.0];
        assert_eq!(f.solve(&b).unwrap().as_slice(), &b);
    }
}
