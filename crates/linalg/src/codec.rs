//! Little-endian binary codec for vectors and matrices.
//!
//! The model-persistence formats of `openapi-nn` and `openapi-lmt` are
//! built on these primitives: length-prefixed, fixed-width little-endian
//! floats, with decode-side validation that never panics on malformed
//! input. (The workspace's approved dependency set has `serde` but no
//! serde *format* crate, so persistence is hand-rolled — which also keeps
//! the on-disk layout explicit and stable.)

use crate::matrix::Matrix;
use crate::vector::Vector;
use bytes::{Buf, BufMut};
use std::fmt;

/// Decoding failures (encoding is infallible).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the header/payload requires.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes needed by the next read.
        needed: usize,
        /// Bytes remaining.
        remaining: usize,
    },
    /// A length or dimension field is implausible (overflow guard).
    BadLength {
        /// What was being decoded.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated {
                what,
                needed,
                remaining,
            } => {
                write!(
                    f,
                    "decoding {what}: need {needed} bytes, {remaining} remain"
                )
            }
            CodecError::BadLength { what, value } => {
                write!(f, "decoding {what}: implausible length {value}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Upper bound on any single encoded dimension (1 Gi entries) — a decode
/// of corrupted data must fail fast instead of attempting a huge
/// allocation.
const MAX_LEN: u64 = 1 << 30;

fn check_remaining(buf: &impl Buf, what: &'static str, needed: usize) -> Result<(), CodecError> {
    if buf.remaining() < needed {
        Err(CodecError::Truncated {
            what,
            needed,
            remaining: buf.remaining(),
        })
    } else {
        Ok(())
    }
}

/// Reads a length-prefix written by [`put_len`].
pub fn get_len(buf: &mut impl Buf, what: &'static str) -> Result<usize, CodecError> {
    check_remaining(buf, what, 8)?;
    let v = buf.get_u64_le();
    if v > MAX_LEN {
        return Err(CodecError::BadLength { what, value: v });
    }
    Ok(v as usize)
}

/// Writes a `usize` as a little-endian u64 prefix.
pub fn put_len(buf: &mut impl BufMut, v: usize) {
    buf.put_u64_le(v as u64);
}

/// Writes a vector: length prefix then entries as `f64` little-endian.
pub fn put_vector(buf: &mut impl BufMut, v: &Vector) {
    put_len(buf, v.len());
    for x in v.iter() {
        buf.put_f64_le(*x);
    }
}

/// Reads a vector written by [`put_vector`].
pub fn get_vector(buf: &mut impl Buf, what: &'static str) -> Result<Vector, CodecError> {
    let n = get_len(buf, what)?;
    check_remaining(buf, what, n * 8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(buf.get_f64_le());
    }
    Ok(Vector(out))
}

/// Writes a matrix: rows, cols prefixes then row-major `f64` entries.
pub fn put_matrix(buf: &mut impl BufMut, m: &Matrix) {
    put_len(buf, m.rows());
    put_len(buf, m.cols());
    for x in m.as_slice() {
        buf.put_f64_le(*x);
    }
}

/// Reads a matrix written by [`put_matrix`].
pub fn get_matrix(buf: &mut impl Buf, what: &'static str) -> Result<Matrix, CodecError> {
    let rows = get_len(buf, what)?;
    let cols = get_len(buf, what)?;
    let total = rows.checked_mul(cols).ok_or(CodecError::BadLength {
        what,
        value: u64::MAX,
    })?;
    if total as u64 > MAX_LEN {
        return Err(CodecError::BadLength {
            what,
            value: total as u64,
        });
    }
    check_remaining(buf, what, total * 8)?;
    let mut data = Vec::with_capacity(total);
    for _ in 0..total {
        data.push(buf.get_f64_le());
    }
    Ok(Matrix::from_vec(rows, cols, data).expect("sizes read together"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_round_trip() {
        let v = Vector(vec![1.5, -2.25, 0.0, f64::MIN_POSITIVE]);
        let mut buf = Vec::new();
        put_vector(&mut buf, &v);
        let mut slice = buf.as_slice();
        let back = get_vector(&mut slice, "v").unwrap();
        assert_eq!(v, back);
        assert!(slice.is_empty(), "decoder must consume exactly");
    }

    #[test]
    fn matrix_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-4.0, 5.5, 6.0]]).unwrap();
        let mut buf = Vec::new();
        put_matrix(&mut buf, &m);
        let back = get_matrix(&mut buf.as_slice(), "m").unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn truncated_payload_is_detected() {
        let v = Vector(vec![1.0, 2.0, 3.0]);
        let mut buf = Vec::new();
        put_vector(&mut buf, &v);
        buf.truncate(buf.len() - 4);
        let err = get_vector(&mut buf.as_slice(), "v").unwrap_err();
        assert!(matches!(err, CodecError::Truncated { .. }));
    }

    #[test]
    fn truncated_header_is_detected() {
        let buf = [0u8; 3];
        let err = get_len(&mut buf.as_slice(), "len").unwrap_err();
        assert!(matches!(err, CodecError::Truncated { .. }));
    }

    #[test]
    fn implausible_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = get_len(&mut buf.as_slice(), "len").unwrap_err();
        assert!(matches!(err, CodecError::BadLength { .. }));
    }

    #[test]
    fn matrix_dimension_overflow_is_rejected() {
        let mut buf = Vec::new();
        put_len(&mut buf, (1usize << 29) + 1);
        put_len(&mut buf, 1usize << 29);
        let err = get_matrix(&mut buf.as_slice(), "m").unwrap_err();
        assert!(matches!(err, CodecError::BadLength { .. }));
    }

    #[test]
    fn empty_containers_round_trip() {
        let mut buf = Vec::new();
        put_vector(&mut buf, &Vector::zeros(0));
        put_matrix(&mut buf, &Matrix::zeros(0, 5));
        let mut slice = buf.as_slice();
        assert_eq!(get_vector(&mut slice, "v").unwrap().len(), 0);
        let m = get_matrix(&mut slice, "m").unwrap();
        assert_eq!((m.rows(), m.cols()), (0, 5));
    }
}
