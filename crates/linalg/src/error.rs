//! Error type shared by all linear-algebra routines.

use std::fmt;

/// Errors produced by factorizations and solvers.
///
/// These are *numerical* conditions a caller is expected to handle (OpenAPI,
/// for instance, resamples its perturbed instances when a system turns out
/// singular), so they carry enough context to act on programmatically.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible (e.g. `A·x` with `A.cols() != x.len()`).
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions observed, formatted by the operation.
        expected: usize,
        /// Dimensions observed, formatted by the operation.
        found: usize,
    },
    /// A square system has no unique solution: a pivot fell below tolerance.
    Singular {
        /// Index of the pivot column where elimination broke down.
        pivot: usize,
        /// Magnitude of the offending pivot.
        magnitude: f64,
    },
    /// A least-squares problem has numerically deficient column rank.
    RankDeficient {
        /// Estimated numerical rank.
        rank: usize,
        /// Number of columns (full rank would equal this).
        cols: usize,
    },
    /// An operation that requires a non-empty container received an empty one.
    Empty {
        /// Human-readable description of the operation that failed.
        op: &'static str,
    },
    /// Input contained NaN or infinity where finite values are required.
    NonFinite {
        /// Human-readable description of the operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                op,
                expected,
                found,
            } => {
                write!(
                    f,
                    "{op}: dimension mismatch (expected {expected}, found {found})"
                )
            }
            LinalgError::Singular { pivot, magnitude } => {
                write!(
                    f,
                    "matrix is numerically singular at pivot {pivot} (|pivot| = {magnitude:.3e})"
                )
            }
            LinalgError::RankDeficient { rank, cols } => {
                write!(
                    f,
                    "least-squares matrix is rank deficient (rank {rank} of {cols} columns)"
                )
            }
            LinalgError::Empty { op } => write!(f, "{op}: empty input"),
            LinalgError::NonFinite { op } => write!(f, "{op}: non-finite value in input"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = LinalgError::DimensionMismatch {
            op: "matvec",
            expected: 3,
            found: 4,
        };
        assert!(e.to_string().contains("matvec"));
        assert!(e.to_string().contains('3'));

        let e = LinalgError::Singular {
            pivot: 2,
            magnitude: 1e-18,
        };
        assert!(e.to_string().contains("pivot 2"));

        let e = LinalgError::RankDeficient { rank: 2, cols: 5 };
        assert!(e.to_string().contains("rank 2"));

        let e = LinalgError::Empty { op: "mean" };
        assert!(e.to_string().contains("mean"));

        let e = LinalgError::NonFinite { op: "dot" };
        assert!(e.to_string().contains("dot"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            LinalgError::Empty { op: "x" },
            LinalgError::Empty { op: "x" }
        );
        assert_ne!(
            LinalgError::Empty { op: "x" },
            LinalgError::NonFinite { op: "x" }
        );
    }
}
