//! Batched probe/membership kernels behind the [`Backend`] seam.
//!
//! PR 5's `net_throughput` bench showed the warm serving path is
//! cache-bound: every request pays exactly one Theorem-2 membership scan,
//! and that scan is per-region row math. This module restructures the scan
//! into batched, cache-blocked kernels over a *contiguous* row-major
//! boundary matrix ([`RowMatrix`]), so one pass evaluates every cached
//! boundary of a class instead of chasing one heap-allocated weight vector
//! per region.
//!
//! Two implementations share the [`Backend`] trait:
//!
//! * [`ScalarBackend`] — the bit-identity oracle. One row at a time, each
//!   dot product accumulated strictly left-to-right. Every other backend
//!   must reproduce its results bit for bit.
//! * [`BlockedBackend`] — the fast path. Processes [`LANES`] rows together
//!   with one independent accumulator chain per row. Per-row summation
//!   order is *unchanged* (still strictly left-to-right in `j`), so results
//!   stay bit-identical to the scalar reference; the speedup comes from
//!   instruction-level parallelism across rows (the scalar loop is bound by
//!   the latency of one serial FP-add chain), from reusing each probe
//!   coordinate `x[j]` across all lanes, and from the contiguity of the
//!   underlying [`RowMatrix`].
//!
//! The trait is deliberately small and object-safe — a `dyn Backend` is
//! threaded through the cache and serving tiers, leaving the seam open for
//! a GPU/accelerator implementation later (the CubeCL shape: algorithms
//! written against launchable kernels, specialized per backend).

use crate::matrix::Matrix;
use std::fmt::Debug;
use std::ops::Range;
use std::sync::Arc;

/// Rows processed together by [`BlockedBackend`] (one accumulator chain
/// each). Eight chains are enough to hide a 4-cycle FP-add latency on
/// every mainstream core without spilling accumulators to the stack.
pub const LANES: usize = 8;

/// Probes processed together by [`BlockedBackend`]'s multi-probe pass
/// ([`Backend::boundary_eval_batch`]). Transposing this many probes puts
/// their `j`-th coordinates side by side, so the inner loop runs across
/// probes — independent accumulators the compiler can vectorize — while
/// each matrix row is streamed exactly once per probe block instead of
/// once per probe.
pub const PROBE_LANES: usize = 8;

/// A growable dense row-major `f64` matrix with a fixed column count.
///
/// This is the storage format the kernels operate on: region boundary
/// rows are packed back to back, so a membership pass streams one
/// contiguous allocation instead of pointer-chasing per-region vectors.
/// Unlike [`Matrix`] it supports cheap row append and range removal,
/// which the region cache uses to maintain the pack incrementally across
/// inserts and evictions.
#[derive(Debug, Clone, PartialEq)]
pub struct RowMatrix {
    cols: usize,
    data: Vec<f64>,
}

impl RowMatrix {
    /// An empty matrix whose rows will have `cols` columns (`cols ≥ 1`).
    ///
    /// # Panics
    /// When `cols == 0`.
    pub fn new(cols: usize) -> Self {
        assert!(cols > 0, "RowMatrix requires at least one column");
        RowMatrix {
            cols,
            data: Vec::new(),
        }
    }

    /// Number of rows currently stored.
    pub fn rows(&self) -> usize {
        self.data.len() / self.cols
    }

    /// The fixed column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow row `r`.
    ///
    /// # Panics
    /// When `r` is out of range.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows(),
            "row {r} out of range ({} rows)",
            self.rows()
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Appends one row.
    ///
    /// # Panics
    /// When `row.len() != self.cols()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "row length must equal cols");
        self.data.extend_from_slice(row);
    }

    /// Removes the row range `rows`, shifting later rows down (the
    /// relative order of the survivors is preserved).
    ///
    /// # Panics
    /// When the range is out of bounds or inverted.
    pub fn remove_rows(&mut self, rows: Range<usize>) {
        assert!(rows.start <= rows.end && rows.end <= self.rows());
        self.data
            .drain(rows.start * self.cols..rows.end * self.cols);
    }

    /// The packed row-major storage (`rows × cols` values).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Drops every row (the column count is kept).
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

/// A contiguous run of rows inside a [`RowMatrix`] that belong to one
/// logical unit (one cached region's pairwise contrasts). Membership
/// verdicts are per group: a group passes only when *every* one of its
/// rows passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowGroup {
    /// First row of the group (relative to the evaluated row range).
    pub start: usize,
    /// Number of rows in the group.
    pub len: usize,
}

/// The batched-kernel seam between the linear-algebra substrate and the
/// cache/serving tiers.
///
/// A backend provides three kernels over contiguous row data: batched
/// boundary evaluation (`y = W·x + b` for a range of packed rows), batched
/// Theorem-2 membership verdicts, and the blocked residual sweep of
/// [`crate::solve::check_consistency`]. [`ScalarBackend`] defines the
/// reference semantics; every backend must be bit-identical to it (same
/// per-row accumulation order — speed must come from parallelism *across*
/// rows, never from reassociating a row's sum).
///
/// ```
/// use openapi_linalg::kernel::{default_backend, RowGroup, RowMatrix};
///
/// // Two cached boundary rows for one region (two pairwise contrasts).
/// let mut w = RowMatrix::new(2);
/// w.push_row(&[1.0, -1.0]);
/// w.push_row(&[0.5, 2.0]);
/// let bias = [0.25, -0.5];
///
/// // Evaluate both boundaries at the probe x in one pass.
/// let backend = default_backend();
/// let mut y = Vec::new();
/// backend.boundary_eval(&w, &bias, &[2.0, 1.0], 0..2, &mut y);
/// assert_eq!(y, vec![2.0 - 1.0 + 0.25, 1.0 + 2.0 - 0.5]);
///
/// // The region explains the probe iff every row is within tolerance of
/// // its observed log-probability ratio.
/// let groups = [RowGroup { start: 0, len: 2 }];
/// let mut verdicts = Vec::new();
/// backend.membership_verdicts(&y, &[1.25, 2.5], 1e-9, &groups, &mut verdicts);
/// assert_eq!(verdicts, vec![true]);
/// ```
pub trait Backend: Debug + Send + Sync {
    /// A short stable identifier (used in benches and logs).
    fn name(&self) -> &'static str;

    /// Batched boundary evaluation: for each packed row `r` in `rows`,
    /// computes `y[r - rows.start] = Σⱼ w[r][j]·x[j] + bias[r]`, clearing
    /// and filling `y` (`y.len() == rows.len()` on return).
    ///
    /// `bias` is indexed by *absolute* row, parallel to `w`. The per-row
    /// dot product must accumulate strictly left-to-right in `j` — that
    /// order is the contract that keeps backends bit-identical.
    ///
    /// # Panics
    /// When `rows` is out of range, `x.len() != w.cols()`, or `bias` is
    /// shorter than `rows.end`.
    fn boundary_eval(
        &self,
        w: &RowMatrix,
        bias: &[f64],
        x: &[f64],
        rows: Range<usize>,
        y: &mut Vec<f64>,
    );

    /// Multi-probe boundary evaluation: evaluates the packed rows `rows`
    /// for *every* probe in `xs`, clearing and filling `y` probe-major —
    /// `y[p·rows.len() + i]` is probe `p`'s value for row
    /// `rows.start + i` (`y.len() == xs.len()·rows.len()` on return).
    ///
    /// Every `(probe, row)` value must be bit-identical to what
    /// [`Backend::boundary_eval`] produces for that probe alone: batching
    /// may reuse the matrix across probes, but each per-row dot product
    /// still accumulates strictly left-to-right in `j`. This default body
    /// is the reference semantics — one single-probe pass per probe.
    ///
    /// # Panics
    /// As [`Backend::boundary_eval`], for each probe in `xs`.
    fn boundary_eval_batch(
        &self,
        w: &RowMatrix,
        bias: &[f64],
        xs: &[&[f64]],
        rows: Range<usize>,
        y: &mut Vec<f64>,
    ) {
        let mut tmp = Vec::new();
        y.clear();
        y.reserve(xs.len() * rows.len());
        for x in xs {
            self.boundary_eval(w, bias, x, rows.clone(), &mut tmp);
            y.extend_from_slice(&tmp);
        }
    }

    /// Batched Theorem-2 membership verdicts. Row `r` passes when
    /// `|y[r] − targets[r]| ≤ rtol·max(1, |targets[r]|)`; a group's
    /// verdict is `true` when the group is non-empty and every one of its
    /// rows passes. A NaN target fails its row (the caller uses NaN as the
    /// "contrast class out of range" sentinel). Clears and fills `out`
    /// (`out.len() == groups.len()` on return).
    ///
    /// The comparison is per-row exact (no accumulation), so this default
    /// body is shared by every backend.
    ///
    /// # Panics
    /// When `y.len() != targets.len()` or a group is out of range.
    fn membership_verdicts(
        &self,
        y: &[f64],
        targets: &[f64],
        rtol: f64,
        groups: &[RowGroup],
        out: &mut Vec<bool>,
    ) {
        assert_eq!(y.len(), targets.len(), "y and targets must align");
        out.clear();
        out.reserve(groups.len());
        for g in groups {
            let rows = g.start..g.start + g.len;
            let pass = g.len > 0
                && y[rows.clone()]
                    .iter()
                    .zip(&targets[rows])
                    .all(|(&yi, &ti)| (yi - ti).abs() <= rtol * ti.abs().max(1.0));
            out.push(pass);
        }
    }

    /// Blocked residual sweep of the consistency check: the worst
    /// `|a.row(r)·x − b[r]|` over rows `from_row..a.rows()` (0.0 when the
    /// range is empty). Per-row dot products accumulate strictly
    /// left-to-right; the max folds in ascending row order.
    ///
    /// # Panics
    /// When `from_row > a.rows()`, `x.len() != a.cols()`, or
    /// `b.len() != a.rows()`.
    fn residual_inf(&self, a: &Matrix, from_row: usize, x: &[f64], b: &[f64]) -> f64;
}

fn check_eval_args(w: &RowMatrix, bias: &[f64], x: &[f64], rows: &Range<usize>) {
    assert!(
        rows.start <= rows.end && rows.end <= w.rows(),
        "row range out of bounds"
    );
    assert_eq!(x.len(), w.cols(), "probe dimension must equal cols");
    assert!(bias.len() >= rows.end, "bias must cover the evaluated rows");
}

fn check_residual_args(a: &Matrix, from_row: usize, x: &[f64], b: &[f64]) {
    assert!(from_row <= a.rows(), "from_row out of range");
    assert_eq!(x.len(), a.cols(), "x length must equal cols");
    assert_eq!(b.len(), a.rows(), "b length must equal rows");
}

/// One row at a time, strictly sequential — the bit-identity oracle every
/// other backend is tested against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackend;

/// The per-row reference dot product: a single left-to-right chain.
#[inline]
fn row_dot(row: &[f64], x: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for (w, xv) in row.iter().zip(x) {
        acc += w * xv;
    }
    acc
}

impl Backend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn boundary_eval(
        &self,
        w: &RowMatrix,
        bias: &[f64],
        x: &[f64],
        rows: Range<usize>,
        y: &mut Vec<f64>,
    ) {
        check_eval_args(w, bias, x, &rows);
        y.clear();
        y.reserve(rows.len());
        for r in rows {
            y.push(row_dot(w.row(r), x) + bias[r]);
        }
    }

    fn residual_inf(&self, a: &Matrix, from_row: usize, x: &[f64], b: &[f64]) -> f64 {
        check_residual_args(a, from_row, x, b);
        let mut worst = 0.0f64;
        for (r, &bv) in b.iter().enumerate().skip(from_row) {
            worst = worst.max((row_dot(a.row(r), x) - bv).abs());
        }
        worst
    }
}

/// [`LANES`] rows at a time, one independent accumulator chain per row —
/// bit-identical to [`ScalarBackend`] (identical per-row summation order)
/// but no longer bound by a single serial FP-add chain.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockedBackend;

/// Evaluates [`LANES`] consecutive rows of packed row-major `data`
/// starting at row `r0`, returning `row(r0+l) · x` per lane. Each lane's
/// sum lives in its own named accumulator and folds strictly
/// left-to-right in `j` — exactly the scalar reference order — so the
/// blocking is across *rows* only. The lock-step `zip` walk gives the
/// compiler eight independent FP chains with no bounds checks to hoist.
#[inline]
fn lane_dots(data: &[f64], cols: usize, r0: usize, x: &[f64]) -> [f64; LANES] {
    let base = r0 * cols;
    let rows: [&[f64]; LANES] =
        std::array::from_fn(|l| &data[base + l * cols..base + (l + 1) * cols]);
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let (mut a4, mut a5, mut a6, mut a7) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for ((((((((&xj, &w0), &w1), &w2), &w3), &w4), &w5), &w6), &w7) in x
        .iter()
        .zip(rows[0])
        .zip(rows[1])
        .zip(rows[2])
        .zip(rows[3])
        .zip(rows[4])
        .zip(rows[5])
        .zip(rows[6])
        .zip(rows[7])
    {
        a0 += w0 * xj;
        a1 += w1 * xj;
        a2 += w2 * xj;
        a3 += w3 * xj;
        a4 += w4 * xj;
        a5 += w5 * xj;
        a6 += w6 * xj;
        a7 += w7 * xj;
    }
    [a0, a1, a2, a3, a4, a5, a6, a7]
}

impl Backend for BlockedBackend {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn boundary_eval(
        &self,
        w: &RowMatrix,
        bias: &[f64],
        x: &[f64],
        rows: Range<usize>,
        y: &mut Vec<f64>,
    ) {
        check_eval_args(w, bias, x, &rows);
        y.clear();
        y.reserve(rows.len());
        let (data, cols) = (w.as_slice(), w.cols());
        let mut r = rows.start;
        while r + LANES <= rows.end {
            let acc = lane_dots(data, cols, r, x);
            for (l, a) in acc.into_iter().enumerate() {
                y.push(a + bias[r + l]);
            }
            r += LANES;
        }
        for (r, &bv) in bias.iter().enumerate().take(rows.end).skip(r) {
            y.push(row_dot(w.row(r), x) + bv);
        }
    }

    fn boundary_eval_batch(
        &self,
        w: &RowMatrix,
        bias: &[f64],
        xs: &[&[f64]],
        rows: Range<usize>,
        y: &mut Vec<f64>,
    ) {
        for x in xs {
            check_eval_args(w, bias, x, &rows);
        }
        let n = rows.len();
        y.clear();
        y.resize(xs.len() * n, 0.0);
        let (data, cols) = (w.as_slice(), w.cols());
        // Transposed probe block: xt[j·PROBE_LANES + p] = xs[p0+p][j], so
        // the j-th coordinates of the block's probes sit side by side and
        // the inner loop below vectorizes across probes. Each probe's sum
        // still folds j left-to-right — the scalar reference order.
        let mut xt = vec![0.0f64; cols * PROBE_LANES];
        let mut p0 = 0;
        while p0 + PROBE_LANES <= xs.len() {
            for p in 0..PROBE_LANES {
                for (j, &v) in xs[p0 + p].iter().enumerate() {
                    xt[j * PROBE_LANES + p] = v;
                }
            }
            for (i, r) in rows.clone().enumerate() {
                let row = &data[r * cols..(r + 1) * cols];
                let mut acc = [0.0f64; PROBE_LANES];
                for (wj, xtj) in row.iter().zip(xt.chunks_exact(PROBE_LANES)) {
                    for (a, xp) in acc.iter_mut().zip(xtj) {
                        *a += wj * xp;
                    }
                }
                for (p, a) in acc.into_iter().enumerate() {
                    y[(p0 + p) * n + i] = a + bias[r];
                }
            }
            p0 += PROBE_LANES;
        }
        // Tail probes run the single-probe blocked pass (bit-identical by
        // the same contract).
        let mut tmp = Vec::new();
        for p in p0..xs.len() {
            self.boundary_eval(w, bias, xs[p], rows.clone(), &mut tmp);
            y[p * n..(p + 1) * n].copy_from_slice(&tmp);
        }
    }

    fn residual_inf(&self, a: &Matrix, from_row: usize, x: &[f64], b: &[f64]) -> f64 {
        check_residual_args(a, from_row, x, b);
        let (data, cols) = (a.as_slice(), a.cols());
        let mut worst = 0.0f64;
        let mut r = from_row;
        // Degenerate (but legal) matrices with zero columns have no packed
        // data to block over; the scalar tail below handles them.
        while cols > 0 && r + LANES <= a.rows() {
            let acc = lane_dots(data, cols, r, x);
            // Fold in ascending row order, matching the scalar reference.
            for (l, pred) in acc.into_iter().enumerate() {
                worst = worst.max((pred - b[r + l]).abs());
            }
            r += LANES;
        }
        for (r, &bv) in b.iter().enumerate().skip(r) {
            worst = worst.max((row_dot(a.row(r), x) - bv).abs());
        }
        worst
    }
}

/// The backend new caches and services use unless configured otherwise:
/// the blocked implementation (bit-identical to scalar, several times
/// faster on wide packs).
pub fn default_backend() -> Arc<dyn Backend> {
    Arc::new(BlockedBackend)
}

/// The strict reference backend, for oracles and identity tests.
pub fn scalar_backend() -> Arc<dyn Backend> {
    Arc::new(ScalarBackend)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pack(rows: usize, cols: usize, seed: f64) -> (RowMatrix, Vec<f64>) {
        let mut w = RowMatrix::new(cols);
        let mut bias = Vec::with_capacity(rows);
        for r in 0..rows {
            let row: Vec<f64> = (0..cols)
                .map(|c| ((r * cols + c) as f64 * 0.37 + seed).sin() * 2.0)
                .collect();
            w.push_row(&row);
            bias.push((r as f64 * 0.11 - seed).cos());
        }
        (w, bias)
    }

    fn probe(cols: usize, seed: f64) -> Vec<f64> {
        (0..cols).map(|c| (c as f64 * 0.71 + seed).cos()).collect()
    }

    #[test]
    fn blocked_matches_scalar_bit_for_bit_across_shapes() {
        for &(rows, cols) in &[(0, 3), (1, 1), (7, 5), (8, 8), (9, 196), (33, 17)] {
            let (w, bias) = pack(rows, cols, 0.3);
            let x = probe(cols, 1.7);
            let (mut ys, mut yb) = (Vec::new(), Vec::new());
            ScalarBackend.boundary_eval(&w, &bias, &x, 0..rows, &mut ys);
            BlockedBackend.boundary_eval(&w, &bias, &x, 0..rows, &mut yb);
            assert_eq!(ys.len(), rows);
            let same = ys.iter().zip(&yb).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "bit mismatch at rows={rows} cols={cols}");
        }
    }

    #[test]
    fn sub_ranges_and_bias_indexing_are_absolute() {
        let (w, bias) = pack(20, 6, 0.9);
        let x = probe(6, 0.2);
        let mut full = Vec::new();
        ScalarBackend.boundary_eval(&w, &bias, &x, 0..20, &mut full);
        for backend in [&ScalarBackend as &dyn Backend, &BlockedBackend] {
            let mut part = Vec::new();
            backend.boundary_eval(&w, &bias, &x, 5..17, &mut part);
            assert_eq!(part.len(), 12);
            for (i, v) in part.iter().enumerate() {
                assert_eq!(v.to_bits(), full[5 + i].to_bits());
            }
        }
    }

    #[test]
    fn batch_eval_matches_per_probe_eval_bit_for_bit() {
        // Probe counts straddle PROBE_LANES so both the transposed block
        // path and the single-probe tail are exercised.
        for &probes in &[0usize, 1, 7, 8, 9, 17] {
            for &(rows, cols) in &[(0usize, 3usize), (5, 1), (9, 196), (33, 17)] {
                let (w, bias) = pack(rows, cols, 0.6);
                let xs_owned: Vec<Vec<f64>> =
                    (0..probes).map(|p| probe(cols, p as f64 * 0.31)).collect();
                let xs: Vec<&[f64]> = xs_owned.iter().map(Vec::as_slice).collect();
                for backend in [&ScalarBackend as &dyn Backend, &BlockedBackend] {
                    let mut batched = Vec::new();
                    backend.boundary_eval_batch(&w, &bias, &xs, 0..rows, &mut batched);
                    assert_eq!(batched.len(), probes * rows);
                    let mut single = Vec::new();
                    for (p, x) in xs.iter().enumerate() {
                        ScalarBackend.boundary_eval(&w, &bias, x, 0..rows, &mut single);
                        for (i, v) in single.iter().enumerate() {
                            assert_eq!(
                                batched[p * rows + i].to_bits(),
                                v.to_bits(),
                                "{} probe {p} row {i} (probes={probes} rows={rows} cols={cols})",
                                backend.name(),
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn batch_eval_respects_sub_ranges() {
        let (w, bias) = pack(20, 6, 0.4);
        let xs_owned: Vec<Vec<f64>> = (0..9).map(|p| probe(6, p as f64)).collect();
        let xs: Vec<&[f64]> = xs_owned.iter().map(Vec::as_slice).collect();
        let mut batched = Vec::new();
        BlockedBackend.boundary_eval_batch(&w, &bias, &xs, 5..17, &mut batched);
        assert_eq!(batched.len(), 9 * 12);
        let mut single = Vec::new();
        for (p, x) in xs.iter().enumerate() {
            ScalarBackend.boundary_eval(&w, &bias, x, 5..17, &mut single);
            for (i, v) in single.iter().enumerate() {
                assert_eq!(
                    batched[p * 12 + i].to_bits(),
                    v.to_bits(),
                    "probe {p} row {i}"
                );
            }
        }
    }

    #[test]
    fn verdicts_demand_every_row_of_a_group() {
        let y = [1.0, 2.0, 3.0];
        let targets = [1.0, 2.5, 3.0];
        let groups = [
            RowGroup { start: 0, len: 1 },
            RowGroup { start: 0, len: 2 },
            RowGroup { start: 2, len: 1 },
            RowGroup { start: 1, len: 0 },
        ];
        let mut out = Vec::new();
        ScalarBackend.membership_verdicts(&y, &targets, 1e-6, &groups, &mut out);
        // Row 1 is off by 0.5: any group containing it fails; empty groups
        // fail by definition (no boundary can't explain a probe).
        assert_eq!(out, vec![true, false, true, false]);
    }

    #[test]
    fn nan_targets_fail_their_group() {
        let y = [1.0, 2.0];
        let targets = [1.0, f64::NAN];
        let groups = [RowGroup { start: 0, len: 2 }];
        let mut out = Vec::new();
        BlockedBackend.membership_verdicts(&y, &targets, 1e-2, &groups, &mut out);
        assert_eq!(out, vec![false]);
    }

    #[test]
    fn residual_inf_matches_between_backends_and_the_inline_sweep() {
        let a = Matrix::from_fn(21, 5, |r, c| ((r * 5 + c) as f64 * 0.23).sin());
        let x: Vec<f64> = (0..5).map(|c| (c as f64 * 0.4).cos()).collect();
        let b: Vec<f64> = (0..21).map(|r| (r as f64 * 0.9).sin() * 3.0).collect();
        let scalar = ScalarBackend.residual_inf(&a, 5, &x, &b);
        let blocked = BlockedBackend.residual_inf(&a, 5, &x, &b);
        assert_eq!(scalar.to_bits(), blocked.to_bits());
        // And both match the historical inline sweep of check_consistency.
        let mut worst = 0.0f64;
        for (r, &bv) in b.iter().enumerate().skip(5) {
            let pred: f64 = a.row(r).iter().zip(x.iter()).map(|(p, q)| p * q).sum();
            worst = worst.max((pred - bv).abs());
        }
        assert_eq!(scalar.to_bits(), worst.to_bits());
        // Empty sweep range → 0.
        assert_eq!(ScalarBackend.residual_inf(&a, 21, &x, &b), 0.0);
    }

    #[test]
    fn row_matrix_remove_rows_shifts_later_rows_down() {
        let (mut w, _) = pack(6, 3, 0.1);
        let row4 = w.row(4).to_vec();
        let row5 = w.row(5).to_vec();
        w.remove_rows(1..4);
        assert_eq!(w.rows(), 3);
        assert_eq!(w.row(1), row4.as_slice());
        assert_eq!(w.row(2), row5.as_slice());
        w.remove_rows(0..0);
        assert_eq!(w.rows(), 3);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.cols(), 3);
    }

    #[test]
    #[should_panic(expected = "row length must equal cols")]
    fn push_row_validates_width() {
        RowMatrix::new(3).push_row(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "probe dimension must equal cols")]
    fn boundary_eval_validates_probe_dim() {
        let (w, bias) = pack(4, 3, 0.5);
        ScalarBackend.boundary_eval(&w, &bias, &[1.0, 2.0], 0..4, &mut Vec::new());
    }
}
