//! High-level solving entry points with residual diagnostics.
//!
//! `openapi-core` never touches factorizations directly; it asks this module
//! "solve this square system" or "is this overdetermined system consistent,
//! and if so what is its solution?". The diagnostics returned here feed the
//! interpreter's iteration log (how close to singular the sampling geometry
//! was, what the residuals looked like), which the ablation experiments
//! analyze.

use crate::error::LinalgError;
use crate::kernel::{Backend, ScalarBackend};
use crate::lu::LuFactor;
use crate::matrix::Matrix;
use crate::qr::QrFactor;
use crate::vector::Vector;
use crate::Result;

/// Numerical diagnostics attached to a solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveDiagnostics {
    /// Residual `‖A·x̂ − b‖∞` over the equations used for the solve.
    pub residual_inf: f64,
    /// A cheap conditioning indicator (ratio of extreme pivot magnitudes for
    /// LU; 0 when unavailable). Large values flag nearly-degenerate sampling.
    pub condition_hint: f64,
}

/// Solves a square system `A·x = b` via LU with partial pivoting, returning
/// the solution together with diagnostics.
///
/// # Errors
/// Propagates the factorization errors of [`LuFactor::new`] and the shape
/// errors of [`LuFactor::solve`].
pub fn solve_square(a: &Matrix, b: &[f64]) -> Result<(Vector, SolveDiagnostics)> {
    let f = LuFactor::new(a)?;
    let x = f.solve(b)?;
    let ax = a.matvec(x.as_slice())?;
    let residual_inf = ax
        .iter()
        .zip(b.iter())
        .map(|(p, q)| (p - q).abs())
        .fold(0.0f64, f64::max);
    Ok((
        x,
        SolveDiagnostics {
            residual_inf,
            condition_hint: f.diagonal_condition(),
        },
    ))
}

/// Solves `min ‖A·x − b‖₂` via Householder QR.
///
/// Returns the minimizer and the residual 2-norm.
///
/// # Errors
/// Propagates [`QrFactor::new`] / [`QrFactor::solve_lstsq`] errors.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<(Vector, f64)> {
    QrFactor::new(a)?.solve_lstsq(b)
}

/// Verdict of a consistency check on an overdetermined system, as needed by
/// OpenAPI's Theorem 2: "if `Ω_{d+2}` has at least one solution, the solution
/// is unique and exact with probability 1".
#[derive(Debug, Clone)]
pub struct ConsistencyReport {
    /// The candidate solution (present even when inconsistent, for
    /// diagnostics — it is the square-subsystem or least-squares solution).
    pub solution: Vector,
    /// Residual magnitude that was compared against the threshold.
    pub residual: f64,
    /// The threshold actually used (after scaling).
    pub threshold: f64,
    /// `true` when the system is numerically consistent.
    pub consistent: bool,
}

/// Strategy for deciding whether an overdetermined system has a solution.
///
/// Both appear in the paper's construction: Theorem 2 argues through the
/// square subsystems `Θ_i` (— the `SquareThenCheck` strategy), while "`Ω` has
/// at least one solution" is literally a least-squares residual test
/// (`LeastSquares`). They agree in exact arithmetic; the ablation bench
/// compares their speed and floating-point robustness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsistencyStrategy {
    /// LU-solve the first `n` equations, then test the residuals of the
    /// remaining rows. `O(n³/3)` — the fast path.
    SquareThenCheck,
    /// QR on the full system; consistency is a small least-squares residual.
    /// ~4× the flops, but immune to an ill-conditioned leading block.
    LeastSquares,
}

/// Checks whether the overdetermined system `A·x = b` (`rows > cols`) is
/// consistent, within a relative tolerance.
///
/// The residual is compared against `rtol · max(1, ‖b‖∞)`: the right-hand
/// sides here are log-probability ratios, typically `O(1)`–`O(10)`, and the
/// `max(1, ·)` floor keeps the test meaningful when predictions are nearly
/// uniform (tiny `‖b‖`).
///
/// # Errors
/// * [`LinalgError::DimensionMismatch`] when `rows <= cols` or `b` mismatched.
/// * Factorization errors ([`LinalgError::Singular`] /
///   [`LinalgError::RankDeficient`]) when the sampling geometry degenerates —
///   callers treat these as "resample", per Lemma 1 this happens with
///   probability 0 for continuous samplers.
pub fn check_consistency(
    a: &Matrix,
    b: &[f64],
    rtol: f64,
    strategy: ConsistencyStrategy,
) -> Result<ConsistencyReport> {
    check_consistency_with(a, b, rtol, strategy, &ScalarBackend)
}

/// [`check_consistency`] with an explicit [`Backend`] for the residual
/// sweep of the `SquareThenCheck` strategy. Backends are bit-identical by
/// contract (see [`crate::kernel`]), so this changes speed, never the
/// verdict; the default entry point uses the scalar reference.
///
/// # Errors
/// As [`check_consistency`].
pub fn check_consistency_with(
    a: &Matrix,
    b: &[f64],
    rtol: f64,
    strategy: ConsistencyStrategy,
    backend: &dyn Backend,
) -> Result<ConsistencyReport> {
    let (m, n) = (a.rows(), a.cols());
    if m <= n {
        return Err(LinalgError::DimensionMismatch {
            op: "check_consistency (rows > cols required)",
            expected: n + 1,
            found: m,
        });
    }
    if b.len() != m {
        return Err(LinalgError::DimensionMismatch {
            op: "check_consistency (rhs length)",
            expected: m,
            found: b.len(),
        });
    }
    let bscale = b.iter().fold(0.0f64, |s, v| s.max(v.abs())).max(1.0);
    let threshold = rtol * bscale;

    match strategy {
        ConsistencyStrategy::SquareThenCheck => {
            // Solve the leading n×n block.
            let head = Matrix::from_fn(n, n, |r, c| a[(r, c)]);
            let f = LuFactor::new(&head)?;
            let x = f.solve(&b[..n])?;
            // Residuals of the held-out equations decide consistency
            // (Theorem 2's Θ construction: any solution of Ω solves every Θ).
            let worst = backend.residual_inf(a, n, x.as_slice(), b);
            Ok(ConsistencyReport {
                solution: x,
                residual: worst,
                threshold,
                consistent: worst <= threshold,
            })
        }
        ConsistencyStrategy::LeastSquares => {
            let (x, res2) = QrFactor::new(a)?.solve_lstsq(b)?;
            Ok(ConsistencyReport {
                solution: x,
                residual: res2,
                threshold,
                consistent: res2 <= threshold,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consistent_system() -> (Matrix, Vec<f64>) {
        // Underlying truth: x = (2, -1, 0.5); rows are random-ish probes.
        let probes: [[f64; 3]; 5] = [
            [1.0, 0.0, 0.0],
            [0.3, 0.7, -0.2],
            [0.0, 1.0, 1.0],
            [2.0, -1.0, 0.5],
            [-0.4, 0.1, 0.9],
        ];
        let truth = [2.0, -1.0, 0.5];
        let a =
            Matrix::from_rows(&probes.iter().map(|r| r.as_slice()).collect::<Vec<_>>()).unwrap();
        let b = probes
            .iter()
            .map(|p| p.iter().zip(truth.iter()).map(|(u, v)| u * v).sum())
            .collect();
        (a, b)
    }

    #[test]
    fn consistent_system_passes_both_strategies() {
        let (a, b) = consistent_system();
        for strat in [
            ConsistencyStrategy::SquareThenCheck,
            ConsistencyStrategy::LeastSquares,
        ] {
            let rep = check_consistency(&a, &b, 1e-9, strat).unwrap();
            assert!(rep.consistent, "{strat:?} must accept a consistent system");
            assert!((rep.solution[0] - 2.0).abs() < 1e-9);
            assert!((rep.solution[1] + 1.0).abs() < 1e-9);
            assert!((rep.solution[2] - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn perturbed_rhs_fails_both_strategies() {
        let (a, mut b) = consistent_system();
        b[4] += 0.05; // one equation from a "different region"
        for strat in [
            ConsistencyStrategy::SquareThenCheck,
            ConsistencyStrategy::LeastSquares,
        ] {
            let rep = check_consistency(&a, &b, 1e-9, strat).unwrap();
            assert!(
                !rep.consistent,
                "{strat:?} must reject an inconsistent system"
            );
            assert!(rep.residual > rep.threshold);
        }
    }

    #[test]
    fn tolerance_scales_with_rhs_magnitude() {
        let (a, b) = consistent_system();
        let big: Vec<f64> = b.iter().map(|v| v * 1e6).collect();
        let rep = check_consistency(&a, &big, 1e-9, ConsistencyStrategy::LeastSquares).unwrap();
        // Threshold grows with ‖b‖∞ so legitimate round-off still passes.
        assert!(rep.threshold >= 1e-9 * 1e5);
        assert!(rep.consistent);
    }

    #[test]
    fn shape_validation() {
        let a = Matrix::identity(3); // square: not overdetermined
        assert!(check_consistency(&a, &[1.0; 3], 1e-9, ConsistencyStrategy::LeastSquares).is_err());
        let a = Matrix::zeros(4, 2);
        assert!(check_consistency(&a, &[1.0; 3], 1e-9, ConsistencyStrategy::LeastSquares).is_err());
    }

    #[test]
    fn solve_square_reports_diagnostics() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]).unwrap();
        let (x, diag) = solve_square(&a, &[6.0, 2.0]).unwrap();
        assert_eq!(x.as_slice(), &[2.0, 2.0]);
        assert!(diag.residual_inf < 1e-12);
        assert!((diag.condition_hint - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lstsq_smoke() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let (x, res) = lstsq(&a, &[2.0, 3.0, 4.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
        assert!(res < 1e-10);
    }

    #[test]
    fn blocked_backend_reproduces_the_reference_report_bit_for_bit() {
        let (a, mut b) = consistent_system();
        b[3] += 3e-10; // sit near the tolerance boundary on purpose
        let reference =
            check_consistency(&a, &b, 1e-9, ConsistencyStrategy::SquareThenCheck).unwrap();
        let blocked = check_consistency_with(
            &a,
            &b,
            1e-9,
            ConsistencyStrategy::SquareThenCheck,
            &crate::kernel::BlockedBackend,
        )
        .unwrap();
        assert_eq!(reference.residual.to_bits(), blocked.residual.to_bits());
        assert_eq!(reference.consistent, blocked.consistent);
        assert_eq!(reference.solution, blocked.solution);
    }

    #[test]
    fn degenerate_geometry_surfaces_as_error_not_panic() {
        // Duplicate sample rows make the leading block singular.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = [1.0, 1.0, 2.0];
        let r = check_consistency(&a, &b, 1e-9, ConsistencyStrategy::SquareThenCheck);
        assert!(matches!(r, Err(LinalgError::Singular { .. })));
    }
}
