//! Summary statistics used by the experiment reports.
//!
//! Figures 6 and 7 of the paper report the minimum / mean / maximum of a
//! metric over all testing instances (drawn as error bars). [`Summary`] is
//! that triple plus count and standard deviation, accumulated in one pass.

use serde::{Deserialize, Serialize};

/// One-pass min/mean/max/std accumulator over `f64` observations.
///
/// Non-finite observations are counted separately and excluded from the
/// moments — interpretation baselines *do* produce NaN/inf under softmax
/// saturation (paper §V-D), and the reports must say how often rather than
/// poison every aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: usize,
    non_finite: usize,
    min: f64,
    max: f64,
    sum: f64,
    sum_sq: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Summary {
            count: 0,
            non_finite: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            sum_sq: 0.0,
        }
    }

    /// Accumulates one observation.
    pub fn push(&mut self, v: f64) {
        if !v.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v;
        self.sum_sq += v * v;
    }

    /// Builds a summary from an iterator of observations.
    #[allow(clippy::should_implement_trait)] // deliberate inherent constructor name
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.push(v);
        }
        s
    }

    /// Number of finite observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Number of rejected non-finite observations.
    pub fn non_finite(&self) -> usize {
        self.non_finite
    }

    /// Minimum (None when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum (None when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean (None when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.sum / self.count as f64)
    }

    /// Population standard deviation (None when empty).
    ///
    /// Uses `max(0, E[x²] − E[x]²)` to guard against tiny negative values
    /// from cancellation.
    pub fn std_dev(&self) -> Option<f64> {
        self.mean().map(|m| {
            let var = (self.sum_sq / self.count as f64 - m * m).max(0.0);
            var.sqrt()
        })
    }

    /// Merges another accumulator into this one (for sharded evaluation).
    pub fn merge(&mut self, other: &Summary) {
        self.count += other.count;
        self.non_finite += other.non_finite;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }

    /// Formats as `min/mean/max` with the given precision, the layout used in
    /// the experiment tables.
    pub fn display_triple(&self, precision: usize) -> String {
        match (self.min(), self.mean(), self.max()) {
            (Some(lo), Some(mid), Some(hi)) => {
                format!("{lo:.precision$e} / {mid:.precision$e} / {hi:.precision$e}")
            }
            _ => "— / — / —".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_has_no_moments() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert!(s.min().is_none());
        assert!(s.mean().is_none());
        assert!(s.std_dev().is_none());
        assert_eq!(s.display_triple(2), "— / — / —");
    }

    #[test]
    fn known_moments() {
        let s = Summary::from_iter([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        assert_eq!(s.mean(), Some(2.5));
        let sd = s.std_dev().unwrap();
        assert!((sd - 1.118033988749895).abs() < 1e-12);
    }

    #[test]
    fn non_finite_observations_are_counted_not_mixed() {
        let s = Summary::from_iter([1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.non_finite(), 2);
        assert_eq!(s.mean(), Some(2.0));
    }

    #[test]
    fn merge_equals_bulk() {
        let mut a = Summary::from_iter([1.0, 5.0]);
        let b = Summary::from_iter([2.0, 8.0, f64::NAN]);
        a.merge(&b);
        let bulk = Summary::from_iter([1.0, 5.0, 2.0, 8.0, f64::NAN]);
        assert_eq!(a, bulk);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::from_iter([1.0, 2.0]);
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a, before);
    }

    #[test]
    fn display_triple_renders_scientific() {
        let s = Summary::from_iter([0.001, 0.01]);
        let out = s.display_triple(1);
        assert!(out.contains("e-3") || out.contains("e-03"), "{out}");
    }
}
