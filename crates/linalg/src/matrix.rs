//! Dense row-major `f64` matrix.

use crate::error::LinalgError;
use crate::vector::Vector;
use crate::Result;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense matrix stored in row-major order.
///
/// Sized for the workloads of this repository: coefficient matrices of the
/// interpretation equation systems (up to `(d+2)×(d+1)` with `d = 784`),
/// neural-network weight matrices, and logistic-regression coefficient
/// blocks. Row-major layout keeps equation assembly (one perturbed instance
/// per row) allocation-free and cache-friendly.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::from_vec",
                expected: rows * cols,
                found: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from row slices; every row must have equal length.
    ///
    /// # Errors
    /// [`LinalgError::Empty`] when `rows` is empty, or
    /// [`LinalgError::DimensionMismatch`] for ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let first = rows.first().ok_or(LinalgError::Empty {
            op: "Matrix::from_rows",
        })?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    op: "Matrix::from_rows",
                    expected: cols,
                    found: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the raw row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrow the raw row-major data mutably (used by optimizers that treat
    /// parameter tensors as flat slices).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    /// Panics when `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    ///
    /// # Panics
    /// Panics when `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new [`Vector`].
    ///
    /// # Panics
    /// Panics when `c >= cols`.
    pub fn col(&self, c: usize) -> Vector {
        assert!(c < self.cols, "col {c} out of range ({} cols)", self.cols);
        Vector((0..self.rows).map(|r| self[(r, c)]).collect())
    }

    /// Overwrites row `r` with `values`.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] when `values.len() != cols`.
    ///
    /// # Panics
    /// Panics when `r >= rows`.
    pub fn set_row(&mut self, r: usize, values: &[f64]) -> Result<()> {
        if values.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::set_row",
                expected: self.cols,
                found: values.len(),
            });
        }
        self.row_mut(r).copy_from_slice(values);
        Ok(())
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] when `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vector> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::matvec",
                expected: self.cols,
                found: x.len(),
            });
        }
        let mut out = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            out.push(row.iter().zip(x.iter()).map(|(a, b)| a * b).sum());
        }
        Ok(Vector(out))
    }

    /// Transposed matrix–vector product `Aᵀ·x` without forming `Aᵀ`.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] when `x.len() != rows`.
    #[allow(clippy::needless_range_loop)] // row-index loop matches the math
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vector> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::matvec_t",
                expected: self.rows,
                found: x.len(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = self.row(r);
            let xr = x[r];
            if xr != 0.0 {
                for (o, a) in out.iter_mut().zip(row.iter()) {
                    *o += xr * a;
                }
            }
        }
        Ok(Vector(out))
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// Uses the i-k-j loop order so the inner loop streams rows of `B`;
    /// at the sizes used here (≤ ~800) this is within a small factor of
    /// blocked implementations and keeps the code obvious.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] when `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::matmul",
                expected: self.cols,
                found: rhs.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, b) in orow.iter_mut().zip(brow.iter()) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Element-wise sum `A + B`.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "Matrix::add", |a, b| a + b)
    }

    /// Element-wise difference `A − B`.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "Matrix::sub", |a, b| a - b)
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(LinalgError::DimensionMismatch {
                op,
                expected: self.rows * self.cols,
                found: rhs.rows * rhs.cols,
            });
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| f(*a, *b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiplies every entry by `alpha`, in place.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Frobenius norm `sqrt(Σ a_ij²)`.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (0 for an empty matrix).
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0, |m, a| m.max(a.abs()))
    }

    /// `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|a| a.is_finite())
    }

    /// Swaps rows `a` and `b` in place.
    ///
    /// # Panics
    /// Panics when either index is out of range.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "swap_rows out of range");
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}×{} [", self.rows, self.cols)?;
        let max_rows = 8usize;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:+.4e}", self[(r, c)])?;
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert!(!m.is_square());
        assert_eq!(m[(2, 1)], 6.0);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
        assert!(matches!(err, Err(LinalgError::DimensionMismatch { .. })));
        assert!(matches!(
            Matrix::from_rows(&[]),
            Err(LinalgError::Empty { .. })
        ));
    }

    #[test]
    fn identity_matvec_is_identity() {
        let i = Matrix::identity(3);
        let x = [1.0, 2.0, 3.0];
        assert_eq!(i.matvec(&x).unwrap().as_slice(), &x);
    }

    #[test]
    fn matvec_known_product() {
        let m = sample();
        let y = m.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(y.as_slice(), &[3.0, 7.0, 11.0]);
    }

    #[test]
    fn matvec_t_matches_explicit_transpose() {
        let m = sample();
        let x = [1.0, 0.5, -1.0];
        let via_t = m.transpose().matvec(&x).unwrap();
        let direct = m.matvec_t(&x).unwrap();
        assert_eq!(via_t, direct);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_dimension_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn row_and_col_access() {
        let m = sample();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0).as_slice(), &[1.0, 3.0, 5.0]);
    }

    #[test]
    fn set_row_validates_width() {
        let mut m = sample();
        assert!(m.set_row(0, &[9.0]).is_err());
        m.set_row(0, &[9.0, 8.0]).unwrap();
        assert_eq!(m.row(0), &[9.0, 8.0]);
    }

    #[test]
    fn swap_rows_both_orders() {
        let mut m = sample();
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[5.0, 6.0]);
        assert_eq!(m.row(2), &[1.0, 2.0]);
        m.swap_rows(2, 0); // reverse order
        assert_eq!(m.row(0), &[1.0, 2.0]);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn add_sub_and_scale() {
        let a = Matrix::identity(2);
        let mut b = Matrix::identity(2);
        b.scale(3.0);
        let sum = a.add(&b).unwrap();
        assert_eq!(sum[(0, 0)], 4.0);
        let diff = sum.sub(&a).unwrap();
        assert_eq!(diff, b);
    }

    #[test]
    fn norms_and_finiteness() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert_eq!(m.norm_frobenius(), 5.0);
        assert_eq!(m.norm_max(), 4.0);
        assert!(m.is_finite());
        let mut bad = m.clone();
        bad[(0, 0)] = f64::NAN;
        assert!(!bad.is_finite());
    }

    #[test]
    fn display_is_bounded_for_large_matrices() {
        let m = Matrix::zeros(100, 100);
        let s = format!("{m}");
        assert!(s.lines().count() < 15);
    }
}
