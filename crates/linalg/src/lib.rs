//! Dense linear algebra substrate for the OpenAPI reproduction.
//!
//! The OpenAPI method (Cong et al., ICDE 2020) reduces model interpretation to
//! solving small-to-medium dense linear systems: a determined `(d+1)×(d+1)`
//! system for the naive method and an overdetermined `(d+2)×(d+1)` system for
//! OpenAPI itself, where `d` is the input dimensionality (784 for the paper's
//! image workloads). This crate provides everything those solvers need,
//! hand-rolled and dependency-free:
//!
//! * [`Vector`] and [`Matrix`] — dense `f64` containers with the usual
//!   arithmetic, norms, and similarity measures.
//! * [`LuFactor`] — LU factorization with partial pivoting for square solves
//!   and determinants (the fast path of OpenAPI's consistency check).
//! * [`QrFactor`] — Householder QR for least-squares solves and numerical
//!   rank (the robust path of the consistency check, and the fitting engine
//!   behind the LIME baselines).
//! * [`solve`] — high-level entry points with residual diagnostics, used by
//!   `openapi-core` to decide whether an overdetermined system is consistent.
//!
//! All routines are deterministic and allocate only what they return; hot
//! paths (factor/solve) reuse caller-provided buffers where it matters.
//!
//! The [`kernel`] module adds the batched layer on top: a [`Backend`]
//! trait with blocked, SIMD-friendly kernels for boundary evaluation and
//! Theorem-2 membership over contiguous row packs, used by the cache and
//! serving tiers for the warm path.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cholesky;
pub mod codec;
pub mod error;
pub mod kernel;
pub mod lu;
pub mod matrix;
pub mod qr;
pub mod ridge;
pub mod solve;
pub mod stats;
pub mod vector;

pub use cholesky::CholeskyFactor;
pub use error::LinalgError;
pub use kernel::{Backend, BlockedBackend, RowGroup, RowMatrix, ScalarBackend};
pub use lu::LuFactor;
pub use matrix::Matrix;
pub use qr::QrFactor;
pub use ridge::ridge_regression;
pub use solve::{lstsq, solve_square, ConsistencyReport, SolveDiagnostics};
pub use stats::Summary;
pub use vector::Vector;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
