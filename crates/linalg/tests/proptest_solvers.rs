//! Property-based tests for the factorizations and solvers.
//!
//! These are the invariants OpenAPI's correctness leans on: a full-rank
//! system solved by LU/QR reproduces its right-hand side, consistency checks
//! accept constructed-consistent systems and reject perturbed ones, and the
//! basic vector identities hold for arbitrary finite data.

use openapi_linalg::solve::{check_consistency, ConsistencyStrategy};
use openapi_linalg::{lstsq, ridge_regression, solve_square, LuFactor, Matrix, QrFactor, Vector};
use proptest::prelude::*;

/// Strategy: a well-conditioned n×n matrix built as (random in [-1,1]) + n·I.
/// Diagonal dominance guarantees invertibility without rejection sampling.
fn well_conditioned_square(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = Matrix::from_vec(n, n, data).unwrap();
        for i in 0..n {
            m[(i, i)] += n as f64 + 1.0;
        }
        m
    })
}

fn finite_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solution_reproduces_rhs(a in well_conditioned_square(7), b in finite_vec(7)) {
        let f = LuFactor::new(&a).unwrap();
        let x = f.solve(&b).unwrap();
        let ax = a.matvec(x.as_slice()).unwrap();
        for i in 0..7 {
            prop_assert!((ax[i] - b[i]).abs() < 1e-8, "row {i}: {} vs {}", ax[i], b[i]);
        }
    }

    #[test]
    fn lu_and_qr_agree_on_square_systems(a in well_conditioned_square(6), b in finite_vec(6)) {
        let x_lu = LuFactor::new(&a).unwrap().solve(&b).unwrap();
        let (x_qr, res) = QrFactor::new(&a).unwrap().solve_lstsq(&b).unwrap();
        prop_assert!(res < 1e-8);
        for i in 0..6 {
            prop_assert!((x_lu[i] - x_qr[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn determinant_sign_flips_with_row_swap(a in well_conditioned_square(5)) {
        let d0 = LuFactor::new(&a).unwrap().det();
        let mut swapped = a.clone();
        swapped.swap_rows(0, 3);
        let d1 = LuFactor::new(&swapped).unwrap().det();
        prop_assert!((d0 + d1).abs() < 1e-6 * d0.abs().max(1.0));
    }

    #[test]
    fn lstsq_residual_is_optimal_under_coordinate_nudges(
        data in prop::collection::vec(-1.0f64..1.0, 8 * 3),
        b in finite_vec(8),
        nudge in -0.5f64..0.5,
    ) {
        let mut a = Matrix::from_vec(8, 3, data).unwrap();
        // Make columns independent deterministically.
        for i in 0..3 { a[(i, i)] += 4.0; }
        let (x, res) = lstsq(&a, &b).unwrap();
        // Any nudge of any coordinate must not decrease the residual.
        for k in 0..3 {
            let mut xx = x.clone();
            xx[k] += nudge;
            let ax = a.matvec(xx.as_slice()).unwrap();
            let r2 = ax.iter().zip(b.iter()).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt();
            prop_assert!(r2 + 1e-9 >= res, "nudge at {k} beat LS: {r2} < {res}");
        }
    }

    #[test]
    fn constructed_consistent_overdetermined_system_is_accepted(
        data in prop::collection::vec(-1.0f64..1.0, 9 * 4),
        truth in finite_vec(4),
    ) {
        let mut a = Matrix::from_vec(9, 4, data).unwrap();
        for i in 0..4 { a[(i, i)] += 5.0; }
        let b: Vec<f64> = (0..9)
            .map(|r| a.row(r).iter().zip(truth.iter()).map(|(p, q)| p * q).sum())
            .collect();
        for strat in [ConsistencyStrategy::SquareThenCheck, ConsistencyStrategy::LeastSquares] {
            let rep = check_consistency(&a, &b, 1e-7, strat).unwrap();
            prop_assert!(rep.consistent, "{strat:?} rejected a consistent system (residual {})", rep.residual);
            for (i, t) in truth.iter().enumerate() {
                prop_assert!((rep.solution[i] - t).abs() < 1e-5 * t.abs().max(1.0));
            }
        }
    }

    #[test]
    fn corrupted_equation_is_rejected(
        data in prop::collection::vec(-1.0f64..1.0, 9 * 4),
        truth in finite_vec(4),
        bump in prop::sample::select(vec![0.1f64, 1.0, 10.0]),
    ) {
        let mut a = Matrix::from_vec(9, 4, data).unwrap();
        for i in 0..4 { a[(i, i)] += 5.0; }
        let mut b: Vec<f64> = (0..9)
            .map(|r| a.row(r).iter().zip(truth.iter()).map(|(p, q)| p * q).sum())
            .collect();
        // Corrupt a held-out equation (index >= 4 so SquareThenCheck sees it).
        let scale = b.iter().fold(1.0f64, |s, v| s.max(v.abs()));
        b[7] += bump * scale;
        for strat in [ConsistencyStrategy::SquareThenCheck, ConsistencyStrategy::LeastSquares] {
            let rep = check_consistency(&a, &b, 1e-9, strat).unwrap();
            prop_assert!(!rep.consistent, "{strat:?} accepted a corrupted system");
        }
    }

    #[test]
    fn ridge_approaches_lstsq_as_lambda_vanishes(
        data in prop::collection::vec(-1.0f64..1.0, 10 * 3),
        b in finite_vec(10),
    ) {
        let mut a = Matrix::from_vec(10, 3, data).unwrap();
        for i in 0..3 { a[(i, i)] += 4.0; }
        let (ls, _) = lstsq(&a, &b).unwrap();
        let rr = ridge_regression(&a, &b, 1e-12, true).unwrap();
        for i in 0..3 {
            prop_assert!((ls[i] - rr[i]).abs() < 1e-6 * ls[i].abs().max(1.0));
        }
    }

    #[test]
    fn cosine_similarity_is_scale_invariant(v in finite_vec(12), alpha in 0.001f64..1000.0) {
        let a = Vector(v.clone());
        if a.norm_l2() > 1e-9 {
            let b = a.scaled(alpha);
            let cs = a.cosine_similarity(&b).unwrap();
            prop_assert!((cs - 1.0).abs() < 1e-9);
            let c = a.scaled(-alpha);
            let cs_neg = a.cosine_similarity(&c).unwrap();
            prop_assert!((cs_neg + 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn triangle_inequality_l1(u in finite_vec(6), v in finite_vec(6), w in finite_vec(6)) {
        let (u, v, w) = (Vector(u), Vector(v), Vector(w));
        let direct = u.l1_distance(&w).unwrap();
        let via = u.l1_distance(&v).unwrap() + v.l1_distance(&w).unwrap();
        prop_assert!(direct <= via + 1e-9);
    }

    #[test]
    fn matvec_is_linear(
        data in prop::collection::vec(-2.0f64..2.0, 5 * 4),
        x in finite_vec(4),
        y in finite_vec(4),
        alpha in -3.0f64..3.0,
    ) {
        let a = Matrix::from_vec(5, 4, data).unwrap();
        let xv = Vector(x);
        let yv = Vector(y);
        let lhs = a.matvec((&xv + &yv.scaled(alpha)).as_slice()).unwrap();
        let ax = a.matvec(xv.as_slice()).unwrap();
        let ay = a.matvec(yv.as_slice()).unwrap();
        let rhs = &ax + &ay.scaled(alpha);
        for i in 0..5 {
            prop_assert!((lhs[i] - rhs[i]).abs() < 1e-7 * lhs[i].abs().max(1.0));
        }
    }

    #[test]
    fn solve_square_diagnostics_residual_is_tiny(a in well_conditioned_square(8), b in finite_vec(8)) {
        let (_, diag) = solve_square(&a, &b).unwrap();
        prop_assert!(diag.residual_inf < 1e-8);
        prop_assert!(diag.condition_hint.is_finite());
    }
}
