//! C4.5 split selection: information gain ratio over candidate thresholds.

use openapi_data::Dataset;

/// A candidate binary split `x[feature] <= threshold` with its quality.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitCandidate {
    /// Pivot feature index.
    pub feature: usize,
    /// Split threshold (left: `<=`, right: `>`).
    pub threshold: f64,
    /// C4.5 gain ratio of the split.
    pub gain_ratio: f64,
    /// Plain information gain (diagnostic).
    pub info_gain: f64,
    /// Instances routed left.
    pub left_count: usize,
    /// Instances routed right.
    pub right_count: usize,
}

/// Shannon entropy (bits) of a class-count histogram.
pub fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Finds the best C4.5 split of `data` restricted to the node rows
/// `indices`.
///
/// For each feature, up to `max_thresholds` candidate thresholds are taken
/// at evenly spaced quantiles of the node's values (midpoints between
/// adjacent distinct values, the classic C4.5 choice, subsampled for speed —
/// exact when the node has few distinct values). Quality is the gain ratio
/// `IG / SplitInfo`; candidates that fail to actually partition the node or
/// have near-zero split info are discarded.
///
/// Returns `None` when the node is pure or no feature separates it.
///
/// # Panics
/// Panics when `indices` is empty or any index is out of range.
pub fn best_split(
    data: &Dataset,
    indices: &[usize],
    max_thresholds: usize,
) -> Option<SplitCandidate> {
    assert!(!indices.is_empty(), "best_split on empty node");
    let num_classes = data.num_classes();

    // Parent entropy.
    let mut parent_counts = vec![0usize; num_classes];
    for &i in indices {
        parent_counts[data.label(i)] += 1;
    }
    let parent_entropy = entropy(&parent_counts);
    if parent_entropy == 0.0 {
        return None; // pure node
    }

    let n = indices.len();
    let mut best: Option<SplitCandidate> = None;
    let mut values: Vec<f64> = Vec::with_capacity(n);

    for feature in 0..data.dim() {
        values.clear();
        values.extend(indices.iter().map(|&i| data.instance(i)[feature]));
        let mut sorted = values.clone();
        // float: sort comparator over dataset features (expect guards NaN).
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
        sorted.dedup();
        if sorted.len() < 2 {
            continue; // constant feature at this node
        }
        // Candidate thresholds: midpoints between adjacent distinct values,
        // subsampled to at most `max_thresholds` evenly spaced picks.
        let gaps = sorted.len() - 1;
        let take = gaps.min(max_thresholds.max(1));
        for t in 0..take {
            // Evenly spaced gap index (covers all gaps when take == gaps).
            let gap = if take == gaps {
                t
            } else {
                (t * gaps) / take + gaps / (2 * take)
            };
            let threshold = 0.5 * (sorted[gap] + sorted[gap + 1]);

            let mut left = vec![0usize; num_classes];
            let mut right = vec![0usize; num_classes];
            for (&v, &i) in values.iter().zip(indices.iter()) {
                if v <= threshold {
                    left[data.label(i)] += 1;
                } else {
                    right[data.label(i)] += 1;
                }
            }
            let ln: usize = left.iter().sum();
            let rn: usize = right.iter().sum();
            if ln == 0 || rn == 0 {
                continue;
            }
            let (lp, rp) = (ln as f64 / n as f64, rn as f64 / n as f64);
            let info_gain = parent_entropy - lp * entropy(&left) - rp * entropy(&right);
            let split_info = -(lp * lp.log2() + rp * rp.log2());
            if split_info < 1e-12 {
                continue;
            }
            let gain_ratio = info_gain / split_info;
            let better = match &best {
                None => true,
                Some(b) => gain_ratio > b.gain_ratio,
            };
            if better {
                best = Some(SplitCandidate {
                    feature,
                    threshold,
                    gain_ratio,
                    info_gain,
                    left_count: ln,
                    right_count: rn,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_linalg::Vector;

    #[test]
    fn entropy_known_values() {
        assert_eq!(entropy(&[4, 0]), 0.0);
        assert!((entropy(&[2, 2]) - 1.0).abs() < 1e-12);
        assert!((entropy(&[1, 1, 1, 1]) - 2.0).abs() < 1e-12);
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[0, 0]), 0.0);
    }

    fn axis_separable() -> Dataset {
        // Class is determined by x0 <= 0.5; x1 is noise.
        Dataset::new(
            vec![
                Vector(vec![0.1, 0.9]),
                Vector(vec![0.2, 0.1]),
                Vector(vec![0.3, 0.5]),
                Vector(vec![0.7, 0.8]),
                Vector(vec![0.8, 0.2]),
                Vector(vec![0.9, 0.6]),
            ],
            vec![0, 0, 0, 1, 1, 1],
            2,
        )
        .unwrap()
    }

    #[test]
    fn finds_the_separating_feature_and_threshold() {
        let d = axis_separable();
        let idx: Vec<usize> = (0..d.len()).collect();
        let s = best_split(&d, &idx, 16).expect("split must exist");
        assert_eq!(s.feature, 0);
        assert!(
            s.threshold > 0.3 && s.threshold < 0.7,
            "threshold {}",
            s.threshold
        );
        assert_eq!(s.left_count, 3);
        assert_eq!(s.right_count, 3);
        // Perfect split: IG equals parent entropy (1 bit), split info 1 bit.
        assert!((s.info_gain - 1.0).abs() < 1e-9);
        assert!((s.gain_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pure_node_has_no_split() {
        let d = Dataset::new(vec![Vector(vec![0.0]), Vector(vec![1.0])], vec![0, 0], 2).unwrap();
        assert!(best_split(&d, &[0, 1], 8).is_none());
    }

    #[test]
    fn constant_features_have_no_split() {
        let d = Dataset::new(vec![Vector(vec![0.5]), Vector(vec![0.5])], vec![0, 1], 2).unwrap();
        assert!(best_split(&d, &[0, 1], 8).is_none());
    }

    #[test]
    fn split_respects_node_indices() {
        let d = axis_separable();
        // Restrict to a pure subset: no split.
        assert!(best_split(&d, &[0, 1, 2], 8).is_none());
        // Mixed subset still splits.
        assert!(best_split(&d, &[0, 5], 8).is_some());
    }

    #[test]
    fn threshold_subsampling_still_finds_good_split() {
        // Many distinct values; cap thresholds at 2 candidates per feature.
        let n = 50;
        let xs: Vec<Vector> = (0..n).map(|i| Vector(vec![i as f64 / n as f64])).collect();
        let ys: Vec<usize> = (0..n).map(|i| usize::from(i >= n / 2)).collect();
        let d = Dataset::new(xs, ys, 2).unwrap();
        let idx: Vec<usize> = (0..n).collect();
        let s = best_split(&d, &idx, 2).expect("split");
        // With 2 quantile candidates the threshold lands near 1/4 and 3/4;
        // gain is positive but not perfect.
        assert!(s.info_gain > 0.2);
        // With generous candidates it finds the exact midpoint.
        let s_full = best_split(&d, &idx, 64).expect("split");
        assert!(
            (s_full.threshold - 0.49).abs() < 0.03,
            "{}",
            s_full.threshold
        );
        assert!(s_full.gain_ratio >= s.gain_ratio);
    }

    #[test]
    fn gain_ratio_penalizes_lopsided_splits() {
        // Feature 0 peels off one instance (high IG per instance but poor
        // ratio); feature 1 splits evenly with the same purity.
        let d = Dataset::new(
            vec![
                Vector(vec![0.0, 0.0]),
                Vector(vec![1.0, 0.0]),
                Vector(vec![1.0, 1.0]),
                Vector(vec![1.0, 1.0]),
            ],
            vec![0, 0, 1, 1],
            2,
        )
        .unwrap();
        let idx: Vec<usize> = (0..4).collect();
        let s = best_split(&d, &idx, 8).expect("split");
        assert_eq!(s.feature, 1, "even split should win on gain ratio");
    }
}
