//! The Logistic Model Tree: C4.5 structure with logistic-regression leaves.

use crate::logistic::{LogisticConfig, LogisticRegression};
use crate::split::best_split;
use openapi_api::{GradientOracle, GroundTruthOracle, LocalLinearModel, PredictionApi, RegionId};
use openapi_data::Dataset;
use openapi_linalg::Vector;
use rand::Rng;

/// Tree construction hyperparameters (defaults follow the paper's §V).
#[derive(Debug, Clone)]
pub struct LmtConfig {
    /// Do not split nodes with fewer instances than this (paper: 100).
    pub min_leaf_instances: usize,
    /// Do not split nodes whose leaf classifier already exceeds this
    /// training accuracy (paper: 0.99).
    pub accuracy_stop: f64,
    /// Hard depth cap as a safety net against degenerate splits.
    pub max_depth: usize,
    /// Candidate thresholds evaluated per feature during split search.
    pub max_thresholds: usize,
    /// Leaf classifier training configuration.
    pub logistic: LogisticConfig,
}

impl Default for LmtConfig {
    fn default() -> Self {
        LmtConfig {
            min_leaf_instances: 100,
            accuracy_stop: 0.99,
            max_depth: 12,
            max_thresholds: 8,
            logistic: LogisticConfig::default(),
        }
    }
}

/// A node of the tree.
#[derive(Debug, Clone)]
pub(crate) enum Node {
    Internal {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
    Leaf {
        /// Dense leaf index — the region id.
        id: u64,
        model: LogisticRegression,
        /// Training instances that landed here (diagnostic).
        support: usize,
    },
}

impl Node {
    pub(crate) fn internal(feature: usize, threshold: f64, left: Node, right: Node) -> Node {
        Node::Internal {
            feature,
            threshold,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub(crate) fn leaf(id: u64, model: LogisticRegression, support: usize) -> Node {
        Node::Leaf { id, model, support }
    }
}

/// A trained Logistic Model Tree.
///
/// Implements the full oracle stack: predictions route to a leaf classifier
/// ([`PredictionApi`]); the leaf index is the region identity and the leaf
/// classifier the exact local model ([`GroundTruthOracle`]); logit gradients
/// are leaf weight columns ([`GradientOracle`]).
#[derive(Debug, Clone)]
pub struct Lmt {
    pub(crate) root: Node,
    pub(crate) dim: usize,
    pub(crate) num_classes: usize,
    pub(crate) num_leaves: u64,
    pub(crate) depth: usize,
}

impl Lmt {
    /// Trains an LMT on `data`.
    ///
    /// The recursion trains a logistic classifier at each node first, then
    /// applies the stopping rules (instance count, accuracy, depth, split
    /// availability); surviving nodes split on the best C4.5 gain-ratio
    /// pivot and recurse. All randomness (classifier batch order) flows from
    /// `rng`.
    ///
    /// # Panics
    /// Panics when `cfg` is degenerate (`min_leaf_instances == 0`).
    pub fn fit<R: Rng>(data: &Dataset, cfg: &LmtConfig, rng: &mut R) -> Self {
        assert!(
            cfg.min_leaf_instances > 0,
            "min_leaf_instances must be positive"
        );
        let indices: Vec<usize> = (0..data.len()).collect();
        let mut next_leaf = 0u64;
        let mut max_depth_seen = 0usize;
        let root = build(
            data,
            indices,
            cfg,
            rng,
            0,
            &mut next_leaf,
            &mut max_depth_seen,
        );
        Lmt {
            root,
            dim: data.dim(),
            num_classes: data.num_classes(),
            num_leaves: next_leaf,
            depth: max_depth_seen,
        }
    }

    /// Number of leaves (= locally linear regions).
    pub fn num_leaves(&self) -> u64 {
        self.num_leaves
    }

    /// Maximum leaf depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Fraction of `data` classified correctly.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        let correct = data
            .iter()
            .filter(|(x, l)| self.predict_label(x.as_slice()) == *l)
            .count();
        correct as f64 / data.len() as f64
    }

    /// Routes `x` to its leaf.
    fn leaf(&self, x: &[f64]) -> (&LogisticRegression, u64) {
        assert_eq!(x.len(), self.dim, "Lmt: input dimension mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
                Node::Leaf { id, model, .. } => return (model, *id),
            }
        }
    }

    /// Iterates `(leaf_id, support, sparsity)` diagnostics over all leaves.
    pub fn leaf_stats(&self) -> Vec<(u64, usize, f64)> {
        let mut out = Vec::new();
        collect_stats(&self.root, &mut out);
        out
    }
}

fn collect_stats(node: &Node, out: &mut Vec<(u64, usize, f64)>) {
    match node {
        Node::Internal { left, right, .. } => {
            collect_stats(left, out);
            collect_stats(right, out);
        }
        Node::Leaf { id, model, support } => out.push((*id, *support, model.sparsity())),
    }
}

#[allow(clippy::too_many_arguments)]
fn build<R: Rng>(
    data: &Dataset,
    indices: Vec<usize>,
    cfg: &LmtConfig,
    rng: &mut R,
    depth: usize,
    next_leaf: &mut u64,
    max_depth_seen: &mut usize,
) -> Node {
    let node_data = data.subset(&indices);
    let model = LogisticRegression::fit(&node_data, &cfg.logistic, rng);

    let stop = indices.len() < cfg.min_leaf_instances
        || model.accuracy(&node_data) > cfg.accuracy_stop
        || depth >= cfg.max_depth;

    if !stop {
        if let Some(split) = best_split(data, &indices, cfg.max_thresholds) {
            let (mut li, mut ri) = (Vec::new(), Vec::new());
            for &i in &indices {
                if data.instance(i)[split.feature] <= split.threshold {
                    li.push(i);
                } else {
                    ri.push(i);
                }
            }
            // best_split guarantees both sides are non-empty.
            let left = build(data, li, cfg, rng, depth + 1, next_leaf, max_depth_seen);
            let right = build(data, ri, cfg, rng, depth + 1, next_leaf, max_depth_seen);
            return Node::Internal {
                feature: split.feature,
                threshold: split.threshold,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    *max_depth_seen = (*max_depth_seen).max(depth);
    let id = *next_leaf;
    *next_leaf += 1;
    Node::Leaf {
        id,
        model,
        support: indices.len(),
    }
}

impl PredictionApi for Lmt {
    fn dim(&self) -> usize {
        self.dim
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn predict(&self, x: &[f64]) -> Vector {
        self.leaf(x).0.predict(x)
    }
}

impl GroundTruthOracle for Lmt {
    fn region_id(&self, x: &[f64]) -> RegionId {
        RegionId::from_index(self.leaf(x).1)
    }

    fn local_model(&self, x: &[f64]) -> LocalLinearModel {
        self.leaf(x).0.to_local_model()
    }
}

impl GradientOracle for Lmt {
    fn logit_gradient(&self, x: &[f64], class: usize) -> Vector {
        assert!(class < self.num_classes, "class out of range");
        self.leaf(x).0.weights().col(class)
    }

    fn prob_gradient(&self, x: &[f64], class: usize) -> Vector {
        assert!(class < self.num_classes, "class out of range");
        // One leaf lookup serves every class (the default trait impl would
        // route the tree C times).
        let (model, _) = self.leaf(x);
        let probs = model.predict(x);
        let yc = probs[class];
        let mut grad = Vector::zeros(self.dim);
        for j in 0..self.num_classes {
            let coef = yc * (if j == class { 1.0 } else { 0.0 } - probs[j]);
            if coef != 0.0 {
                grad.axpy(coef, &model.weights().col(j))
                    .expect("dimension invariant");
            }
        }
        grad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Four Gaussian blobs in the unit square corners; class = quadrant
    /// parity (an XOR layout that a single logistic model cannot fit but a
    /// depth-1..2 tree with logistic leaves can).
    fn quadrants(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let qx: usize = rng.gen_range(0..2);
            let qy: usize = rng.gen_range(0..2);
            xs.push(Vector(vec![
                qx as f64 * 0.9 + rng.gen_range(0.0..0.35),
                qy as f64 * 0.9 + rng.gen_range(0.0..0.35),
            ]));
            ys.push(qx ^ qy);
        }
        Dataset::new(xs, ys, 2).unwrap()
    }

    fn small_cfg() -> LmtConfig {
        LmtConfig {
            min_leaf_instances: 20,
            accuracy_stop: 0.99,
            max_depth: 6,
            max_thresholds: 16,
            logistic: LogisticConfig {
                epochs: 40,
                batch_size: 32,
                lr: 0.5,
                l1: 0.0,
            },
        }
    }

    #[test]
    fn lmt_beats_single_logistic_on_xor_layout() {
        let data = quadrants(400, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let single = LogisticRegression::fit(&data, &small_cfg().logistic, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(2);
        let tree = Lmt::fit(&data, &small_cfg(), &mut rng2);
        let (a_single, a_tree) = (single.accuracy(&data), tree.accuracy(&data));
        assert!(a_tree > 0.95, "tree accuracy {a_tree}");
        assert!(
            a_tree > a_single + 0.2,
            "tree {a_tree} vs logistic {a_single}"
        );
        assert!(
            tree.num_leaves() >= 2,
            "XOR layout needs at least one split"
        );
    }

    #[test]
    fn pure_easy_data_yields_single_leaf() {
        // Linearly separable data: the root classifier exceeds 99% accuracy
        // and the accuracy stopping rule fires before any split.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..200 {
            let c = i % 2;
            xs.push(Vector(vec![c as f64 * 4.0 + rng.gen_range(-0.5..0.5)]));
            ys.push(c);
        }
        let data = Dataset::new(xs, ys, 2).unwrap();
        let tree = Lmt::fit(&data, &small_cfg(), &mut rng);
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.depth(), 0);
        assert!(tree.accuracy(&data) > 0.99);
    }

    #[test]
    fn min_instances_rule_limits_growth() {
        let data = quadrants(60, 4);
        let mut cfg = small_cfg();
        cfg.min_leaf_instances = 1000; // always stop
        let mut rng = StdRng::seed_from_u64(5);
        let tree = Lmt::fit(&data, &cfg, &mut rng);
        assert_eq!(tree.num_leaves(), 1);
    }

    #[test]
    fn region_ids_are_consistent_with_routing() {
        let data = quadrants(400, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let tree = Lmt::fit(&data, &small_cfg(), &mut rng);
        assert!(tree.num_leaves() >= 2);
        // Two instances in the same leaf share a region id and local model.
        let a = [0.1, 0.1];
        let b = [0.12, 0.14];
        if tree.region_id(&a) == tree.region_id(&b) {
            assert_eq!(tree.local_model(&a), tree.local_model(&b));
        }
        // Predictions agree with the extracted local model everywhere.
        for x in [[0.1, 0.1], [0.95, 0.2], [0.2, 1.0], [1.1, 1.1]] {
            let lm = tree.local_model(&x);
            let direct = tree.predict(&x);
            let via = openapi_api::softmax(lm.logits(&x).as_slice());
            for c in 0..2 {
                assert!((direct[c] - via[c]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gradient_oracle_matches_leaf_weights() {
        let data = quadrants(300, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let tree = Lmt::fit(&data, &small_cfg(), &mut rng);
        let x = [0.2, 0.9];
        let g = tree.logit_gradient(&x, 1);
        let lm = tree.local_model(&x);
        assert_eq!(g, lm.weights.col(1));
    }

    #[test]
    fn leaf_stats_cover_all_training_instances() {
        let data = quadrants(250, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let tree = Lmt::fit(&data, &small_cfg(), &mut rng);
        let stats = tree.leaf_stats();
        assert_eq!(stats.len() as u64, tree.num_leaves());
        let support: usize = stats.iter().map(|(_, s, _)| s).sum();
        assert_eq!(support, data.len());
        // Leaf ids are dense 0..n.
        let mut ids: Vec<u64> = stats.iter().map(|(id, _, _)| *id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..tree.num_leaves()).collect::<Vec<u64>>());
    }

    #[test]
    fn depth_cap_is_respected() {
        let data = quadrants(500, 12);
        let mut cfg = small_cfg();
        cfg.max_depth = 1;
        cfg.accuracy_stop = 1.1; // never stop on accuracy
        cfg.min_leaf_instances = 2;
        let mut rng = StdRng::seed_from_u64(13);
        let tree = Lmt::fit(&data, &cfg, &mut rng);
        assert!(tree.depth() <= 1);
        assert!(tree.num_leaves() <= 2);
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let data = quadrants(150, 14);
        let run = || {
            let mut rng = StdRng::seed_from_u64(15);
            let t = Lmt::fit(&data, &small_cfg(), &mut rng);
            (t.num_leaves(), t.accuracy(&data))
        };
        assert_eq!(run(), run());
    }
}
