#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Logistic Model Trees — the second PLM family the paper interprets.
//!
//! Following the paper's experimental setup (§V, citing Landwehr et al.):
//! a decision tree whose pivot features are selected by the C4.5 gain-ratio
//! criterion, with a **sparse multinomial logistic regression** classifier at
//! every leaf, and two stopping rules — a node is not split further when it
//! holds fewer than `min_leaf_instances` training instances (paper: 100) or
//! its leaf classifier already exceeds `accuracy_stop` accuracy (paper: 99%).
//!
//! Every leaf *is* a locally linear region: the cell of the axis-aligned
//! split hyperplanes routed to that leaf, classified by the leaf's
//! `softmax(Wᵀx + b)`. Ground truth for the interpretation experiments is
//! therefore read directly off the leaf (`GroundTruthOracle`), exactly as
//! the paper extracts it.

pub mod logistic;
pub mod persist;
pub mod split;
pub mod tree;

pub use logistic::{LogisticConfig, LogisticRegression};
pub use split::{best_split, entropy, SplitCandidate};
pub use tree::{Lmt, LmtConfig};
