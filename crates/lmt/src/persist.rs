//! Binary persistence for trained Logistic Model Trees.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic  b"OALM"        4 bytes
//! version u16           currently 1
//! dim u64, num_classes u64, num_leaves u64, depth u64
//! tree, encoded pre-order:
//!   tag u8              0 = internal, 1 = leaf
//!   internal: feature u64, threshold f64, left subtree, right subtree
//!   leaf:     id u64, support u64, weights (matrix), bias (vector)
//! ```
//!
//! Decoding validates everything and additionally cross-checks the header
//! counts (leaves, dimensions, class counts) against the decoded tree — a
//! corrupted file cannot produce a structurally inconsistent `Lmt`.

use crate::logistic::LogisticRegression;
use crate::tree::{Lmt, Node};
use bytes::{Buf, BufMut};
use openapi_linalg::codec::{self, CodecError};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

const MAGIC: &[u8; 4] = b"OALM";
const VERSION: u16 = 1;
/// Sanity cap on recursion while decoding untrusted bytes.
const MAX_DECODE_DEPTH: usize = 64;

/// Errors loading a persisted tree.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Magic/version/tag/structure mismatch or truncation.
    Format(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persist io error: {e}"),
            PersistError::Format(m) => write!(f, "persist format error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<CodecError> for PersistError {
    fn from(e: CodecError) -> Self {
        PersistError::Format(e.to_string())
    }
}

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<(), PersistError> {
    if buf.remaining() < n {
        return Err(PersistError::Format(format!(
            "truncated while reading {what}: need {n}, have {}",
            buf.remaining()
        )));
    }
    Ok(())
}

fn encode_node(buf: &mut Vec<u8>, node: &Node) {
    match node {
        Node::Internal {
            feature,
            threshold,
            left,
            right,
        } => {
            buf.put_u8(0);
            codec::put_len(buf, *feature);
            buf.put_f64_le(*threshold);
            encode_node(buf, left);
            encode_node(buf, right);
        }
        Node::Leaf { id, model, support } => {
            buf.put_u8(1);
            buf.put_u64_le(*id);
            codec::put_len(buf, *support);
            codec::put_matrix(buf, model.weights());
            codec::put_vector(buf, model.bias());
        }
    }
}

struct DecodeStats {
    leaves: u64,
    max_depth: usize,
}

fn decode_node(
    buf: &mut &[u8],
    dim: usize,
    num_classes: usize,
    depth: usize,
    stats: &mut DecodeStats,
) -> Result<Node, PersistError> {
    if depth > MAX_DECODE_DEPTH {
        return Err(PersistError::Format("tree deeper than decode cap".into()));
    }
    need(buf, 1, "node tag")?;
    match buf.get_u8() {
        0 => {
            let feature = codec::get_len(buf, "split feature")?;
            if feature >= dim {
                return Err(PersistError::Format(format!(
                    "split feature {feature} out of range (dim {dim})"
                )));
            }
            need(buf, 8, "split threshold")?;
            let threshold = buf.get_f64_le();
            if !threshold.is_finite() {
                return Err(PersistError::Format("non-finite split threshold".into()));
            }
            let left = decode_node(buf, dim, num_classes, depth + 1, stats)?;
            let right = decode_node(buf, dim, num_classes, depth + 1, stats)?;
            Ok(Node::internal(feature, threshold, left, right))
        }
        1 => {
            need(buf, 8, "leaf id")?;
            let id = buf.get_u64_le();
            let support = codec::get_len(buf, "leaf support")?;
            let weights = codec::get_matrix(buf, "leaf weights")?;
            let bias = codec::get_vector(buf, "leaf bias")?;
            if weights.rows() != dim || weights.cols() != num_classes || bias.len() != num_classes {
                return Err(PersistError::Format(format!(
                    "leaf {id}: shape {}x{} / bias {} contradicts header {}x{}",
                    weights.rows(),
                    weights.cols(),
                    bias.len(),
                    dim,
                    num_classes
                )));
            }
            stats.leaves += 1;
            stats.max_depth = stats.max_depth.max(depth);
            Ok(Node::leaf(
                id,
                LogisticRegression::from_parts(weights, bias),
                support,
            ))
        }
        t => Err(PersistError::Format(format!("unknown node tag {t}"))),
    }
}

impl Lmt {
    /// Serializes the tree to its binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        codec::put_len(&mut buf, self.dim);
        codec::put_len(&mut buf, self.num_classes);
        buf.put_u64_le(self.num_leaves);
        codec::put_len(&mut buf, self.depth);
        encode_node(&mut buf, &self.root);
        buf
    }

    /// Deserializes a tree written by [`Lmt::to_bytes`].
    ///
    /// # Errors
    /// [`PersistError::Format`] on any malformed input.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, PersistError> {
        let buf = &mut data;
        need(buf, 4, "magic")?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(PersistError::Format(format!("bad magic {magic:?}")));
        }
        need(buf, 2, "version")?;
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(PersistError::Format(format!(
                "unsupported version {version}"
            )));
        }
        let dim = codec::get_len(buf, "dim")?;
        let num_classes = codec::get_len(buf, "num_classes")?;
        need(buf, 8, "num_leaves")?;
        let num_leaves = buf.get_u64_le();
        let depth = codec::get_len(buf, "depth")?;
        let mut stats = DecodeStats {
            leaves: 0,
            max_depth: 0,
        };
        let root = decode_node(buf, dim, num_classes, 0, &mut stats)?;
        if !data.is_empty() {
            return Err(PersistError::Format(format!(
                "{} trailing bytes after tree",
                data.len()
            )));
        }
        if stats.leaves != num_leaves || stats.max_depth != depth {
            return Err(PersistError::Format(format!(
                "header says {num_leaves} leaves depth {depth}, tree has {} leaves depth {}",
                stats.leaves, stats.max_depth
            )));
        }
        Ok(Lmt {
            root,
            dim,
            num_classes,
            num_leaves,
            depth,
        })
    }

    /// Writes the tree to a file.
    ///
    /// # Errors
    /// I/O errors.
    pub fn save(&self, path: &Path) -> Result<(), PersistError> {
        fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Loads a tree from a file.
    ///
    /// # Errors
    /// I/O and format errors.
    pub fn load(path: &Path) -> Result<Self, PersistError> {
        let data = fs::read(path)?;
        Self::from_bytes(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LmtConfig, LogisticConfig};
    use openapi_api::{GroundTruthOracle, PredictionApi};
    use openapi_data::Dataset;
    use openapi_linalg::Vector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn quadrants(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let qx: usize = rng.gen_range(0..2);
            let qy: usize = rng.gen_range(0..2);
            xs.push(Vector(vec![
                qx as f64 + rng.gen_range(0.0..0.4),
                qy as f64 + rng.gen_range(0.0..0.4),
            ]));
            ys.push(qx ^ qy);
        }
        Dataset::new(xs, ys, 2).unwrap()
    }

    fn sample_tree() -> Lmt {
        let data = quadrants(300, 1);
        let cfg = LmtConfig {
            min_leaf_instances: 30,
            logistic: LogisticConfig {
                epochs: 20,
                l1: 0.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        Lmt::fit(&data, &cfg, &mut rng)
    }

    #[test]
    fn round_trip_preserves_structure_and_behaviour() {
        let tree = sample_tree();
        assert!(tree.num_leaves() >= 2, "fixture should have splits");
        let back = Lmt::from_bytes(&tree.to_bytes()).unwrap();
        assert_eq!(back.num_leaves(), tree.num_leaves());
        assert_eq!(back.depth(), tree.depth());
        assert_eq!(back.dim(), tree.dim());
        // Identical predictions and regions everywhere we probe.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let x = [rng.gen_range(-0.5..2.0), rng.gen_range(-0.5..2.0)];
            assert_eq!(tree.predict(&x), back.predict(&x));
            assert_eq!(tree.region_id(&x), back.region_id(&x));
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut bytes = sample_tree().to_bytes();
        bytes[0] = b'Z';
        assert!(Lmt::from_bytes(&bytes).is_err());
        let mut bytes = sample_tree().to_bytes();
        bytes[4] = 9;
        assert!(Lmt::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = sample_tree().to_bytes();
        for cut in [0, 4, 6, 14, 30, bytes.len() / 2, bytes.len() - 1] {
            assert!(Lmt::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn header_tree_mismatch_detected() {
        let tree = sample_tree();
        let mut bytes = tree.to_bytes();
        // Corrupt the leaf count field (offset 4+2+8+8 = 22).
        bytes[22] ^= 0xff;
        assert!(matches!(
            Lmt::from_bytes(&bytes),
            Err(PersistError::Format(m)) if m.contains("leaves")
        ));
    }

    #[test]
    fn split_feature_out_of_range_detected() {
        let tree = sample_tree();
        let mut bytes = tree.to_bytes();
        // First node is internal (tag at offset 38); its feature u64 starts
        // at 39. Overwrite with an absurd feature index.
        if bytes[38] == 0 {
            bytes[39..47].copy_from_slice(&1000u64.to_le_bytes());
            assert!(Lmt::from_bytes(&bytes).is_err());
        }
    }

    #[test]
    fn save_and_load_file() {
        let dir = std::env::temp_dir().join("openapi_lmt_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tree.oalm");
        let tree = sample_tree();
        tree.save(&path).unwrap();
        let back = Lmt::load(&path).unwrap();
        assert_eq!(back.num_leaves(), tree.num_leaves());
        std::fs::remove_dir_all(&dir).ok();
    }
}
