//! Sparse multinomial logistic regression — the leaf classifier of an LMT.

use openapi_api::{softmax, LocalLinearModel, PredictionApi};
use openapi_data::Dataset;
use openapi_linalg::{Matrix, Vector};
use rand::seq::SliceRandom;
use rand::Rng;

/// Training hyperparameters for the leaf classifier.
#[derive(Debug, Clone)]
pub struct LogisticConfig {
    /// Number of passes over the node's data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f64,
    /// L1 penalty weight; applied as a proximal soft-threshold after each
    /// step, producing the *sparse* classifiers the paper trains (`> 0`
    /// zeroes out irrelevant pixels, visible in Figure 2's LMT heatmaps).
    pub l1: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        LogisticConfig {
            epochs: 30,
            batch_size: 64,
            lr: 0.5,
            l1: 1e-4,
        }
    }
}

/// Multinomial logistic regression `y = softmax(Wᵀx + b)` with
/// `W ∈ R^{d×C}` — the same orientation as [`LocalLinearModel`], so leaf
/// extraction is a clone, not a transform.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    weights: Matrix,
    bias: Vector,
}

impl LogisticRegression {
    /// A zero-initialized model (predicts uniform probabilities).
    pub fn zeros(dim: usize, num_classes: usize) -> Self {
        LogisticRegression {
            weights: Matrix::zeros(dim, num_classes),
            bias: Vector::zeros(num_classes),
        }
    }

    /// Reassembles a model from its parts (persistence, testing).
    ///
    /// # Panics
    /// Panics when `weights.cols() != bias.len()`.
    pub fn from_parts(weights: Matrix, bias: Vector) -> Self {
        assert_eq!(
            weights.cols(),
            bias.len(),
            "LogisticRegression: weights cols {} != bias len {}",
            weights.cols(),
            bias.len()
        );
        LogisticRegression { weights, bias }
    }

    /// Trains on `data` with mini-batch SGD and an L1 proximal step.
    /// Batch order comes from `rng`; a fixed seed reproduces the model.
    pub fn fit<R: Rng>(data: &Dataset, cfg: &LogisticConfig, rng: &mut R) -> Self {
        let mut model = Self::zeros(data.dim(), data.num_classes());
        let mut indices: Vec<usize> = (0..data.len()).collect();
        let c = data.num_classes();
        for _ in 0..cfg.epochs {
            indices.shuffle(rng);
            for batch in indices.chunks(cfg.batch_size.min(data.len())) {
                // Accumulate the batch gradient.
                let mut gw = Matrix::zeros(data.dim(), c);
                let mut gb = Vector::zeros(c);
                for &i in batch {
                    let x = data.instance(i);
                    let label = data.label(i);
                    let mut err = model.predict(x.as_slice());
                    err[label] -= 1.0;
                    // gw += x ⊗ errᵀ (d × C rank-1), gb += err.
                    for (r, &xv) in x.iter().enumerate() {
                        if xv != 0.0 {
                            for (g, &e) in gw.row_mut(r).iter_mut().zip(err.iter()) {
                                *g += xv * e;
                            }
                        }
                    }
                    gb.axpy(1.0, &err).expect("class count invariant");
                }
                let scale = cfg.lr / batch.len() as f64;
                for (w, &g) in model.weights.as_mut_slice().iter_mut().zip(gw.as_slice()) {
                    *w -= scale * g;
                }
                for (b, &g) in model.bias.iter_mut().zip(gb.iter()) {
                    *b -= scale * g;
                }
                // Proximal L1: soft-threshold the weights (not the bias).
                if cfg.l1 > 0.0 {
                    let tau = scale * cfg.l1 * batch.len() as f64;
                    for w in model.weights.as_mut_slice() {
                        *w = soft_threshold(*w, tau);
                    }
                }
            }
        }
        model
    }

    /// Fraction of zero weights — how sparse the L1 penalty made the model.
    pub fn sparsity(&self) -> f64 {
        let zeros = self
            .weights
            .as_slice()
            .iter()
            .filter(|w| **w == 0.0)
            .count();
        zeros as f64 / self.weights.as_slice().len() as f64
    }

    /// Fraction of `data` classified correctly.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        let correct = data
            .iter()
            .filter(|(x, l)| self.predict_label(x.as_slice()) == *l)
            .count();
        correct as f64 / data.len() as f64
    }

    /// The affine map as a [`LocalLinearModel`] (the ground truth the
    /// interpretation experiments compare against).
    pub fn to_local_model(&self) -> LocalLinearModel {
        LocalLinearModel::new(self.weights.clone(), self.bias.clone())
    }

    /// Borrow the `d × C` weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Borrow the bias vector.
    pub fn bias(&self) -> &Vector {
        &self.bias
    }
}

impl PredictionApi for LogisticRegression {
    fn dim(&self) -> usize {
        self.weights.rows()
    }

    fn num_classes(&self) -> usize {
        self.weights.cols()
    }

    fn predict(&self, x: &[f64]) -> Vector {
        let mut z = self
            .weights
            .matvec_t(x)
            .expect("LogisticRegression::predict: dimension mismatch");
        z += &self.bias;
        softmax(z.as_slice())
    }
}

#[inline]
fn soft_threshold(w: f64, tau: f64) -> f64 {
    if w > tau {
        w - tau
    } else if w < -tau {
        w + tau
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn separable(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let class = i % 3;
            let center = [(0.0, 0.0), (3.0, 0.0), (0.0, 3.0)][class];
            xs.push(Vector(vec![
                center.0 + rng.gen_range(-0.5..0.5),
                center.1 + rng.gen_range(-0.5..0.5),
            ]));
            ys.push(class);
        }
        Dataset::new(xs, ys, 3).unwrap()
    }

    #[test]
    fn zero_model_is_uniform() {
        let m = LogisticRegression::zeros(4, 5);
        let p = m.predict(&[1.0, -2.0, 0.5, 3.0]);
        for i in 0..5 {
            assert!((p[i] - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn fits_separable_three_class_data() {
        let data = separable(300, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let m = LogisticRegression::fit(&data, &LogisticConfig::default(), &mut rng);
        assert!(m.accuracy(&data) > 0.95, "accuracy {}", m.accuracy(&data));
    }

    #[test]
    fn l1_penalty_produces_sparser_weights() {
        // Add two pure-noise features; L1 should zero them out more often.
        let base = separable(200, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let noisy: Vec<Vector> = base
            .instances()
            .iter()
            .map(|x| {
                let mut v = x.clone().into_inner();
                v.push(rng.gen_range(-1.0..1.0));
                v.push(rng.gen_range(-1.0..1.0));
                Vector(v)
            })
            .collect();
        let data = Dataset::new(noisy, base.labels().to_vec(), 3).unwrap();

        let dense_cfg = LogisticConfig {
            l1: 0.0,
            ..Default::default()
        };
        let sparse_cfg = LogisticConfig {
            l1: 5e-3,
            ..Default::default()
        };
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let dense = LogisticRegression::fit(&data, &dense_cfg, &mut r1);
        let sparse = LogisticRegression::fit(&data, &sparse_cfg, &mut r2);
        assert!(sparse.sparsity() > dense.sparsity());
        assert!(
            sparse.accuracy(&data) > 0.9,
            "sparse model must stay accurate"
        );
    }

    #[test]
    fn fit_is_deterministic_per_seed() {
        let data = separable(100, 6);
        let run = || {
            let mut rng = StdRng::seed_from_u64(7);
            LogisticRegression::fit(&data, &LogisticConfig::default(), &mut rng)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn soft_threshold_behaviour() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
    }

    #[test]
    fn local_model_round_trips_predictions() {
        let data = separable(150, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let m = LogisticRegression::fit(&data, &LogisticConfig::default(), &mut rng);
        let lm = m.to_local_model();
        let x = [1.5, 0.5];
        let via_lm = softmax(lm.logits(&x).as_slice());
        assert_eq!(m.predict(&x), via_lm);
    }
}
