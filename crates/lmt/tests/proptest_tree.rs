//! Property-based tests of the LMT substrate: split math, tree routing,
//! and the leaf-equals-region oracle contract.

use openapi_api::{GroundTruthOracle, PredictionApi};
use openapi_data::Dataset;
use openapi_linalg::Vector;
use openapi_lmt::{best_split, entropy, Lmt, LmtConfig, LogisticConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a dataset from proptest-generated points/labels (2-D, 2 classes).
fn dataset_from(points: Vec<(f64, f64)>, labels: Vec<bool>) -> Dataset {
    let xs: Vec<Vector> = points.iter().map(|&(a, b)| Vector(vec![a, b])).collect();
    let ys: Vec<usize> = labels.iter().map(|&b| usize::from(b)).collect();
    Dataset::new(xs, ys, 2).expect("generated dataset is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Entropy is bounded by log2(#classes) and zero exactly for pure
    /// histograms.
    #[test]
    fn entropy_bounds(counts in prop::collection::vec(0usize..50, 2..6)) {
        let h = entropy(&counts);
        let classes = counts.iter().filter(|&&c| c > 0).count();
        prop_assert!(h >= 0.0);
        if classes <= 1 {
            prop_assert_eq!(h, 0.0);
        } else {
            prop_assert!(h <= (classes as f64).log2() + 1e-12);
        }
    }

    /// Any split returned by best_split actually partitions the node and
    /// has positive information gain.
    #[test]
    fn returned_splits_are_genuine(
        points in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 8..40),
        labels in prop::collection::vec(any::<bool>(), 8..40),
    ) {
        let n = points.len().min(labels.len());
        let data = dataset_from(points[..n].to_vec(), labels[..n].to_vec());
        let idx: Vec<usize> = (0..n).collect();
        if let Some(s) = best_split(&data, &idx, 16) {
            prop_assert!(s.left_count > 0 && s.right_count > 0);
            prop_assert_eq!(s.left_count + s.right_count, n);
            prop_assert!(s.info_gain > 0.0);
            prop_assert!(s.gain_ratio > 0.0);
            // Verify the counts by re-partitioning.
            let left = idx.iter().filter(|&&i| data.instance(i)[s.feature] <= s.threshold).count();
            prop_assert_eq!(left, s.left_count);
        }
    }

    /// Routing invariant: the region id reported for x is stable and two
    /// calls with the same x see the same leaf model.
    #[test]
    fn routing_is_deterministic(
        seed in 0u64..1000,
        probe in prop::collection::vec(-2.0f64..2.0, 2),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // A small XOR-ish training set forcing at least one split.
        let mut pts = Vec::new();
        let mut lbs = Vec::new();
        for i in 0..120 {
            let qx = (i / 2) % 2;
            let qy = i % 2;
            pts.push((
                qx as f64 + (i as f64 * 0.013) % 0.4,
                qy as f64 + (i as f64 * 0.029) % 0.4,
            ));
            lbs.push((qx ^ qy) == 1);
        }
        let data = dataset_from(pts, lbs);
        let cfg = LmtConfig {
            min_leaf_instances: 20,
            logistic: LogisticConfig { epochs: 5, ..Default::default() },
            ..Default::default()
        };
        let tree = Lmt::fit(&data, &cfg, &mut rng);
        let a = tree.region_id(&probe);
        let b = tree.region_id(&probe);
        prop_assert_eq!(a, b);
        prop_assert_eq!(tree.local_model(&probe), tree.local_model(&probe));
        // Prediction equals leaf-local-model prediction.
        let lm = tree.local_model(&probe);
        let via = openapi_api::softmax(lm.logits(&probe).as_slice());
        let direct = tree.predict(&probe);
        for c in 0..2 {
            prop_assert!((via[c] - direct[c]).abs() < 1e-12);
        }
    }

    /// Persistence round-trips arbitrary trees with identical behaviour.
    #[test]
    fn persisted_trees_predict_identically(
        seed in 0u64..1000,
        probe in prop::collection::vec(-2.0f64..2.0, 2),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        let mut lbs = Vec::new();
        for i in 0..100 {
            pts.push(((i as f64 * 0.017) % 2.0 - 1.0, (i as f64 * 0.031) % 2.0 - 1.0));
            lbs.push(i % 3 == 0);
        }
        let data = dataset_from(pts, lbs);
        let cfg = LmtConfig {
            min_leaf_instances: 25,
            logistic: LogisticConfig { epochs: 4, ..Default::default() },
            ..Default::default()
        };
        let tree = Lmt::fit(&data, &cfg, &mut rng);
        let back = Lmt::from_bytes(&tree.to_bytes()).expect("round trip");
        prop_assert_eq!(tree.predict(&probe), back.predict(&probe));
        prop_assert_eq!(tree.region_id(&probe), back.region_id(&probe));
    }
}
