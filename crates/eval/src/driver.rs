//! The batch driver: one deterministic fan-out path for every per-instance
//! experiment, plus the region-deduplicating fast path.
//!
//! Figures 3–7 all share the same skeleton — select evaluation instances,
//! pair each with its predicted class, fan the per-instance work out over
//! [`parallel_map`] with per-item seeded RNGs. [`BatchDriver`] owns that
//! skeleton so each experiment states only its per-instance kernel, and the
//! selection/seeding conventions can never drift apart between figures.
//!
//! Determinism contract: [`BatchDriver::run`] and [`BatchDriver::run_items`]
//! are thin wrappers over [`parallel_map`] with the experiment seed — for a
//! fixed seed their outputs are **bit-identical** to the inline
//! `parallel_map` calls they replaced, at any thread count.
//!
//! [`BatchDriver::run_deduped`] is the throughput path: it routes the same
//! work items through an [`openapi_core::BatchInterpreter`], which serves
//! instances of an already-solved region from cache (Theorem 2) instead of
//! re-running the `d + 1`-query sampling loop. Per-item RNG streams are
//! preserved via [`crate::parallel::item_rng`], so a miss consumes exactly
//! the stream its item would have had under `run` — but results now depend
//! on which instance of a region came first (the representative's solve is
//! served to all members), which is why the figure experiments stay on `run`
//! and the query-budget accounting and benches use this.

use crate::config::ExperimentConfig;
use crate::panel::{eval_indices, Panel};
use crate::parallel::{item_rng, parallel_map};
use openapi_api::PredictionApi;
use openapi_core::batch::{BatchInterpreter, BatchItem, BatchStats};
use openapi_core::InterpretError;
use openapi_linalg::Vector;
use rand::rngs::StdRng;

/// One evaluation work item: a test-set instance and the class to interpret.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalItem {
    /// Index into the panel's test set.
    pub index: usize,
    /// Class to interpret (the model's predicted label at the instance).
    pub class: usize,
}

/// Per-panel experiment driver (see the module docs).
#[derive(Debug)]
pub struct BatchDriver<'a> {
    panel: &'a Panel,
    seed: u64,
    indices: Vec<usize>,
    items: Vec<EvalItem>,
}

impl<'a> BatchDriver<'a> {
    /// Selects `cfg.eval_instances` instances from the panel's test set
    /// (deterministically from `cfg.seed`) and pairs each with its
    /// predicted class — the selection every figure experiment shares.
    pub fn new(panel: &'a Panel, cfg: &ExperimentConfig) -> Self {
        let indices = eval_indices(panel, cfg.eval_instances, cfg.seed);
        let classes = crate::experiments::predicted_classes(panel, &indices);
        let items = indices
            .iter()
            .zip(&classes)
            .map(|(&index, &class)| EvalItem { index, class })
            .collect();
        BatchDriver {
            panel,
            seed: cfg.seed,
            indices,
            items,
        }
    }

    /// The driven panel.
    pub fn panel(&self) -> &'a Panel {
        self.panel
    }

    /// Selected test-set indices, in selection order.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// The work items, in selection order.
    pub fn items(&self) -> &[EvalItem] {
        &self.items
    }

    /// Number of work items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no instances were selected.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The test-set instance of a work item.
    pub fn instance(&self, item: EvalItem) -> &'a Vector {
        self.panel.test.instance(item.index)
    }

    /// Fans `f(item, instance, rng)` out over the work items via
    /// [`parallel_map`]; bit-identical to the inline call it replaces.
    pub fn run<U, F>(&self, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(EvalItem, &Vector, &mut StdRng) -> U + Sync,
    {
        parallel_map(&self.items, self.seed, |_, &item, rng| {
            f(item, self.instance(item), rng)
        })
    }

    /// Fans `f` out over a custom item list (e.g. Figure 4's
    /// nearest-neighbour pairs) with the driver's seed. Signature matches
    /// [`parallel_map`] exactly, so existing kernels move over verbatim.
    pub fn run_items<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T, &mut StdRng) -> U + Sync,
    {
        parallel_map(items, self.seed, f)
    }

    /// Routes the work items through a region-deduplicating
    /// [`BatchInterpreter`] against `api` (sequential: the cache is
    /// stateful). Item `i` receives exactly the RNG stream `run` would give
    /// it, and the returned stats aggregate the whole pass.
    pub fn run_deduped<M: PredictionApi>(
        &self,
        api: &M,
        batch: &mut BatchInterpreter,
    ) -> (Vec<Result<BatchItem, InterpretError>>, BatchStats) {
        let before = batch.lifetime_stats();
        let results: Vec<Result<BatchItem, InterpretError>> = self
            .items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let mut rng = item_rng(self.seed, i);
                let one = batch.interpret_batch(
                    api,
                    std::slice::from_ref(self.instance(*item)),
                    item.class,
                    &mut rng,
                );
                one.results.into_iter().next().expect("one result per item")
            })
            .collect();
        let after = batch.lifetime_stats();
        // Items carry mixed classes, so "regions" here means the distinct
        // (class-keyed) cache entries THIS pass was served from — not the
        // interpreter's whole cache, which may hold earlier passes' entries.
        let served: std::collections::HashSet<_> = results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|item| item.fingerprint)
            .collect();
        let stats = BatchStats {
            instances: after.instances - before.instances,
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            failures: after.failures - before.failures,
            queries: after.queries - before.queries,
            regions: served.len(),
        };
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Profile;
    use crate::panel::build_lmt_panel;
    use openapi_api::GroundTruthOracle;
    use openapi_core::batch::BatchConfig;
    use openapi_core::Method;
    use openapi_data::SynthStyle;

    fn smoke_panel() -> (ExperimentConfig, Panel) {
        let cfg = ExperimentConfig::for_profile(Profile::Smoke);
        let panel = build_lmt_panel(&cfg, SynthStyle::MnistLike);
        (cfg, panel)
    }

    #[test]
    fn driver_selection_matches_the_shared_helpers() {
        let (cfg, panel) = smoke_panel();
        let driver = BatchDriver::new(&panel, &cfg);
        assert_eq!(driver.len(), cfg.eval_instances.min(panel.test.len()));
        assert!(!driver.is_empty());
        assert_eq!(
            driver.indices(),
            eval_indices(&panel, cfg.eval_instances, cfg.seed).as_slice()
        );
        for item in driver.items() {
            assert_eq!(
                item.class,
                panel
                    .model
                    .predict_label(panel.test.instance(item.index).as_slice())
            );
        }
    }

    /// The refactor's acceptance criterion: `run` must be bit-identical to
    /// the inline `parallel_map` pattern the figure experiments used before.
    #[test]
    fn run_is_bit_identical_to_inline_parallel_map() {
        let (cfg, panel) = smoke_panel();
        let driver = BatchDriver::new(&panel, &cfg);
        let method = Method::default();
        let via_driver: Vec<Option<Vector>> =
            driver.run(|item, x0, rng| method.attribution(&panel.model, x0, item.class, rng).ok());
        // The pre-refactor shape: zip indices with classes, fan out inline.
        let indices = eval_indices(&panel, cfg.eval_instances, cfg.seed);
        let classes: Vec<usize> = indices
            .iter()
            .map(|&i| panel.model.predict_label(panel.test.instance(i).as_slice()))
            .collect();
        let items: Vec<(usize, usize)> = indices
            .iter()
            .copied()
            .zip(classes.iter().copied())
            .collect();
        let inline: Vec<Option<Vector>> =
            parallel_map(&items, cfg.seed, |_, &(idx, class), rng| {
                method
                    .attribution(&panel.model, panel.test.instance(idx), class, rng)
                    .ok()
            });
        assert_eq!(via_driver, inline);
    }

    #[test]
    fn run_deduped_accounts_every_item_and_saves_queries() {
        let (cfg, panel) = smoke_panel();
        let driver = BatchDriver::new(&panel, &cfg);
        let mut batch = BatchInterpreter::new(BatchConfig::default());
        let (results, stats) = driver.run_deduped(&panel.model, &mut batch);
        assert_eq!(results.len(), driver.len());
        assert_eq!(stats.instances, driver.len());
        assert_eq!(stats.hits + stats.misses + stats.failures, driver.len());
        // Every successful item's answer matches its region's ground truth.
        for (item, result) in driver.items().iter().zip(&results) {
            if let Ok(b) = result {
                let truth = panel
                    .model
                    .local_model(driver.instance(*item).as_slice())
                    .decision_features(item.class);
                let err = b.interpretation.decision_features.l1_distance(&truth);
                assert!(err.unwrap() < 1e-6);
            }
        }
    }
}
