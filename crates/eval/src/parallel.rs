//! Deterministic data-parallel map over evaluation instances.
//!
//! The per-instance work of Figures 3–7 (interpret, alter, compare) is
//! embarrassingly parallel and models are immutable (`Sync`), so a scoped
//! crossbeam fan-out gives near-linear speedups. Determinism is preserved
//! by seeding each item's RNG from `(master seed, item index)` rather than
//! sharing a stream — results are identical at any thread count.

use rand::rngs::StdRng;

/// Applies `f(index, item, rng)` to every item, in parallel, returning
/// outputs in input order. Each invocation gets its own RNG derived from
/// `seed` and the item index.
pub fn parallel_map<T, U, F>(items: &[T], seed: u64, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T, &mut StdRng) -> U + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    parallel_map_with_threads(items, seed, threads, f)
}

/// [`parallel_map`] with an explicit worker count, so the determinism
/// contract (output independent of parallelism) is directly testable.
pub fn parallel_map_with_threads<T, U, F>(items: &[T], seed: u64, threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T, &mut StdRng) -> U + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));

    if threads <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let mut rng = item_rng(seed, i);
                f(i, item, &mut rng)
            })
            .collect();
    }

    let mut out: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    // Split the output buffer into per-item cells that workers claim via an
    // atomic cursor (work distribution without unsafe).
    let cells: Vec<openapi_sync::Mutex<&mut Option<U>>> =
        out.iter_mut().map(openapi_sync::Mutex::new).collect();
    let next = openapi_sync::atomic::AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        let (cells, next, f) = (&cells, &next, &f);
        for _ in 0..threads {
            scope.spawn(move |_| loop {
                // ordering: Relaxed — the cursor only claims indices (RMW
                // atomicity); results publish via each cell's mutex and
                // the scope join.
                let i = next.fetch_add(1, openapi_sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let mut rng = item_rng(seed, i);
                let value = f(i, &items[i], &mut rng);
                **cells[i].lock() = Some(value);
            });
        }
    })
    .expect("worker panicked");
    drop(cells);
    out.into_iter()
        .map(|v| v.expect("every item processed"))
        .collect()
}

/// Derives the per-item RNG: stable under thread-count changes. Public so
/// sequential drivers (e.g. the region-deduplicating batch path, whose cache
/// is stateful) can reproduce exactly the streams `parallel_map` would hand
/// their items. Delegates to [`openapi_core::rng::derived_rng`] — the one
/// implementation every tier (this harness, the `openapi-serve` request
/// workers) shares, so their streams can never drift apart.
pub fn item_rng(seed: u64, index: usize) -> StdRng {
    openapi_core::rng::derived_rng(seed, index as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, 7, |i, &item, _| {
            assert_eq!(i, item);
            item * 2
        });
        assert_eq!(out, (0..200).step_by(2).collect::<Vec<usize>>());
    }

    #[test]
    fn per_item_rng_is_thread_count_independent() {
        let items: Vec<u32> = vec![0; 64];
        let run = || parallel_map(&items, 99, |_, _, rng| rng.gen::<u64>());
        assert_eq!(run(), run());
        // And equals the sequential result (single item at a time).
        let seq: Vec<u64> = (0..64).map(|i| item_rng(99, i).gen::<u64>()).collect();
        assert_eq!(run(), seq);
    }

    /// Regression: the old `seed ^ index·φ` mix degenerated at index 0
    /// (`0·φ = 0`), so item 0's stream equaled `StdRng::seed_from_u64(seed)`
    /// — colliding with any direct master-seed RNG in the same experiment.
    #[test]
    fn item_zero_does_not_collide_with_the_master_seed_stream() {
        for seed in [0u64, 1, 42, 1234, u64::MAX] {
            let from_item: u64 = item_rng(seed, 0).gen();
            let from_master: u64 = StdRng::seed_from_u64(seed).gen();
            assert_ne!(
                from_item, from_master,
                "seed {seed}: item 0 must have its own stream"
            );
        }
    }

    #[test]
    fn distinct_items_get_distinct_streams() {
        let items: Vec<u32> = vec![0; 8];
        let vals = parallel_map(&items, 3, |_, _, rng| rng.gen::<u64>());
        let mut uniq = vals.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), vals.len());
    }

    /// The doc-comment contract: for a fixed seed, results are identical at
    /// any thread count (each item's RNG derives from the seed and index,
    /// never from which worker ran it).
    #[test]
    fn results_identical_across_thread_counts() {
        let items: Vec<usize> = (0..97).collect();
        let run = |threads: usize| {
            parallel_map_with_threads(&items, 1234, threads, |i, &item, rng| {
                (i, item * 3, rng.gen::<u64>(), rng.gen_range(-1.0f64..1.0))
            })
        };
        let one = run(1);
        let two = run(2);
        let eight = run(8);
        assert_eq!(one, two, "1-thread vs 2-thread results differ");
        assert_eq!(one, eight, "1-thread vs 8-thread results differ");
        // And the auto-sized entry point agrees with all of them.
        let auto = parallel_map(&items, 1234, |i, &item, rng| {
            (i, item * 3, rng.gen::<u64>(), rng.gen_range(-1.0f64..1.0))
        });
        assert_eq!(one, auto, "auto-threaded result differs");
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(&empty, 0, |_, _, _| 1).is_empty());
        let one = vec![5u8];
        assert_eq!(parallel_map(&one, 0, |_, &v, _| v + 1), vec![6]);
    }
}
