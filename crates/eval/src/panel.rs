//! Panel setup: the four dataset × model combinations of the evaluation.
//!
//! The paper evaluates on {FMNIST, MNIST} × {LMT, PLNN}. A [`Panel`] holds
//! one trained combination plus its data; [`build_panels`] constructs all
//! four deterministically from the experiment seed.

use crate::config::ExperimentConfig;
use openapi_api::{GradientOracle, GroundTruthOracle, LocalLinearModel, PredictionApi, RegionId};
use openapi_data::synth::{SynthConfig, SynthStyle};
use openapi_data::{downsample, Dataset};
use openapi_linalg::Vector;
use openapi_lmt::{Lmt, LmtConfig, LogisticConfig};
use openapi_nn::{train, Activation, Plnn, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A trained PLM of either family, with uniform oracle access.
#[derive(Debug, Clone)]
pub enum PanelModel {
    /// Piecewise linear neural network.
    Plnn(Plnn),
    /// Logistic model tree.
    Lmt(Lmt),
}

impl PanelModel {
    /// Family name as used in the paper's tables.
    pub fn family(&self) -> &'static str {
        match self {
            PanelModel::Plnn(_) => "PLNN",
            PanelModel::Lmt(_) => "LMT",
        }
    }
}

impl PredictionApi for PanelModel {
    fn dim(&self) -> usize {
        match self {
            PanelModel::Plnn(m) => m.dim(),
            PanelModel::Lmt(m) => m.dim(),
        }
    }

    fn num_classes(&self) -> usize {
        match self {
            PanelModel::Plnn(m) => m.num_classes(),
            PanelModel::Lmt(m) => m.num_classes(),
        }
    }

    fn predict(&self, x: &[f64]) -> Vector {
        match self {
            PanelModel::Plnn(m) => m.predict(x),
            PanelModel::Lmt(m) => m.predict(x),
        }
    }
}

impl GroundTruthOracle for PanelModel {
    fn region_id(&self, x: &[f64]) -> RegionId {
        match self {
            PanelModel::Plnn(m) => m.region_id(x),
            PanelModel::Lmt(m) => m.region_id(x),
        }
    }

    fn local_model(&self, x: &[f64]) -> LocalLinearModel {
        match self {
            PanelModel::Plnn(m) => m.local_model(x),
            PanelModel::Lmt(m) => m.local_model(x),
        }
    }
}

impl GradientOracle for PanelModel {
    fn logit_gradient(&self, x: &[f64], class: usize) -> Vector {
        match self {
            PanelModel::Plnn(m) => m.logit_gradient(x, class),
            PanelModel::Lmt(m) => m.logit_gradient(x, class),
        }
    }
}

/// One dataset × model evaluation panel.
#[derive(Debug, Clone)]
pub struct Panel {
    /// e.g. "synth-FMNIST (PLNN)".
    pub name: String,
    /// Template family of the dataset.
    pub style: SynthStyle,
    /// Training split.
    pub train: Dataset,
    /// Test split (experiments draw their instances from here).
    pub test: Dataset,
    /// The trained PLM.
    pub model: PanelModel,
    /// Training accuracy (for Table I).
    pub train_accuracy: f64,
    /// Test accuracy (for Table I).
    pub test_accuracy: f64,
}

fn model_accuracy(model: &PanelModel, data: &Dataset) -> f64 {
    let correct = data
        .iter()
        .filter(|(x, l)| model.predict_label(x.as_slice()) == *l)
        .count();
    correct as f64 / data.len() as f64
}

/// Generates one dataset pair at the configured scale (pooled if the
/// profile asks for reduced dimensionality).
pub fn build_dataset(cfg: &ExperimentConfig, style: SynthStyle) -> (Dataset, Dataset) {
    let synth = SynthConfig::small(
        style,
        cfg.train_size,
        cfg.test_size,
        cfg.seed ^ style_tag(style),
    );
    let (train, test) = synth.generate();
    if cfg.pool_factor > 1 {
        (
            downsample(&train, cfg.pool_factor),
            downsample(&test, cfg.pool_factor),
        )
    } else {
        (train, test)
    }
}

fn style_tag(style: SynthStyle) -> u64 {
    match style {
        SynthStyle::MnistLike => 0x6d6e,  // "mn"
        SynthStyle::FmnistLike => 0x666d, // "fm"
    }
}

/// Trains a PLNN panel on `style`'s data.
pub fn build_plnn_panel(cfg: &ExperimentConfig, style: SynthStyle) -> Panel {
    let (train_set, test_set) = build_dataset(cfg, style);
    let mut dims = vec![train_set.dim()];
    dims.extend_from_slice(&cfg.plnn_hidden);
    dims.push(train_set.num_classes());
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x504c4e4e); // "PLNN"
    let mut net = Plnn::mlp(&dims, Activation::ReLU, &mut rng);
    let train_cfg = TrainConfig {
        epochs: cfg.plnn_epochs,
        batch_size: 32,
        optimizer: openapi_nn::Optimizer::adam(3e-3),
        weight_decay: 0.0,
    };
    let _ = train(&mut net, &train_set, &train_cfg, &mut rng);
    let model = PanelModel::Plnn(net);
    let train_accuracy = model_accuracy(&model, &train_set);
    let test_accuracy = model_accuracy(&model, &test_set);
    Panel {
        name: format!("{} (PLNN)", style.name()),
        style,
        train: train_set,
        test: test_set,
        model,
        train_accuracy,
        test_accuracy,
    }
}

/// Trains an LMT panel on `style`'s data.
pub fn build_lmt_panel(cfg: &ExperimentConfig, style: SynthStyle) -> Panel {
    let (train_set, test_set) = build_dataset(cfg, style);
    let lmt_cfg = LmtConfig {
        min_leaf_instances: cfg.lmt_min_leaf,
        logistic: LogisticConfig {
            epochs: cfg.lmt_epochs,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x4c4d54); // "LMT"
    let tree = Lmt::fit(&train_set, &lmt_cfg, &mut rng);
    let model = PanelModel::Lmt(tree);
    let train_accuracy = model_accuracy(&model, &train_set);
    let test_accuracy = model_accuracy(&model, &test_set);
    Panel {
        name: format!("{} (LMT)", style.name()),
        style,
        train: train_set,
        test: test_set,
        model,
        train_accuracy,
        test_accuracy,
    }
}

/// Builds all four evaluation panels, in the paper's order:
/// FMNIST-LMT, FMNIST-PLNN, MNIST-LMT, MNIST-PLNN.
pub fn build_panels(cfg: &ExperimentConfig) -> Vec<Panel> {
    let mut panels = Vec::with_capacity(4);
    for style in [SynthStyle::FmnistLike, SynthStyle::MnistLike] {
        panels.push(build_lmt_panel(cfg, style));
        panels.push(build_plnn_panel(cfg, style));
    }
    panels
}

/// Deterministically selects `n` evaluation-instance indices from a panel's
/// test set (the paper samples 1000 uniformly).
pub fn eval_indices(panel: &Panel, n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xe7a1);
    panel.test.sample_indices(n.min(panel.test.len()), &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Profile;

    fn smoke_cfg() -> ExperimentConfig {
        ExperimentConfig::for_profile(Profile::Smoke)
    }

    #[test]
    fn plnn_panel_trains_to_reasonable_accuracy() {
        let p = build_plnn_panel(&smoke_cfg(), SynthStyle::MnistLike);
        assert!(p.train_accuracy > 0.8, "train acc {}", p.train_accuracy);
        assert!(p.test_accuracy > 0.7, "test acc {}", p.test_accuracy);
        assert_eq!(p.model.dim(), 196);
        assert_eq!(p.model.family(), "PLNN");
    }

    #[test]
    fn lmt_panel_trains_to_reasonable_accuracy() {
        let p = build_lmt_panel(&smoke_cfg(), SynthStyle::FmnistLike);
        assert!(p.train_accuracy > 0.8, "train acc {}", p.train_accuracy);
        assert!(p.test_accuracy > 0.7, "test acc {}", p.test_accuracy);
        assert_eq!(p.model.family(), "LMT");
    }

    #[test]
    fn panel_building_is_deterministic() {
        let cfg = smoke_cfg();
        let a = build_plnn_panel(&cfg, SynthStyle::MnistLike);
        let b = build_plnn_panel(&cfg, SynthStyle::MnistLike);
        assert_eq!(a.train_accuracy, b.train_accuracy);
        assert_eq!(a.test_accuracy, b.test_accuracy);
    }

    #[test]
    fn oracle_delegation_is_consistent() {
        let p = build_plnn_panel(&smoke_cfg(), SynthStyle::MnistLike);
        let x0 = p.test.instance(0);
        let lm = p.model.local_model(x0.as_slice());
        // Local model logits must reproduce the model's prediction.
        let via = openapi_api::softmax(lm.logits(x0.as_slice()).as_slice());
        let direct = p.model.predict(x0.as_slice());
        for c in 0..10 {
            assert!((via[c] - direct[c]).abs() < 1e-10);
        }
        // Region ids are self-consistent.
        assert_eq!(
            p.model.region_id(x0.as_slice()),
            p.model.region_id(x0.as_slice())
        );
    }

    #[test]
    fn eval_indices_are_deterministic_and_bounded() {
        let p = build_lmt_panel(&smoke_cfg(), SynthStyle::MnistLike);
        let a = eval_indices(&p, 10, 1);
        let b = eval_indices(&p, 10, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|&i| i < p.test.len()));
        let c = eval_indices(&p, 10_000, 1);
        assert_eq!(c.len(), p.test.len());
    }
}
