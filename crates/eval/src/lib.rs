#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Experiment harness: regenerates every table and figure of the paper.
//!
//! The `openapi-exp` binary dispatches to one module per artifact:
//!
//! | Command | Paper artifact | Module |
//! |---|---|---|
//! | `table1` | Table I (model accuracies) | [`experiments::table1`] |
//! | `fig2` | Figure 2 (decision-feature heatmaps) | [`experiments::fig2`] |
//! | `fig3` | Figure 3 (CPP / NLCI effectiveness) | [`experiments::fig3`] |
//! | `fig4` | Figure 4 (cosine-similarity consistency) | [`experiments::fig4`] |
//! | `fig5` | Figure 5 (Region Difference) | [`experiments::fig5`] |
//! | `fig6` | Figure 6 (Weight Difference) | [`experiments::fig6`] |
//! | `fig7` | Figure 7 (L1Dist exactness) | [`experiments::fig7`] |
//! | `ablation` | §IV-C design choices (solver, tolerance, shrink, degraded APIs) | [`experiments::ablation`] |
//! | `reverse` | §VI future work (reverse engineering) | [`experiments::reverse`] |
//!
//! Every experiment prints the series/rows the paper reports and writes CSV
//! into the output directory. Scale profiles (`smoke` / `quick` / `paper`)
//! trade instance counts and model sizes for runtime; the *shape* of every
//! result is profile-independent.

pub mod config;
pub mod driver;
pub mod experiments;
pub mod panel;
pub mod parallel;

pub use config::{ExperimentConfig, Profile};
pub use driver::{BatchDriver, EvalItem};
pub use panel::{build_panels, Panel, PanelModel};
