//! `openapi-exp` — regenerate any table/figure of the paper.
//!
//! ```text
//! openapi-exp <experiment> [--profile smoke|quick|paper] [--seed N] [--out DIR]
//!
//! experiments: table1 fig2 fig3 fig4 fig5 fig6 fig7 ablation reverse all
//! ```

use openapi_eval::experiments;
use openapi_eval::{build_panels, ExperimentConfig, Profile};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: openapi-exp <experiment> [--profile smoke|quick|paper] [--seed N] \
[--out DIR] [--service-clients N] [--service-store-dir DIR] [--remote ADDR]
experiments: table1 fig1 fig2 fig3 fig4 fig5 fig6 fig7 queries ablation reverse all
--service-clients N additionally drives the queries experiment through a shared
openapi-serve InterpretationService with N client threads (default 0 = off);
--service-store-dir DIR backs that service with a durable openapi-store region
store under DIR, so repeated runs re-serve solved regions (store hits are
reported in the printed stats);
--remote ADDR additionally drives the queries experiment over the openapi-net
wire protocol against an interpretation server at ADDR (N client connections,
minimum 1) — start one with: cargo run --release --example interpretation_server
-- --listen ADDR (the server must front a model of the panels' dimensionality)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(exp) = args.first().cloned() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    let mut profile = Profile::Quick;
    let mut seed: Option<u64> = None;
    let mut out: Option<PathBuf> = None;
    let mut service_clients: Option<usize> = None;
    let mut service_store_dir: Option<PathBuf> = None;
    let mut remote: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--profile" => {
                let Some(p) = args.get(i + 1).and_then(|v| Profile::parse(v)) else {
                    eprintln!("bad --profile value\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                profile = p;
                i += 2;
            }
            "--seed" => {
                let Some(s) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    eprintln!("bad --seed value\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                seed = Some(s);
                i += 2;
            }
            "--out" => {
                let Some(dir) = args.get(i + 1) else {
                    eprintln!("bad --out value\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                out = Some(PathBuf::from(dir));
                i += 2;
            }
            "--service-clients" => {
                let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    eprintln!("bad --service-clients value\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                service_clients = Some(n);
                i += 2;
            }
            "--service-store-dir" => {
                let Some(dir) = args.get(i + 1) else {
                    eprintln!("bad --service-store-dir value\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                service_store_dir = Some(PathBuf::from(dir));
                i += 2;
            }
            "--remote" => {
                let Some(addr) = args.get(i + 1) else {
                    eprintln!("bad --remote value\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                remote = Some(addr.clone());
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut cfg = ExperimentConfig::for_profile(profile);
    if let Some(s) = seed {
        cfg.seed = s;
    }
    if let Some(dir) = out {
        cfg.out_dir = dir;
    }
    if let Some(n) = service_clients {
        cfg.service_clients = n;
    }
    if let Some(dir) = service_store_dir {
        cfg.service_store_dir = Some(dir);
    }
    if let Some(addr) = remote {
        cfg.remote = Some(addr);
    }

    println!(
        "openapi-exp: experiment={exp} profile={profile:?} seed={} d={} out={}",
        cfg.seed,
        cfg.dim(),
        cfg.out_dir.display()
    );
    println!(
        "building panels (train={}, test={})…",
        cfg.train_size, cfg.test_size
    );
    let t0 = std::time::Instant::now();
    let panels = build_panels(&cfg);
    for p in &panels {
        println!(
            "  {}: train acc {:.3}, test acc {:.3}",
            p.name, p.train_accuracy, p.test_accuracy
        );
    }
    println!("panels ready in {:.1}s\n", t0.elapsed().as_secs_f64());

    let result = match exp.as_str() {
        "table1" => experiments::table1::run(&cfg, &panels),
        "fig1" => experiments::fig1::run(&cfg, &panels),
        "fig2" => experiments::fig2::run(&cfg, &panels),
        "fig3" => experiments::fig3::run(&cfg, &panels),
        "fig4" => experiments::fig4::run(&cfg, &panels),
        "fig5" => experiments::fig5::run(&cfg, &panels),
        "fig6" => experiments::fig6::run(&cfg, &panels),
        "fig7" => experiments::fig7::run(&cfg, &panels),
        "queries" => experiments::queries::run(&cfg, &panels),
        "ablation" => experiments::ablation::run(&cfg, &panels),
        "reverse" => experiments::reverse::run(&cfg, &panels),
        "all" => experiments::table1::run(&cfg, &panels)
            .and_then(|_| experiments::fig2::run(&cfg, &panels))
            .and_then(|_| experiments::fig3::run(&cfg, &panels))
            .and_then(|_| experiments::fig4::run(&cfg, &panels))
            .and_then(|_| experiments::fig5::run(&cfg, &panels))
            .and_then(|_| experiments::fig6::run(&cfg, &panels))
            .and_then(|_| experiments::fig7::run(&cfg, &panels))
            .and_then(|_| experiments::fig1::run(&cfg, &panels))
            .and_then(|_| experiments::queries::run(&cfg, &panels))
            .and_then(|_| experiments::ablation::run(&cfg, &panels))
            .and_then(|_| experiments::reverse::run(&cfg, &panels)),
        other => {
            eprintln!("unknown experiment {other}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    match result {
        Ok(()) => {
            println!("done in {:.1}s total", t0.elapsed().as_secs_f64());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            ExitCode::FAILURE
        }
    }
}
