//! One module per paper artifact; see the crate docs for the mapping.

pub mod ablation;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod queries;
pub mod reverse;
pub mod table1;

use crate::config::ExperimentConfig;
use crate::panel::Panel;
use openapi_api::PredictionApi;

/// Convenience used by several experiments: the predicted class of each
/// selected evaluation instance.
pub(crate) fn predicted_classes(panel: &Panel, indices: &[usize]) -> Vec<usize> {
    indices
        .iter()
        .map(|&i| panel.model.predict_label(panel.test.instance(i).as_slice()))
        .collect()
}

/// Output-path helper: `<out_dir>/<file>` with the directory created.
pub(crate) fn out_path(cfg: &ExperimentConfig, file: &str) -> std::path::PathBuf {
    std::fs::create_dir_all(&cfg.out_dir).ok();
    cfg.out_dir.join(file)
}
