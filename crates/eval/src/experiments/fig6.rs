//! Figure 6: sample quality — Weight Difference (min/mean/max error bars)
//! of each method's sample set against the interpreted instance's true core
//! parameters.

use crate::config::ExperimentConfig;
use crate::driver::BatchDriver;
use crate::experiments::out_path;
use crate::panel::Panel;
use openapi_core::Method;
use openapi_linalg::Summary;
use openapi_metrics::report::{write_csv, Table};
use openapi_metrics::weight_difference;

/// Runs the WD experiment; prints min/mean/max per method and writes
/// `fig6_weight_diff.csv`.
///
/// # Errors
/// I/O errors writing the CSV.
pub fn run(cfg: &ExperimentConfig, panels: &[Panel]) -> std::io::Result<()> {
    let methods = Method::quality_lineup();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();

    for panel in panels {
        let driver = BatchDriver::new(panel, cfg);
        let mut table = Table::new(
            format!("Figure 6 — {} (Weight Difference min/mean/max)", panel.name),
            &["method", "min", "mean", "max"],
        );
        for method in &methods {
            let wds: Vec<f64> = driver.run(|item, x0, rng| {
                match openapi_metrics::samples::method_samples(
                    method,
                    &panel.model,
                    x0,
                    item.class,
                    rng,
                ) {
                    Some(samples) => weight_difference(&panel.model, x0, item.class, &samples),
                    None => f64::NAN, // OpenAPI budget exhaustion: excluded
                }
            });
            let summary = Summary::from_iter(wds.iter().copied());
            table.push_row(vec![
                method.name(),
                fmt_opt(summary.min()),
                fmt_opt(summary.mean()),
                fmt_opt(summary.max()),
            ]);
            csv_rows.push(vec![
                panel.name.clone(),
                method.name(),
                fmt_opt(summary.min()),
                fmt_opt(summary.mean()),
                fmt_opt(summary.max()),
                summary.non_finite().to_string(),
            ]);
        }
        println!("{}", table.render());
    }
    write_csv(
        &out_path(cfg, "fig6_weight_diff.csv"),
        &["panel", "method", "min_wd", "mean_wd", "max_wd", "failures"],
        &csv_rows,
    )
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.4e}"))
        .unwrap_or_else(|| "—".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Profile;
    use crate::panel::build_plnn_panel;
    use openapi_data::SynthStyle;

    #[test]
    fn openapi_wd_is_near_zero_and_far_below_large_h_baselines() {
        // Figure 6's claim: OpenAPI's accepted sample sets essentially never
        // leave the interpreted region, unlike fixed large-h baselines. The
        // mean WD is *typically* exactly 0 but not guaranteed to be: the
        // consistency check runs at a finite rtol (1e-6), so a sample that
        // crosses a ReLU hinge by less than the tolerance can be accepted —
        // the recovered interpretation is still exact to tolerance, but the
        // oracle-region WD metric jumps by a full cross-region weight
        // difference for that one sample (~1/(d+1) of its magnitude). Assert
        // the qualitative shape instead of a seed-lucky exact zero.
        let mut cfg = ExperimentConfig::for_profile(Profile::Smoke);
        cfg.eval_instances = 3;
        cfg.out_dir = std::env::temp_dir().join("openapi_fig6_test");
        let panel = build_plnn_panel(&cfg, SynthStyle::FmnistLike);
        run(&cfg, &[panel]).unwrap();
        let csv = std::fs::read_to_string(cfg.out_dir.join("fig6_weight_diff.csv")).unwrap();
        let mean_of = |tag: &str| -> f64 {
            csv.lines()
                .find(|l| l.contains(tag))
                .and_then(|l| l.split(',').nth(3))
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(f64::NAN)
        };
        let oa = mean_of("OpenAPI");
        let lime_large_h = mean_of("L(1e-2)");
        assert!(oa.is_finite() && oa >= 0.0, "{csv}");
        assert!(oa < 0.2, "OpenAPI mean WD must be near zero, got {oa}");
        assert!(
            lime_large_h > oa * 20.0 && lime_large_h > 1.0,
            "large-h LIME must be far worse: {lime_large_h} vs {oa}"
        );
        std::fs::remove_dir_all(&cfg.out_dir).ok();
    }
}
