//! Figure 6: sample quality — Weight Difference (min/mean/max error bars)
//! of each method's sample set against the interpreted instance's true core
//! parameters.

use crate::config::ExperimentConfig;
use crate::experiments::{out_path, predicted_classes};
use crate::panel::{eval_indices, Panel};
use crate::parallel::parallel_map;
use openapi_core::Method;
use openapi_linalg::Summary;
use openapi_metrics::report::{write_csv, Table};
use openapi_metrics::weight_difference;

/// Runs the WD experiment; prints min/mean/max per method and writes
/// `fig6_weight_diff.csv`.
///
/// # Errors
/// I/O errors writing the CSV.
pub fn run(cfg: &ExperimentConfig, panels: &[Panel]) -> std::io::Result<()> {
    let methods = Method::quality_lineup();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();

    for panel in panels {
        let indices = eval_indices(panel, cfg.eval_instances, cfg.seed);
        let classes = predicted_classes(panel, &indices);
        let mut table = Table::new(
            format!("Figure 6 — {} (Weight Difference min/mean/max)", panel.name),
            &["method", "min", "mean", "max"],
        );
        for method in &methods {
            let items: Vec<(usize, usize)> = indices
                .iter()
                .copied()
                .zip(classes.iter().copied())
                .collect();
            let wds: Vec<f64> = parallel_map(&items, cfg.seed, |_, &(idx, class), rng| {
                let x0 = panel.test.instance(idx);
                match openapi_metrics::samples::method_samples(method, &panel.model, x0, class, rng)
                {
                    Some(samples) => weight_difference(&panel.model, x0, class, &samples),
                    None => f64::NAN, // OpenAPI budget exhaustion: excluded
                }
            });
            let summary = Summary::from_iter(wds.iter().copied());
            table.push_row(vec![
                method.name(),
                fmt_opt(summary.min()),
                fmt_opt(summary.mean()),
                fmt_opt(summary.max()),
            ]);
            csv_rows.push(vec![
                panel.name.clone(),
                method.name(),
                fmt_opt(summary.min()),
                fmt_opt(summary.mean()),
                fmt_opt(summary.max()),
                summary.non_finite().to_string(),
            ]);
        }
        println!("{}", table.render());
    }
    write_csv(
        &out_path(cfg, "fig6_weight_diff.csv"),
        &["panel", "method", "min_wd", "mean_wd", "max_wd", "failures"],
        &csv_rows,
    )
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.4e}"))
        .unwrap_or_else(|| "—".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Profile;
    use crate::panel::build_plnn_panel;
    use openapi_data::SynthStyle;

    #[test]
    fn openapi_wd_is_zero() {
        let mut cfg = ExperimentConfig::for_profile(Profile::Smoke);
        cfg.eval_instances = 3;
        cfg.out_dir = std::env::temp_dir().join("openapi_fig6_test");
        let panel = build_plnn_panel(&cfg, SynthStyle::FmnistLike);
        run(&cfg, &[panel]).unwrap();
        let csv = std::fs::read_to_string(cfg.out_dir.join("fig6_weight_diff.csv")).unwrap();
        let oa = csv.lines().find(|l| l.contains("OpenAPI")).unwrap();
        // mean WD field is exactly zero.
        let mean = oa.split(',').nth(3).unwrap();
        assert!(mean.starts_with("0.0000e0"), "{oa}");
        std::fs::remove_dir_all(&cfg.out_dir).ok();
    }
}
