//! Query-budget accounting: what each interpretation costs at the API.
//!
//! The paper notes OpenAPI's complexity `O(T · C (d+2)³)` with `T` the
//! number of shrink iterations; this experiment measures the *billable*
//! side of every black-box method — prediction queries per interpretation —
//! which is what a real cloud deployment meters. Gradient methods are free
//! at the API (they bill parameter access instead) and are omitted.

use crate::config::ExperimentConfig;
use crate::driver::BatchDriver;
use crate::experiments::{out_path, predicted_classes};
use crate::panel::{eval_indices, Panel};
use openapi_api::CountingApi;
use openapi_core::batch::{BatchConfig, BatchInterpreter};
use openapi_core::Method;
use openapi_linalg::Summary;
use openapi_metrics::report::{write_csv, Table};
use openapi_serve::{InterpretationService, ServiceConfig, StatsSnapshot};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the accounting on every panel; prints queries min/mean/max per
/// method and writes `queries_budget.csv`.
///
/// # Errors
/// I/O errors writing the CSV.
pub fn run(cfg: &ExperimentConfig, panels: &[Panel]) -> std::io::Result<()> {
    let methods: Vec<Method> = Method::quality_lineup()
        .into_iter()
        .filter(|m| m.is_black_box())
        .collect();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();

    for panel in panels {
        let indices = eval_indices(panel, cfg.eval_instances.min(8), cfg.seed);
        let classes = predicted_classes(panel, &indices);
        let mut table = Table::new(
            format!(
                "Query budget — {} (prediction queries per interpretation)",
                panel.name
            ),
            &["method", "min", "mean", "max"],
        );
        for method in &methods {
            let mut summary = Summary::new();
            let api = CountingApi::new(&panel.model);
            for (&idx, &class) in indices.iter().zip(classes.iter()) {
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ idx as u64);
                api.reset();
                let _ = method.attribution(&api, panel.test.instance(idx), class, &mut rng);
                summary.push(api.queries() as f64);
            }
            let fmt = |v: Option<f64>| v.map(|x| format!("{x:.0}")).unwrap_or_default();
            table.push_row(vec![
                method.name(),
                fmt(summary.min()),
                fmt(summary.mean()),
                fmt(summary.max()),
            ]);
            csv_rows.push(vec![
                panel.name.clone(),
                method.name(),
                fmt(summary.min()),
                fmt(summary.mean()),
                fmt(summary.max()),
            ]);
        }
        println!("{}", table.render());

        // The region-deduplicating batch layer on the same instances: one
        // membership probe per cache hit instead of a full Algorithm 1 run.
        let mut batch_cfg = cfg.clone();
        batch_cfg.eval_instances = cfg.eval_instances.min(8);
        let driver = BatchDriver::new(panel, &batch_cfg);
        let mut batch = BatchInterpreter::new(BatchConfig::default());
        let (_, stats) = driver.run_deduped(&panel.model, &mut batch);
        println!(
            "OpenAPI batched over the same {} instances: {} hits / {} misses \
             across {} regions, {} queries total ({} failures)\n",
            stats.instances, stats.hits, stats.misses, stats.regions, stats.queries, stats.failures
        );

        // Opt-in concurrent path: the same work items through a shared
        // `openapi-serve` service hammered by `service_clients` threads.
        if cfg.service_clients > 0 {
            let service_stats = run_service(cfg, &driver);
            println!(
                "OpenAPI served concurrently ({} client threads):\n{service_stats}\n",
                cfg.service_clients
            );
        }

        // Opt-in wire path: the same work items again, but through
        // `openapi-net` client connections against a remote server.
        if let Some(addr) = &cfg.remote {
            match run_remote(cfg, &driver, addr) {
                Ok(report) => println!("{report}\n"),
                Err(e) => eprintln!("remote leg against {addr} failed: {e}\n"),
            }
        }
    }
    write_csv(
        &out_path(cfg, "queries_budget.csv"),
        &[
            "panel",
            "method",
            "min_queries",
            "mean_queries",
            "max_queries",
        ],
        &csv_rows,
    )
}

/// The opt-in concurrent-service path: every client thread submits the
/// driver's full work-item list to one shared [`InterpretationService`]
/// (mirroring many users asking about the same traffic), waits for all
/// tickets, and the aggregate statistics are returned for reporting. The
/// shared cache + coalescing mean the whole fleet pays for each region's
/// Algorithm-1 solve at most once — this experiment accounts query
/// budgets, so the leader pool is pinned to 1 (strictly minimal spend;
/// cold-start latency is the bench suite's concern). With
/// `cfg.service_store_dir` set, the service is backed by a durable
/// `openapi-store` region store, and a repeated run re-serves previously
/// solved regions as store hits (visible in the returned stats).
fn run_service(cfg: &ExperimentConfig, driver: &BatchDriver<'_>) -> StatsSnapshot {
    let api = CountingApi::new(driver.panel().model.clone());
    let config = ServiceConfig {
        workers: cfg.service_clients,
        seed: cfg.seed,
        max_leaders_per_class: 1,
        ..ServiceConfig::default()
    };
    let service = match &cfg.service_store_dir {
        Some(dir) => InterpretationService::open(api, config, dir)
            .expect("service store directory must open"),
        None => InterpretationService::new(api, config),
    };
    std::thread::scope(|scope| {
        for _ in 0..cfg.service_clients {
            let service = &service;
            scope.spawn(move || {
                let tickets: Vec<_> = driver
                    .items()
                    .iter()
                    .map(|item| service.submit_instance(driver.instance(*item).clone(), item.class))
                    .collect();
                for ticket in tickets {
                    // Failures are tolerated here (they are counted in the
                    // stats); the experiment reports, not asserts.
                    let _ = ticket.wait();
                }
            });
        }
    });
    let stats = service.stats();
    if let Err(e) = service.close() {
        eprintln!("warning: service store close failed: {e}");
    }
    stats
}

/// The opt-in wire path: `service_clients.max(1)` threads, each with its
/// own [`openapi_net::Client`] connection to `addr`, submit the driver's
/// full work-item list over the wire; afterwards one connection fetches
/// the server's statistics. Per-item failures (e.g. a server fronting a
/// model of a different dimensionality) are counted, not fatal — the
/// experiment reports, it does not assert. Only a failed connect/handshake
/// aborts the leg.
fn run_remote(
    cfg: &ExperimentConfig,
    driver: &BatchDriver<'_>,
    addr: &str,
) -> Result<String, openapi_net::ClientError> {
    use openapi_sync::atomic::{AtomicU64, Ordering};

    let clients = cfg.service_clients.max(1);
    // Fail fast (before spawning a fleet) if nobody is listening.
    let mut observer = openapi_net::Client::connect(addr)?;
    let rtt = observer.ping()?;
    let (ok, failed) = (AtomicU64::new(0), AtomicU64::new(0));
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let (ok, failed) = (&ok, &failed);
            scope.spawn(move || {
                let Ok(mut client) = openapi_net::Client::connect(addr) else {
                    // ordering: Relaxed — tally counters; the scope join
                    // publishes them before the final loads.
                    failed.fetch_add(driver.items().len() as u64, Ordering::Relaxed);
                    return;
                };
                for item in driver.items() {
                    match client.interpret(driver.instance(*item), item.class) {
                        // ordering: Relaxed — tallies, as above.
                        Ok(_) => ok.fetch_add(1, Ordering::Relaxed),
                        Err(_) => failed.fetch_add(1, Ordering::Relaxed),
                    };
                }
            });
        }
    });
    let stats = observer.stats()?;
    Ok(format!(
        "OpenAPI served over the wire ({clients} connections to {addr}, rtt {rtt:?}): \
         {} ok / {} failed\nserver-side stats:\n{stats}",
        // ordering: Relaxed — the thread-scope join above already ordered
        // every tally before these loads.
        ok.load(Ordering::Relaxed),
        failed.load(Ordering::Relaxed),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Profile;
    use crate::panel::build_lmt_panel;
    use openapi_data::SynthStyle;

    #[test]
    fn service_path_shares_solves_across_clients() {
        let mut cfg = ExperimentConfig::for_profile(Profile::Smoke);
        cfg.eval_instances = 3;
        cfg.service_clients = 3;
        let panel = build_lmt_panel(&cfg, SynthStyle::MnistLike);
        let driver = BatchDriver::new(&panel, &cfg);
        let stats = run_service(&cfg, &driver);
        // 3 clients × 3 items each, every request accounted for exactly once.
        assert_eq!(stats.requests, 9);
        assert_eq!(
            stats.hits + stats.store_hits + stats.misses + stats.coalesced_served + stats.failures,
            stats.requests
        );
        assert!(stats.store.is_none(), "no store dir configured");
        // The fleet shares the cache: at most one solve per distinct item,
        // never one per client.
        assert!(stats.misses <= 3, "misses {}", stats.misses);

        // Store-backed repeat on the same panel: the first run fills the
        // durable store, the second re-serves from it without a single
        // additional Algorithm-1 solve.
        let dir =
            std::env::temp_dir().join(format!("openapi_queries_store_{}", std::process::id()));
        cfg.service_store_dir = Some(dir.clone());
        let first = run_service(&cfg, &driver);
        assert!(first.misses >= 1, "cold run must solve");
        assert_eq!(first.store.as_ref().unwrap().appends, first.misses);
        let second = run_service(&cfg, &driver);
        assert_eq!(second.misses, 0, "warm store run must not re-solve");
        assert!(second.store_hits >= 1, "store hits must be reported");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remote_path_drives_items_over_the_wire() {
        let mut cfg = ExperimentConfig::for_profile(Profile::Smoke);
        cfg.eval_instances = 2;
        cfg.service_clients = 2;
        let panel = build_lmt_panel(&cfg, SynthStyle::MnistLike);
        let driver = BatchDriver::new(&panel, &cfg);

        // An in-process server over the same panel model, on an ephemeral
        // port — exactly what `interpretation_server --listen` would host.
        let service = openapi_serve::InterpretationService::new(
            CountingApi::new(panel.model.clone()),
            ServiceConfig {
                workers: 2,
                seed: cfg.seed,
                max_leaders_per_class: 1,
                ..ServiceConfig::default()
            },
        );
        let server =
            openapi_net::Server::bind("127.0.0.1:0", service, openapi_net::ServerConfig::default())
                .unwrap();
        cfg.remote = Some(server.local_addr().to_string());

        let report = run_remote(&cfg, &driver, cfg.remote.as_ref().unwrap()).unwrap();
        assert!(report.contains("2 connections"), "{report}");
        // 2 connections × 2 items, all served, none failed.
        assert!(report.contains("4 ok / 0 failed"), "{report}");
        let stats = server.service().stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.failures, 0);
        // The fleet shares the server's cache: at most one solve per
        // distinct item, never one per connection.
        assert!(stats.misses <= 2, "misses {}", stats.misses);
        server.close().unwrap();

        // Nobody listening: the leg reports a typed error instead of
        // wedging the experiment.
        assert!(run_remote(&cfg, &driver, cfg.remote.as_ref().unwrap()).is_err());
    }

    #[test]
    fn query_counts_match_method_formulas() {
        let mut cfg = ExperimentConfig::for_profile(Profile::Smoke);
        cfg.eval_instances = 2;
        cfg.out_dir = std::env::temp_dir().join("openapi_queries_test");
        let panel = build_lmt_panel(&cfg, SynthStyle::MnistLike);
        run(&cfg, &[panel]).unwrap();
        let csv = std::fs::read_to_string(cfg.out_dir.join("queries_budget.csv")).unwrap();
        // ZOO costs exactly 2d + 1 = 393 queries at d = 196.
        let zoo = csv.lines().find(|l| l.contains("Z(1e-4)")).unwrap();
        assert!(zoo.contains("393"), "{zoo}");
        // The naive method costs exactly d + 1 = 197.
        let naive = csv.lines().find(|l| l.contains("N(1e-4)")).unwrap();
        assert!(naive.contains("197"), "{naive}");
        std::fs::remove_dir_all(&cfg.out_dir).ok();
    }
}
