//! Figure 1 demo: the interior-vs-boundary geometry that motivates OpenAPI.
//!
//! The paper's Figure 1 contrasts instance `A` (neighbourhood inside one
//! locally linear region — any method works) with instance `B`
//! (neighbourhood straddling a boundary — fixed-distance methods silently
//! fail). This experiment realizes that picture measurably: it selects test
//! instances, estimates each one's consistent-region extent with
//! [`openapi_core::region::estimate_region_edge`], and shows the naive
//! method's error exploding exactly for the instances whose region is
//! smaller than its fixed `h` — while OpenAPI stays exact on both.

use crate::config::ExperimentConfig;
use crate::experiments::{out_path, predicted_classes};
use crate::panel::{eval_indices, Panel};
use crate::parallel::parallel_map;
use openapi_core::region::estimate_region_edge;
use openapi_core::{NaiveConfig, NaiveInterpreter, OpenApiConfig, OpenApiInterpreter};
use openapi_metrics::exactness::{ground_truth_features, l1_dist};
use openapi_metrics::report::{write_csv, Table};

/// Runs the demo on the first PLNN panel (the family with narrow regions).
///
/// # Errors
/// I/O errors writing the CSV.
///
/// # Panics
/// Panics when no PLNN panel is supplied.
pub fn run(cfg: &ExperimentConfig, panels: &[Panel]) -> std::io::Result<()> {
    let panel = panels
        .iter()
        .find(|p| p.model.family() == "PLNN")
        .expect("fig1 demo needs a PLNN panel");
    let indices = eval_indices(panel, cfg.eval_instances.min(8), cfg.seed);
    let classes = predicted_classes(panel, &indices);
    let items: Vec<(usize, usize)> = indices
        .iter()
        .copied()
        .zip(classes.iter().copied())
        .collect();

    let naive_h = 1e-1;
    let naive = NaiveInterpreter::new(NaiveConfig::with_edge(naive_h));
    let openapi = OpenApiInterpreter::new(OpenApiConfig::default());

    let rows: Vec<Vec<String>> = parallel_map(&items, cfg.seed, |i, &(idx, class), rng| {
        let x0 = panel.test.instance(idx);
        let truth = ground_truth_features(&panel.model, x0, class);
        let bracket =
            estimate_region_edge(&panel.model, x0, class, &OpenApiConfig::default(), 8.0, rng).ok();
        let region_edge = bracket
            .as_ref()
            .map(|b| match b.inconsistent_edge {
                Some(u) => format!("[{:.1e}, {:.1e})", b.consistent_edge, u),
                None => format!(">= {:.1e}", b.consistent_edge),
            })
            .unwrap_or_else(|| "?".to_string());
        let naive_err = naive
            .interpret(&panel.model, x0, class, rng)
            .map(|i| format!("{:.2e}", l1_dist(&truth, &i.decision_features)))
            .unwrap_or_else(|_| "fail".to_string());
        let oa_err = openapi
            .interpret(&panel.model, x0, class, rng)
            .map(|r| {
                format!(
                    "{:.2e}",
                    l1_dist(&truth, &r.interpretation.decision_features)
                )
            })
            .unwrap_or_else(|_| "fail".to_string());
        vec![format!("#{i}"), region_edge, naive_err, oa_err]
    });

    let mut table = Table::new(
        format!(
            "Figure 1 demo — {} (naive h = {naive_h}; regions narrower than h break it)",
            panel.name
        ),
        &[
            "instance",
            "region edge bracket",
            "naive L1Dist",
            "OpenAPI L1Dist",
        ],
    );
    for row in &rows {
        table.push_row(row.clone());
    }
    println!("{}", table.render());
    println!(
        "reading: instances whose region bracket sits below h = {naive_h} are the\n\
         paper's 'instance B' — the naive method mixes regions there and errs by\n\
         orders of magnitude; OpenAPI's adaptive shrinking stays exact on all rows.\n"
    );
    write_csv(
        &out_path(cfg, "fig1_boundary_demo.csv"),
        &["instance", "region_edge_bracket", "naive_l1", "openapi_l1"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Profile;
    use crate::panel::build_plnn_panel;
    use openapi_data::SynthStyle;

    #[test]
    fn demo_runs_and_reports_brackets() {
        let mut cfg = ExperimentConfig::for_profile(Profile::Smoke);
        cfg.eval_instances = 2;
        cfg.out_dir = std::env::temp_dir().join("openapi_fig1_test");
        let panel = build_plnn_panel(&cfg, SynthStyle::MnistLike);
        run(&cfg, &[panel]).unwrap();
        let csv = std::fs::read_to_string(cfg.out_dir.join("fig1_boundary_demo.csv")).unwrap();
        assert_eq!(csv.lines().count(), 3);
        std::fs::remove_dir_all(&cfg.out_dir).ok();
    }
}
