//! Figure 4: consistency — cosine similarity between the interpretation of
//! each instance and that of its nearest test-set neighbour, sorted
//! descending.

use crate::config::ExperimentConfig;
use crate::driver::BatchDriver;
use crate::experiments::out_path;
use crate::panel::Panel;
use openapi_core::Method;
use openapi_data::knn::all_nearest_neighbors;
use openapi_metrics::consistency::{mean_similarity, sorted_similarity_series};
use openapi_metrics::report::{write_csv, Table};

/// Runs the consistency experiment; prints mean CS per method and writes
/// the sorted per-instance series to `fig4_consistency.csv`.
///
/// # Errors
/// I/O errors writing the CSV.
pub fn run(cfg: &ExperimentConfig, panels: &[Panel]) -> std::io::Result<()> {
    let methods = Method::effectiveness_lineup();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();

    for panel in panels {
        let driver = BatchDriver::new(panel, cfg);
        let indices = driver.indices();
        // Nearest neighbours within the sampled subset (the paper's 1000
        // sampled instances play both roles).
        let subset = panel.test.subset(indices);
        let nns = all_nearest_neighbors(&subset, &subset, true);

        let mut table = Table::new(
            format!(
                "Figure 4 — {} (cosine similarity to nearest neighbour)",
                panel.name
            ),
            &["method", "mean CS", "median CS", "min CS"],
        );
        for method in &methods {
            let items: Vec<(usize, usize, usize)> = driver
                .items()
                .iter()
                .enumerate()
                .map(|(i, item)| (item.index, indices[nns[i]], item.class))
                .collect();
            let sims: Vec<f64> = driver.run_items(&items, |_, &(a, b, class), rng| {
                let xa = panel.test.instance(a);
                let xb = panel.test.instance(b);
                let fa = method.attribution(&panel.model, xa, class, rng);
                let fb = method.attribution(&panel.model, xb, class, rng);
                match (fa, fb) {
                    (Ok(fa), Ok(fb)) => fa.cosine_similarity(&fb).unwrap_or(f64::NAN),
                    _ => f64::NAN,
                }
            });
            let series = sorted_similarity_series(&sims);
            let finite: Vec<f64> = series.iter().copied().filter(|v| v.is_finite()).collect();
            let median = if finite.is_empty() {
                f64::NAN
            } else {
                finite[finite.len() / 2]
            };
            let min = finite.last().copied().unwrap_or(f64::NAN);
            table.push_row(vec![
                method.name(),
                format!("{:.4}", mean_similarity(&sims)),
                format!("{median:.4}"),
                format!("{min:.4}"),
            ]);
            for (rank, cs) in series.iter().enumerate() {
                csv_rows.push(vec![
                    panel.name.clone(),
                    method.name(),
                    rank.to_string(),
                    format!("{cs:.6}"),
                ]);
            }
        }
        println!("{}", table.render());
    }
    write_csv(
        &out_path(cfg, "fig4_consistency.csv"),
        &["panel", "method", "rank", "cosine_similarity"],
        &csv_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Profile;
    use crate::panel::build_lmt_panel;
    use openapi_data::SynthStyle;

    #[test]
    fn produces_sorted_series_per_method() {
        let mut cfg = ExperimentConfig::for_profile(Profile::Smoke);
        cfg.eval_instances = 3;
        cfg.out_dir = std::env::temp_dir().join("openapi_fig4_test");
        let panel = build_lmt_panel(&cfg, SynthStyle::MnistLike);
        run(&cfg, &[panel]).unwrap();
        let csv = std::fs::read_to_string(cfg.out_dir.join("fig4_consistency.csv")).unwrap();
        // 5 methods × 3 instances + header.
        assert_eq!(csv.lines().count(), 16);
        std::fs::remove_dir_all(&cfg.out_dir).ok();
    }
}
