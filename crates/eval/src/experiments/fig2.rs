//! Figure 2: class-average images and class-average OpenAPI decision
//! features as heatmaps, for the FMNIST-style panels.

use crate::config::ExperimentConfig;
use crate::experiments::out_path;
use crate::panel::Panel;
use crate::parallel::parallel_map;
use openapi_core::{OpenApiConfig, OpenApiInterpreter};
use openapi_data::SynthStyle;
use openapi_linalg::Vector;
use openapi_metrics::heatmap::{mean_vector, signed_ascii, write_heatmap_csv, write_pgm};

/// The five showcased classes, matching the paper's Figure 2: boot,
/// pullover, coat, sneaker, T-shirt.
pub const SHOWCASE_CLASSES: [usize; 5] = [9, 2, 4, 7, 0];

/// Runs the case study on every FMNIST-style panel; prints ASCII heatmaps
/// and writes PGM + CSV per (panel, class).
///
/// # Errors
/// I/O errors writing outputs.
pub fn run(cfg: &ExperimentConfig, panels: &[Panel]) -> std::io::Result<()> {
    let side = cfg.side();
    for panel in panels.iter().filter(|p| p.style == SynthStyle::FmnistLike) {
        println!("== Figure 2 — {} ==", panel.name);
        for &class in &SHOWCASE_CLASSES {
            let class_name = panel.style.class_names()[class];
            // Class-average image over the test split.
            let avg_image = panel
                .test
                .class_mean(class)
                .expect("balanced splits contain every class");

            // Instances of this class to interpret.
            let members: Vec<usize> = (0..panel.test.len())
                .filter(|&i| panel.test.label(i) == class)
                .take(cfg.fig2_instances)
                .collect();
            let interpreter = OpenApiInterpreter::new(OpenApiConfig::default());
            let features: Vec<Option<Vector>> = parallel_map(&members, cfg.seed, |_, &idx, rng| {
                interpreter
                    .interpret(&panel.model, panel.test.instance(idx), class, rng)
                    .ok()
                    .map(|r| r.interpretation.decision_features)
            });
            let ok: Vec<Vector> = features.into_iter().flatten().collect();
            if ok.is_empty() {
                println!(
                    "  class {class_name}: OpenAPI failed on all instances (boundary-degenerate)"
                );
                continue;
            }
            let avg_features = mean_vector(&ok);

            let tag = format!(
                "fig2_{}_{}_{class_name}",
                panel.style.name().replace('-', "_"),
                panel.model.family().to_lowercase()
            );
            write_pgm(
                &out_path(cfg, &format!("{tag}_features.pgm")),
                avg_features.as_slice(),
                side,
                side,
            )?;
            write_heatmap_csv(
                &out_path(cfg, &format!("{tag}_features.csv")),
                avg_features.as_slice(),
                side,
            )?;
            write_pgm(
                &out_path(cfg, &format!("{tag}_image.pgm")),
                avg_image.as_slice(),
                side,
                side,
            )?;

            println!(
                "  class {class_name} ({} instances interpreted) — decision features D_c:",
                ok.len()
            );
            println!(
                "{}",
                indent(&signed_ascii(avg_features.as_slice(), side, side), 4)
            );
        }
    }
    Ok(())
}

fn indent(s: &str, n: usize) -> String {
    let pad = " ".repeat(n);
    s.lines()
        .map(|l| format!("{pad}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Profile;
    use crate::panel::build_lmt_panel;

    #[test]
    fn produces_heatmap_files_for_fmnist_panels() {
        let mut cfg = ExperimentConfig::for_profile(Profile::Smoke);
        cfg.fig2_instances = 2;
        cfg.out_dir = std::env::temp_dir().join("openapi_fig2_test");
        let panel = build_lmt_panel(&cfg, SynthStyle::FmnistLike);
        run(&cfg, &[panel]).unwrap();
        let entries: Vec<_> = std::fs::read_dir(&cfg.out_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().to_string())
            .collect();
        assert!(
            entries
                .iter()
                .any(|n| n.contains("Boot") && n.ends_with("features.pgm")),
            "{entries:?}"
        );
        std::fs::remove_dir_all(&cfg.out_dir).ok();
    }

    #[test]
    fn skips_non_fmnist_panels() {
        let mut cfg = ExperimentConfig::for_profile(Profile::Smoke);
        cfg.out_dir = std::env::temp_dir().join("openapi_fig2_skip_test");
        let panel = build_lmt_panel(&cfg, SynthStyle::MnistLike);
        run(&cfg, &[panel]).unwrap();
        assert!(!cfg.out_dir.exists() || std::fs::read_dir(&cfg.out_dir).unwrap().next().is_none());
        std::fs::remove_dir_all(&cfg.out_dir).ok();
    }
}
