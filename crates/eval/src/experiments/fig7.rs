//! Figure 7: exactness — L1 distance between each method's decision
//! features and the ground truth, min/mean/max over instances (the paper
//! plots these on a log scale).

use crate::config::ExperimentConfig;
use crate::driver::BatchDriver;
use crate::experiments::out_path;
use crate::panel::Panel;
use openapi_core::Method;
use openapi_linalg::Summary;
use openapi_metrics::exactness::{ground_truth_features, l1_dist};
use openapi_metrics::report::{write_csv, Table};

/// Runs the exactness experiment; prints min/mean/max L1Dist per method and
/// writes `fig7_exactness.csv`.
///
/// # Errors
/// I/O errors writing the CSV.
pub fn run(cfg: &ExperimentConfig, panels: &[Panel]) -> std::io::Result<()> {
    let methods = Method::quality_lineup();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();

    for panel in panels {
        let driver = BatchDriver::new(panel, cfg);
        let mut table = Table::new(
            format!(
                "Figure 7 — {} (L1Dist to ground truth, min/mean/max)",
                panel.name
            ),
            &["method", "min", "mean", "max", "failures"],
        );
        for method in &methods {
            let dists: Vec<f64> = driver.run(|item, x0, rng| {
                match method.attribution(&panel.model, x0, item.class, rng) {
                    Ok(computed) if computed.is_finite() => {
                        let truth = ground_truth_features(&panel.model, x0, item.class);
                        l1_dist(&truth, &computed)
                    }
                    _ => f64::NAN,
                }
            });
            let summary = Summary::from_iter(dists.iter().copied());
            table.push_row(vec![
                method.name(),
                fmt_opt(summary.min()),
                fmt_opt(summary.mean()),
                fmt_opt(summary.max()),
                summary.non_finite().to_string(),
            ]);
            csv_rows.push(vec![
                panel.name.clone(),
                method.name(),
                fmt_opt(summary.min()),
                fmt_opt(summary.mean()),
                fmt_opt(summary.max()),
                summary.non_finite().to_string(),
            ]);
        }
        println!("{}", table.render());
    }
    write_csv(
        &out_path(cfg, "fig7_exactness.csv"),
        &["panel", "method", "min_l1", "mean_l1", "max_l1", "failures"],
        &csv_rows,
    )
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.4e}"))
        .unwrap_or_else(|| "—".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Profile;
    use crate::panel::build_lmt_panel;
    use openapi_data::SynthStyle;

    #[test]
    fn openapi_l1dist_is_orders_below_worst_baseline() {
        let mut cfg = ExperimentConfig::for_profile(Profile::Smoke);
        cfg.eval_instances = 3;
        cfg.out_dir = std::env::temp_dir().join("openapi_fig7_test");
        let panel = build_lmt_panel(&cfg, SynthStyle::MnistLike);
        run(&cfg, &[panel]).unwrap();
        let csv = std::fs::read_to_string(cfg.out_dir.join("fig7_exactness.csv")).unwrap();
        let mean_of = |tag: &str| -> f64 {
            csv.lines()
                .find(|l| l.contains(tag))
                .and_then(|l| l.split(',').nth(3))
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(f64::NAN)
        };
        let oa = mean_of("OpenAPI");
        let ridge = mean_of("R(1e-8)");
        assert!(oa.is_finite());
        assert!(oa < 1e-4, "OpenAPI must be near-exact, got {oa}");
        assert!(
            ridge > oa * 100.0,
            "ridge LIME should be far worse: {ridge} vs {oa}"
        );
        std::fs::remove_dir_all(&cfg.out_dir).ok();
    }
}
