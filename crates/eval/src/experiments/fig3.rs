//! Figure 3: effectiveness — average CPP and NLCI versus number of altered
//! features, for methods S, OA, I, G, L on every panel.

use crate::config::ExperimentConfig;
use crate::driver::BatchDriver;
use crate::experiments::out_path;
use crate::panel::Panel;
use openapi_core::Method;
use openapi_metrics::effectiveness::{aggregate_curves, alteration_curve, EffectivenessConfig};
use openapi_metrics::report::{write_csv, Table};

/// Runs the alteration experiment; prints CPP/NLCI checkpoints and writes
/// the full curves to `fig3_effectiveness.csv`.
///
/// # Errors
/// I/O errors writing the CSV.
pub fn run(cfg: &ExperimentConfig, panels: &[Panel]) -> std::io::Result<()> {
    let methods = Method::effectiveness_lineup();
    let eff_cfg = EffectivenessConfig {
        max_features: cfg.alter_features,
        ..Default::default()
    };
    let mut csv_rows: Vec<Vec<String>> = Vec::new();

    for panel in panels {
        let driver = BatchDriver::new(panel, cfg);
        let mut table = Table::new(
            format!(
                "Figure 3 — {} (avg CPP / NLCI of {} instances)",
                panel.name,
                driver.len()
            ),
            &["method", "k=25%", "k=50%", "k=75%", "k=100%", "NLCI@100%"],
        );

        for method in &methods {
            let curves: Vec<_> = driver
                .run(|item, x0, rng| {
                    let attribution = method.attribution(&panel.model, x0, item.class, rng).ok()?;
                    if !attribution.is_finite() {
                        return None;
                    }
                    Some(alteration_curve(
                        &panel.model,
                        x0,
                        item.class,
                        &attribution,
                        &eff_cfg,
                    ))
                })
                .into_iter()
                .flatten()
                .collect();
            if curves.is_empty() {
                table.push_row(vec![method.name(), "(all failed)".to_string()]);
                continue;
            }
            let (avg_cpp, nlci) = aggregate_curves(&curves);
            let len = avg_cpp.len();
            let at = |frac: f64| ((len as f64 * frac).ceil() as usize).clamp(1, len) - 1;
            table.push_row(vec![
                method.name(),
                format!("{:.3}", avg_cpp[at(0.25)]),
                format!("{:.3}", avg_cpp[at(0.5)]),
                format!("{:.3}", avg_cpp[at(0.75)]),
                format!("{:.3}", avg_cpp[at(1.0)]),
                format!("{}/{}", nlci[len - 1], curves.len()),
            ]);
            for (k, (cpp, n)) in avg_cpp.iter().zip(nlci.iter()).enumerate() {
                csv_rows.push(vec![
                    panel.name.clone(),
                    method.name(),
                    (k + 1).to_string(),
                    format!("{cpp:.6}"),
                    n.to_string(),
                ]);
            }
        }
        println!("{}", table.render());
    }
    write_csv(
        &out_path(cfg, "fig3_effectiveness.csv"),
        &["panel", "method", "altered_features", "avg_cpp", "nlci"],
        &csv_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Profile;
    use crate::panel::build_lmt_panel;
    use openapi_data::SynthStyle;

    #[test]
    fn produces_curves_for_every_method() {
        let mut cfg = ExperimentConfig::for_profile(Profile::Smoke);
        cfg.eval_instances = 2;
        cfg.alter_features = 10;
        cfg.out_dir = std::env::temp_dir().join("openapi_fig3_test");
        let panel = build_lmt_panel(&cfg, SynthStyle::MnistLike);
        run(&cfg, &[panel]).unwrap();
        let csv = std::fs::read_to_string(cfg.out_dir.join("fig3_effectiveness.csv")).unwrap();
        // 5 methods × 10 ks (+ header), minus any total failures.
        assert!(csv.lines().count() > 30, "{}", csv.lines().count());
        assert!(csv.contains("OpenAPI"));
        assert!(csv.contains("Saliency"));
        std::fs::remove_dir_all(&cfg.out_dir).ok();
    }
}
