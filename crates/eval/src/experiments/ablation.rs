//! Ablations of OpenAPI's design choices (DESIGN.md §3) plus
//! failure-injection against degraded APIs.
//!
//! 1. **Consistency-check strategy** — square-solve-then-check (Theorem 2's
//!    `Θ_i` construction) vs full least squares: agreement, iterations,
//!    wall time.
//! 2. **Residual tolerance** `rtol` — sweep; too tight rejects valid
//!    systems (wasted iterations), too loose admits cross-region systems
//!    (exactness loss).
//! 3. **Hypercube shrink factor** — the paper's ½ vs gentler/harsher
//!    schedules: iterations and query budget.
//! 4. **Degraded APIs** — probability quantization: a deterministic
//!    quantized API is a piecewise-constant PLM, so OpenAPI shrinks into a
//!    quantization plateau and reports *its* exact local behaviour (zero
//!    slopes) — honest about the API it queried, visibly far from the
//!    hidden model; the naive method instead mixes plateaus silently.

use crate::config::ExperimentConfig;
use crate::experiments::{out_path, predicted_classes};
use crate::panel::{eval_indices, Panel};
use crate::parallel::parallel_map;
use openapi_api::QuantizedApi;
use openapi_core::{NaiveConfig, NaiveInterpreter, OpenApiConfig, OpenApiInterpreter};
use openapi_linalg::solve::ConsistencyStrategy;
use openapi_metrics::exactness::{ground_truth_features, l1_dist};
use openapi_metrics::report::{write_csv, Table};
use std::time::Instant;

/// Runs all four ablations on the first PLNN panel (the family with
/// nontrivial region geometry).
///
/// # Errors
/// I/O errors writing CSVs.
///
/// # Panics
/// Panics when no PLNN panel is supplied.
pub fn run(cfg: &ExperimentConfig, panels: &[Panel]) -> std::io::Result<()> {
    let panel = panels
        .iter()
        .find(|p| p.model.family() == "PLNN")
        .expect("ablation needs a PLNN panel");
    let indices = eval_indices(panel, cfg.eval_instances, cfg.seed);
    let classes = predicted_classes(panel, &indices);
    let items: Vec<(usize, usize)> = indices
        .iter()
        .copied()
        .zip(classes.iter().copied())
        .collect();

    strategy_ablation(cfg, panel, &items)?;
    rtol_ablation(cfg, panel, &items)?;
    shrink_ablation(cfg, panel, &items)?;
    degraded_api_ablation(cfg, panel, &items)?;
    Ok(())
}

struct RunStats {
    successes: usize,
    total: usize,
    mean_iterations: f64,
    mean_queries: f64,
    mean_l1: f64,
    elapsed_ms: f64,
}

fn run_openapi(
    cfg: &ExperimentConfig,
    panel: &Panel,
    items: &[(usize, usize)],
    oa_cfg: &OpenApiConfig,
) -> RunStats {
    let interpreter = OpenApiInterpreter::new(oa_cfg.clone());
    let start = Instant::now();
    let results: Vec<Option<(usize, usize, f64)>> =
        parallel_map(items, cfg.seed, |_, &(idx, class), rng| {
            let x0 = panel.test.instance(idx);
            interpreter
                .interpret(&panel.model, x0, class, rng)
                .ok()
                .map(|r| {
                    let truth = ground_truth_features(&panel.model, x0, class);
                    (
                        r.iterations,
                        r.queries,
                        l1_dist(&truth, &r.interpretation.decision_features),
                    )
                })
        });
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let ok: Vec<&(usize, usize, f64)> = results.iter().flatten().collect();
    let n = ok.len().max(1) as f64;
    RunStats {
        successes: ok.len(),
        total: items.len(),
        mean_iterations: ok.iter().map(|r| r.0 as f64).sum::<f64>() / n,
        mean_queries: ok.iter().map(|r| r.1 as f64).sum::<f64>() / n,
        mean_l1: ok.iter().map(|r| r.2).sum::<f64>() / n,
        elapsed_ms,
    }
}

fn stats_row(label: String, s: &RunStats) -> Vec<String> {
    vec![
        label,
        format!("{}/{}", s.successes, s.total),
        format!("{:.2}", s.mean_iterations),
        format!("{:.0}", s.mean_queries),
        format!("{:.3e}", s.mean_l1),
        format!("{:.0}", s.elapsed_ms),
    ]
}

const STAT_HEADERS: [&str; 6] = ["config", "success", "iters", "queries", "mean L1", "ms"];

fn strategy_ablation(
    cfg: &ExperimentConfig,
    panel: &Panel,
    items: &[(usize, usize)],
) -> std::io::Result<()> {
    let mut table = Table::new(
        format!("Ablation A1a — consistency strategy ({})", panel.name),
        &STAT_HEADERS,
    );
    let mut rows = Vec::new();
    for (label, strategy) in [
        ("square-then-check", ConsistencyStrategy::SquareThenCheck),
        ("least-squares", ConsistencyStrategy::LeastSquares),
    ] {
        let oa = OpenApiConfig {
            strategy,
            ..Default::default()
        };
        let stats = run_openapi(cfg, panel, items, &oa);
        let row = stats_row(label.to_string(), &stats);
        table.push_row(row.clone());
        rows.push(row);
    }
    println!("{}", table.render());
    write_csv(
        &out_path(cfg, "ablation_strategy.csv"),
        &STAT_HEADERS,
        &rows,
    )
}

fn rtol_ablation(
    cfg: &ExperimentConfig,
    panel: &Panel,
    items: &[(usize, usize)],
) -> std::io::Result<()> {
    let mut table = Table::new(
        format!("Ablation A1b — residual tolerance ({})", panel.name),
        &STAT_HEADERS,
    );
    let mut rows = Vec::new();
    for rtol in [1e-3, 1e-6, 1e-9, 1e-12] {
        let oa = OpenApiConfig {
            rtol,
            ..Default::default()
        };
        let stats = run_openapi(cfg, panel, items, &oa);
        let row = stats_row(format!("rtol={rtol:.0e}"), &stats);
        table.push_row(row.clone());
        rows.push(row);
    }
    println!("{}", table.render());
    write_csv(&out_path(cfg, "ablation_rtol.csv"), &STAT_HEADERS, &rows)
}

fn shrink_ablation(
    cfg: &ExperimentConfig,
    panel: &Panel,
    items: &[(usize, usize)],
) -> std::io::Result<()> {
    let mut table = Table::new(
        format!("Ablation A1c — hypercube shrink factor ({})", panel.name),
        &STAT_HEADERS,
    );
    let mut rows = Vec::new();
    for shrink in [0.25, 0.5, 0.75] {
        let oa = OpenApiConfig {
            shrink_factor: shrink,
            ..Default::default()
        };
        let stats = run_openapi(cfg, panel, items, &oa);
        let row = stats_row(format!("shrink={shrink}"), &stats);
        table.push_row(row.clone());
        rows.push(row);
    }
    println!("{}", table.render());
    write_csv(&out_path(cfg, "ablation_shrink.csv"), &STAT_HEADERS, &rows)
}

fn degraded_api_ablation(
    cfg: &ExperimentConfig,
    panel: &Panel,
    items: &[(usize, usize)],
) -> std::io::Result<()> {
    let mut table = Table::new(
        format!("Ablation A1d — quantized API responses ({})", panel.name),
        &[
            "decimals",
            "OpenAPI success",
            "OpenAPI mean L1 (ok runs)",
            "naive mean L1",
        ],
    );
    let mut rows = Vec::new();
    // A modest budget suffices: OpenAPI either accepts quickly (fine
    // quantization) or descends to a plateau within ~20 halvings.
    let oa_cfg = OpenApiConfig {
        max_iterations: 20,
        ..Default::default()
    };
    let interpreter = OpenApiInterpreter::new(oa_cfg);
    let naive = NaiveInterpreter::new(NaiveConfig::with_edge(1e-2));

    for decimals in [12u32, 6, 3] {
        let api = QuantizedApi::new(&panel.model, decimals);
        let results: Vec<(Option<f64>, Option<f64>)> =
            parallel_map(items, cfg.seed, |_, &(idx, class), rng| {
                let x0 = panel.test.instance(idx);
                let truth = ground_truth_features(&panel.model, x0, class);
                let oa = interpreter
                    .interpret(&api, x0, class, rng)
                    .ok()
                    .map(|r| l1_dist(&truth, &r.interpretation.decision_features));
                let nv = naive
                    .interpret(&api, x0, class, rng)
                    .ok()
                    .map(|i| l1_dist(&truth, &i.decision_features));
                (oa, nv)
            });
        let oa_ok: Vec<f64> = results.iter().filter_map(|(o, _)| *o).collect();
        let nv_ok: Vec<f64> = results.iter().filter_map(|(_, n)| *n).collect();
        let mean = |v: &[f64]| {
            if v.is_empty() {
                "—".to_string()
            } else {
                format!("{:.3e}", v.iter().sum::<f64>() / v.len() as f64)
            }
        };
        let row = vec![
            decimals.to_string(),
            format!("{}/{}", oa_ok.len(), items.len()),
            mean(&oa_ok),
            mean(&nv_ok),
        ];
        table.push_row(row.clone());
        rows.push(row);
    }
    println!("{}", table.render());
    println!(
        "note: two regimes. When the quantization step is large relative to the local\n\
         signal, OpenAPI shrinks into a quantization PLATEAU (the quantized API is a\n\
         piecewise-constant PLM) and exactly reports its zero slopes — honest about\n\
         the API it queried, visibly far from the hidden model. When the step is\n\
         fine, no cube is consistent within the budget and OpenAPI REFUSES (0/n\n\
         success). The naive method always answers, wrongly, in both regimes.\n"
    );
    write_csv(
        &out_path(cfg, "ablation_degraded.csv"),
        &[
            "decimals",
            "openapi_success",
            "openapi_mean_l1",
            "naive_mean_l1",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Profile;
    use crate::panel::build_plnn_panel;
    use openapi_data::SynthStyle;

    #[test]
    fn ablation_runs_end_to_end_on_smoke_panel() {
        let mut cfg = ExperimentConfig::for_profile(Profile::Smoke);
        cfg.eval_instances = 2;
        cfg.out_dir = std::env::temp_dir().join("openapi_ablation_test");
        let panel = build_plnn_panel(&cfg, SynthStyle::MnistLike);
        run(&cfg, &[panel]).unwrap();
        for f in [
            "ablation_strategy.csv",
            "ablation_rtol.csv",
            "ablation_shrink.csv",
            "ablation_degraded.csv",
        ] {
            assert!(cfg.out_dir.join(f).exists(), "{f} missing");
        }
        std::fs::remove_dir_all(&cfg.out_dir).ok();
    }
}
