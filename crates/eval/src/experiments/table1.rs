//! Table I: training and testing accuracies of all target models.

use crate::config::ExperimentConfig;
use crate::experiments::out_path;
use crate::panel::Panel;
use openapi_metrics::report::{write_csv, Table};

/// Prints Table I and writes `table1_accuracy.csv`.
///
/// # Errors
/// I/O errors writing the CSV.
pub fn run(cfg: &ExperimentConfig, panels: &[Panel]) -> std::io::Result<()> {
    let mut table = Table::new(
        "Table I — training and testing accuracies",
        &["model", "dataset", "train", "test"],
    );
    let mut rows = Vec::new();
    for p in panels {
        let row = vec![
            p.model.family().to_string(),
            p.style.name().to_string(),
            format!("{:.3}", p.train_accuracy),
            format!("{:.3}", p.test_accuracy),
        ];
        table.push_row(row.clone());
        rows.push(row);
    }
    println!("{}", table.render());
    write_csv(
        &out_path(cfg, "table1_accuracy.csv"),
        &["model", "dataset", "train_accuracy", "test_accuracy"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Profile;
    use crate::panel::build_lmt_panel;
    use openapi_data::SynthStyle;

    #[test]
    fn writes_csv_with_one_row_per_panel() {
        let mut cfg = ExperimentConfig::for_profile(Profile::Smoke);
        cfg.out_dir = std::env::temp_dir().join("openapi_table1_test");
        let panel = build_lmt_panel(&cfg, SynthStyle::MnistLike);
        run(&cfg, &[panel]).unwrap();
        let csv = std::fs::read_to_string(cfg.out_dir.join("table1_accuracy.csv")).unwrap();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("model,dataset"));
        std::fs::remove_dir_all(&cfg.out_dir).ok();
    }
}
