//! Figure 5: sample quality — average Region Difference of each method's
//! perturbed-instance set, OpenAPI versus the `h`-swept baselines.

use crate::config::ExperimentConfig;
use crate::driver::BatchDriver;
use crate::experiments::out_path;
use crate::panel::Panel;
use openapi_core::Method;
use openapi_metrics::region_diff::region_difference;
use openapi_metrics::report::{write_csv, Table};

/// Runs the RD experiment; prints per-method averages and writes
/// `fig5_region_diff.csv`.
///
/// # Errors
/// I/O errors writing the CSV.
pub fn run(cfg: &ExperimentConfig, panels: &[Panel]) -> std::io::Result<()> {
    let methods = Method::quality_lineup();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();

    for panel in panels {
        let driver = BatchDriver::new(panel, cfg);
        let mut table = Table::new(
            format!(
                "Figure 5 — {} (average Region Difference, {} instances)",
                panel.name,
                driver.len()
            ),
            &["method", "avg RD"],
        );
        for method in &methods {
            let rds: Vec<f64> = driver.run(|item, x0, rng| {
                match openapi_metrics::samples::method_samples(
                    method,
                    &panel.model,
                    x0,
                    item.class,
                    rng,
                ) {
                    Some(samples) => region_difference(&panel.model, x0, &samples),
                    // OpenAPI budget exhaustion: score conservatively as 1.
                    None => 1.0,
                }
            });
            let avg = rds.iter().sum::<f64>() / rds.len() as f64;
            table.push_row(vec![method.name(), format!("{avg:.4}")]);
            csv_rows.push(vec![panel.name.clone(), method.name(), format!("{avg:.6}")]);
        }
        println!("{}", table.render());
    }
    write_csv(
        &out_path(cfg, "fig5_region_diff.csv"),
        &["panel", "method", "avg_rd"],
        &csv_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Profile;
    use crate::panel::build_plnn_panel;
    use openapi_data::SynthStyle;

    #[test]
    fn openapi_rd_is_zero_and_large_h_baselines_degrade() {
        let mut cfg = ExperimentConfig::for_profile(Profile::Smoke);
        cfg.eval_instances = 3;
        cfg.out_dir = std::env::temp_dir().join("openapi_fig5_test");
        let panel = build_plnn_panel(&cfg, SynthStyle::MnistLike);
        run(&cfg, &[panel]).unwrap();
        let csv = std::fs::read_to_string(cfg.out_dir.join("fig5_region_diff.csv")).unwrap();
        // OpenAPI row exists and reports RD 0.
        let oa_line = csv.lines().find(|l| l.contains("OpenAPI")).unwrap();
        assert!(oa_line.ends_with("0.000000"), "{oa_line}");
        std::fs::remove_dir_all(&cfg.out_dir).ok();
    }
}
