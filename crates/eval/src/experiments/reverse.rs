//! The reverse-engineering extension (paper §VI future work): reconstruct
//! the local classifier behind the API and validate it.

use crate::config::ExperimentConfig;
use crate::experiments::out_path;
use crate::panel::{eval_indices, Panel};
use crate::parallel::parallel_map;
use openapi_core::openapi::OpenApiConfig;
use openapi_core::reverse::{agreement_rate, boundary_probe, ReconstructedPlm};
use openapi_core::sampler::sample_in_hypercube;
use openapi_linalg::Vector;
use openapi_metrics::report::{write_csv, Table};

/// Per-panel reconstruction study: probability agreement near the instance
/// and across a wide cube, plus boundary distances along random directions.
///
/// # Errors
/// I/O errors writing the CSV.
pub fn run(cfg: &ExperimentConfig, panels: &[Panel]) -> std::io::Result<()> {
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let mut table = Table::new(
        "Extension A2 — reverse engineering the local classifier",
        &[
            "panel",
            "reconstructed",
            "agree(r=1e-3)",
            "agree(r=0.5)",
            "boundaries found",
            "median dist",
        ],
    );

    for panel in panels {
        let indices = eval_indices(panel, cfg.eval_instances.min(8), cfg.seed);
        let oa_cfg = OpenApiConfig::default();
        let outcomes: Vec<Option<(f64, f64, Option<f64>)>> =
            parallel_map(&indices, cfg.seed, |_, &idx, rng| {
                let x0 = panel.test.instance(idx);
                let recon = ReconstructedPlm::extract(&panel.model, x0, &oa_cfg, rng).ok()?;
                let near = agreement_rate(&panel.model, &recon, x0, 1e-3, 60, 1e-6, rng);
                let far = agreement_rate(&panel.model, &recon, x0, 0.5, 60, 1e-6, rng);
                // Probe one random direction for the region boundary.
                let dir = sample_in_hypercube(&vec![0.0; x0.len()], 1.0, rng);
                let dist = boundary_probe(&panel.model, &recon, x0, &dir, 4.0, 1e-4, 1e-9);
                Some((near, far, dist))
            });
        let ok: Vec<&(f64, f64, Option<f64>)> = outcomes.iter().flatten().collect();
        if ok.is_empty() {
            table.push_row(vec![panel.name.clone(), "0".into()]);
            continue;
        }
        let n = ok.len() as f64;
        let near = ok.iter().map(|r| r.0).sum::<f64>() / n;
        let far = ok.iter().map(|r| r.1).sum::<f64>() / n;
        let mut dists: Vec<f64> = ok.iter().filter_map(|r| r.2).collect();
        // float: sort comparator for a median; expect guards NaN.
        dists.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        let found = dists.len();
        let median = dists
            .get(found / 2)
            .map(|d| format!("{d:.4}"))
            .unwrap_or_else(|| "—".to_string());
        let row = vec![
            panel.name.clone(),
            format!("{}/{}", ok.len(), indices.len()),
            format!("{near:.3}"),
            format!("{far:.3}"),
            format!("{found}/{}", ok.len()),
            median,
        ];
        table.push_row(row.clone());
        csv_rows.push(row);
    }
    println!("{}", table.render());
    println!(
        "reading: near-agreement ≈ 1.0 proves the reconstruction is exact inside the\n\
         region; wide-cube agreement < 1 on multi-region models shows where the local\n\
         clone stops being valid; boundary distances quantify the region's extent.\n"
    );
    write_csv(
        &out_path(cfg, "reverse_engineering.csv"),
        &[
            "panel",
            "reconstructed",
            "agree_near",
            "agree_far",
            "boundaries_found",
            "median_boundary_dist",
        ],
        &csv_rows,
    )
}

/// Quick helper for tests: reconstruct at one instance and report the
/// near-agreement rate.
pub fn reconstruct_once(panel: &Panel, instance: usize, seed: u64) -> Option<f64> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let x0: &Vector = panel.test.instance(instance);
    let recon =
        ReconstructedPlm::extract(&panel.model, x0, &OpenApiConfig::default(), &mut rng).ok()?;
    Some(agreement_rate(
        &panel.model,
        &recon,
        x0,
        1e-3,
        40,
        1e-6,
        &mut rng,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Profile;
    use crate::panel::build_plnn_panel;
    use openapi_data::SynthStyle;

    #[test]
    fn reconstruction_agrees_near_the_instance() {
        let cfg = ExperimentConfig::for_profile(Profile::Smoke);
        let panel = build_plnn_panel(&cfg, SynthStyle::MnistLike);
        let rate = reconstruct_once(&panel, 0, 1).expect("reconstruction should succeed");
        assert!(rate > 0.95, "near agreement {rate}");
    }
}
