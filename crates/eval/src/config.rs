//! Experiment configuration and scale profiles.

use std::path::PathBuf;

/// How big to run the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Minutes-scale sanity runs used by the integration tests: reduced
    /// dimensionality (14×14 = 196), small models, a handful of instances.
    Smoke,
    /// The default: full `d = 784`, mid-size models, tens of evaluation
    /// instances. Reproduces every qualitative shape of the paper on a
    /// laptop in minutes per figure.
    Quick,
    /// Paper-scale: 60k/10k datasets, the 784-256-128-100-10 PLNN, 1000
    /// evaluation instances. Hours of CPU; identical code paths.
    Paper,
}

impl Profile {
    /// Parses `smoke` / `quick` / `paper`.
    pub fn parse(s: &str) -> Option<Profile> {
        match s {
            "smoke" => Some(Profile::Smoke),
            "quick" => Some(Profile::Quick),
            "paper" => Some(Profile::Paper),
            _ => None,
        }
    }
}

/// All knobs for one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Scale profile.
    pub profile: Profile,
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Where CSV/PGM outputs land.
    pub out_dir: PathBuf,
    /// Training-set size per dataset.
    pub train_size: usize,
    /// Test-set size per dataset.
    pub test_size: usize,
    /// Instances interpreted per panel in Figures 3–7 (paper: 1000).
    pub eval_instances: usize,
    /// Average-pooling factor applied to the 28×28 images (1 = full `d`).
    pub pool_factor: usize,
    /// Hidden-layer widths of the PLNN (input/output are data-determined).
    pub plnn_hidden: Vec<usize>,
    /// PLNN training epochs.
    pub plnn_epochs: usize,
    /// LMT minimum leaf instances (paper: 100).
    pub lmt_min_leaf: usize,
    /// LMT leaf-classifier epochs.
    pub lmt_epochs: usize,
    /// Features altered in Figure 3 (paper: 200).
    pub alter_features: usize,
    /// Instances per class for the Figure 2 heatmap averages.
    pub fig2_instances: usize,
    /// Opt-in concurrent-service path of the `queries` experiment: when
    /// nonzero, the experiment additionally drives an `openapi-serve`
    /// `InterpretationService` with this many client threads and reports
    /// its stats (0 = off, the default for every profile).
    pub service_clients: usize,
    /// Optional durable region store for the concurrent-service path of
    /// the `queries` experiment: when set, the service opens an
    /// `openapi-store` `RegionStore` under this directory, so repeated
    /// runs re-serve previously solved regions (store hits are reported
    /// in the printed stats). `None` = in-memory only, the default.
    pub service_store_dir: Option<PathBuf>,
    /// Optional remote interpretation server for the `queries`
    /// experiment: when set, the experiment additionally drives its work
    /// items through `openapi-net` `Client` connections against this
    /// address (`service_clients` of them, minimum 1) and reports the
    /// server's stats over the wire. The server must front a model with
    /// the same dimensionality as the panels (e.g. an
    /// `interpretation_server --listen` over the same profile). `None` =
    /// no remote leg, the default.
    pub remote: Option<String>,
}

impl ExperimentConfig {
    /// Builds the configuration for a profile.
    pub fn for_profile(profile: Profile) -> Self {
        match profile {
            Profile::Smoke => ExperimentConfig {
                profile,
                seed: 42,
                out_dir: PathBuf::from("results"),
                train_size: 600,
                test_size: 200,
                eval_instances: 4,
                pool_factor: 2, // 14×14, d = 196
                plnn_hidden: vec![32, 16],
                plnn_epochs: 15,
                lmt_min_leaf: 150,
                // 8 epochs leaves the leaf classifiers under-trained on some
                // seeds (train accuracy dips to ~0.75); 16 is robustly ≥0.95.
                lmt_epochs: 16,
                alter_features: 40,
                fig2_instances: 3,
                service_clients: 0,
                service_store_dir: None,
                remote: None,
            },
            Profile::Quick => ExperimentConfig {
                profile,
                seed: 42,
                out_dir: PathBuf::from("results"),
                train_size: 3000,
                test_size: 600,
                eval_instances: 24,
                pool_factor: 1, // full d = 784
                plnn_hidden: vec![64, 32],
                plnn_epochs: 12,
                lmt_min_leaf: 150,
                lmt_epochs: 12,
                alter_features: 200,
                fig2_instances: 8,
                service_clients: 0,
                service_store_dir: None,
                remote: None,
            },
            Profile::Paper => ExperimentConfig {
                profile,
                seed: 42,
                out_dir: PathBuf::from("results"),
                train_size: 60_000,
                test_size: 10_000,
                eval_instances: 1000,
                pool_factor: 1,
                plnn_hidden: vec![256, 128, 100],
                plnn_epochs: 20,
                lmt_min_leaf: 100,
                lmt_epochs: 30,
                alter_features: 200,
                fig2_instances: 50,
                service_clients: 0,
                service_store_dir: None,
                remote: None,
            },
        }
    }

    /// Image side length after pooling.
    pub fn side(&self) -> usize {
        28 / self.pool_factor
    }

    /// Input dimensionality after pooling.
    pub fn dim(&self) -> usize {
        self.side() * self.side()
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::for_profile(Profile::Quick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_parsing() {
        assert_eq!(Profile::parse("smoke"), Some(Profile::Smoke));
        assert_eq!(Profile::parse("quick"), Some(Profile::Quick));
        assert_eq!(Profile::parse("paper"), Some(Profile::Paper));
        assert_eq!(Profile::parse("x"), None);
    }

    #[test]
    fn dimensions_respect_pooling() {
        let smoke = ExperimentConfig::for_profile(Profile::Smoke);
        assert_eq!(smoke.dim(), 196);
        let quick = ExperimentConfig::for_profile(Profile::Quick);
        assert_eq!(quick.dim(), 784);
    }

    #[test]
    fn paper_profile_matches_paper_numbers() {
        let p = ExperimentConfig::for_profile(Profile::Paper);
        assert_eq!(p.train_size, 60_000);
        assert_eq!(p.test_size, 10_000);
        assert_eq!(p.eval_instances, 1000);
        assert_eq!(p.plnn_hidden, vec![256, 128, 100]);
        assert_eq!(p.lmt_min_leaf, 100);
        assert_eq!(p.alter_features, 200);
    }
}
