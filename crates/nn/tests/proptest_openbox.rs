//! Property-based tests of the OpenBox extraction — the ground-truth oracle
//! every exactness claim in the reproduction rests on.

use openapi_api::{GradientOracle, PredictionApi};
use openapi_nn::{Activation, Plnn};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn net_from_seed(seed: u64, dims: &[usize], act: Activation) -> Plnn {
    let mut rng = StdRng::seed_from_u64(seed);
    Plnn::mlp(dims, act, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The composed affine map reproduces the network's logits exactly at
    /// the extraction point, for random nets and inputs.
    #[test]
    fn local_map_matches_network_at_point(
        seed in 0u64..10_000,
        x in prop::collection::vec(-2.0f64..2.0, 6),
    ) {
        let net = net_from_seed(seed, &[6, 9, 5, 3], Activation::ReLU);
        let lm = net.local_linear_map(&x);
        let direct = net.logits(&x);
        let via = lm.logits(&x);
        for c in 0..3 {
            prop_assert!((direct[c] - via[c]).abs() < 1e-9,
                "class {}: {} vs {}", c, direct[c], via[c]);
        }
    }

    /// Same activation pattern ⇒ same affine map; the map is a function of
    /// the region, not the point.
    #[test]
    fn map_depends_only_on_pattern(
        seed in 0u64..10_000,
        x in prop::collection::vec(-1.0f64..1.0, 4),
        eps in prop::collection::vec(-1e-4f64..1e-4, 4),
    ) {
        let net = net_from_seed(seed, &[4, 8, 2], Activation::ReLU);
        let y: Vec<f64> = x.iter().zip(eps.iter()).map(|(a, b)| a + b).collect();
        if net.activation_pattern(&x) == net.activation_pattern(&y) {
            let ma = net.local_linear_map(&x);
            let mb = net.local_linear_map(&y);
            prop_assert_eq!(ma, mb);
        }
    }

    /// Logit gradients from OpenBox equal central finite differences (when
    /// the probe stays inside the region; the tiny step makes crossings
    /// measure-zero rare, and we skip them via pattern checks).
    #[test]
    fn logit_gradient_matches_finite_difference(
        seed in 0u64..10_000,
        x in prop::collection::vec(-1.5f64..1.5, 5),
        coord in 0usize..5,
        class in 0usize..3,
    ) {
        let net = net_from_seed(seed, &[5, 7, 3], Activation::ReLU);
        let h = 1e-6;
        let mut xp = x.clone();
        xp[coord] += h;
        let mut xm = x.clone();
        xm[coord] -= h;
        // Only compare when the whole stencil shares x's region.
        prop_assume!(net.activation_pattern(&xp) == net.activation_pattern(&x));
        prop_assume!(net.activation_pattern(&xm) == net.activation_pattern(&x));
        let g = net.logit_gradient(&x, class);
        let fd = (net.logits(&xp)[class] - net.logits(&xm)[class]) / (2.0 * h);
        prop_assert!((g[coord] - fd).abs() < 1e-5, "{} vs {}", g[coord], fd);
    }

    /// LeakyReLU networks have NO zero-gradient regions: the local map's
    /// weight matrix never vanishes (unlike ReLU's dead zones).
    #[test]
    fn leaky_relu_maps_are_never_all_zero(
        seed in 0u64..10_000,
        x in prop::collection::vec(-3.0f64..3.0, 4),
    ) {
        let net = net_from_seed(seed, &[4, 6, 2], Activation::LeakyReLU(0.1));
        let lm = net.local_linear_map(&x);
        prop_assert!(lm.weights.norm_max() > 0.0);
    }

    /// Persistence round-trips arbitrary trained-shape networks bit-exactly.
    #[test]
    fn persisted_networks_predict_identically(
        seed in 0u64..10_000,
        x in prop::collection::vec(-1.0f64..1.0, 5),
    ) {
        let net = net_from_seed(seed, &[5, 6, 4, 3], Activation::ReLU);
        let back = Plnn::from_bytes(&net.to_bytes()).expect("round trip");
        prop_assert_eq!(net.predict(&x), back.predict(&x));
        prop_assert_eq!(net.activation_pattern(&x), back.activation_pattern(&x));
    }

    /// Softmax outputs are valid probability vectors for any finite input.
    #[test]
    fn predictions_are_distributions(
        seed in 0u64..10_000,
        x in prop::collection::vec(-50.0f64..50.0, 4),
    ) {
        let net = net_from_seed(seed, &[4, 5, 3], Activation::ReLU);
        let p = net.predict(&x);
        prop_assert!(p.iter().all(|v| *v >= 0.0 && v.is_finite()));
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
