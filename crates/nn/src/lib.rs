#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Piecewise linear neural networks (PLNNs) — one of the two PLM families
//! the paper interprets.
//!
//! A feed-forward network whose nonlinearities are all piecewise linear
//! (ReLU family, MaxOut) computes a piecewise linear function of its input:
//! within the set of inputs sharing one *activation pattern*, every masked
//! layer is affine and their composition is a single affine map
//! `z = Wᵀx + b`. This crate provides:
//!
//! * [`network::Plnn`] — the model: dense ReLU/LeakyReLU layers and MaxOut
//!   layers, a linear output layer, and stable softmax predictions
//!   (implements `PredictionApi`).
//! * [`mod@train`] — from-scratch mini-batch training: softmax cross-entropy,
//!   backprop, SGD-with-momentum and Adam.
//! * [`openbox`] — the OpenBox construction the paper uses as its PLNN
//!   ground-truth oracle [Chu et al., KDD 2018]: extract the activation
//!   pattern (→ `RegionId`) and the exact per-region `(W, b)`
//!   (→ `LocalLinearModel`), which also yields exact input gradients
//!   (implements `GroundTruthOracle` + `GradientOracle`).
//! * [`init`] — deterministic He/Xavier initialization.
//!
//! The paper's architecture (784-256-128-100-10, ReLU) is
//! [`network::Plnn::paper_architecture`]; tests use smaller nets.

pub mod activation;
pub mod init;
pub mod layer;
pub mod maxout;
pub mod network;
pub mod openbox;
pub mod persist;
pub mod train;

pub use activation::Activation;
pub use layer::DenseLayer;
pub use maxout::MaxOutLayer;
pub use network::{Layer, Plnn};
pub use train::{train, Optimizer, TrainConfig, TrainReport};
