//! The piecewise linear network: layer stack, forward pass, predictions.

use crate::activation::Activation;
use crate::init;
use crate::layer::DenseLayer;
use crate::maxout::MaxOutLayer;
use openapi_api::{softmax, PredictionApi};
use openapi_linalg::Vector;
use rand::Rng;

/// One layer of a [`Plnn`].
#[derive(Debug, Clone, PartialEq)]
pub enum Layer {
    /// Dense affine layer with an elementwise PWL activation.
    Dense(DenseLayer),
    /// MaxOut layer (max over affine pieces).
    MaxOut(MaxOutLayer),
}

impl Layer {
    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        match self {
            Layer::Dense(l) => l.input_dim(),
            Layer::MaxOut(l) => l.input_dim(),
        }
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        match self {
            Layer::Dense(l) => l.output_dim(),
            Layer::MaxOut(l) => l.output_dim(),
        }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Dense(l) => l.param_count(),
            Layer::MaxOut(l) => l.param_count(),
        }
    }
}

/// Per-layer forward-pass record, retained for backprop and region
/// extraction.
#[derive(Debug, Clone)]
pub enum LayerTrace {
    /// Dense layer: the pre-activation vector.
    Dense {
        /// `W·x + b` before the activation.
        pre: Vector,
    },
    /// MaxOut layer: which piece won at each unit.
    MaxOut {
        /// Selected piece index per output unit.
        selection: Vec<usize>,
    },
}

/// Full forward trace: inputs to every layer plus per-layer records and the
/// final logits.
#[derive(Debug, Clone)]
pub struct ForwardTrace {
    /// `inputs[l]` is the input vector fed to layer `l`; `inputs[0]` is the
    /// network input.
    pub inputs: Vec<Vector>,
    /// Per-layer records aligned with the layer stack.
    pub layers: Vec<LayerTrace>,
    /// Output of the last layer (logits — the last layer is linear).
    pub logits: Vector,
}

/// A feed-forward piecewise linear network.
///
/// Invariants (validated at construction):
/// * consecutive layer dimensions chain,
/// * the final layer is a [`DenseLayer`] with [`Activation::Identity`]
///   (it produces logits; [`PredictionApi::predict`] applies softmax).
#[derive(Debug, Clone, PartialEq)]
pub struct Plnn {
    layers: Vec<Layer>,
}

impl Plnn {
    /// Builds a network from a layer stack.
    ///
    /// # Panics
    /// Panics when the stack is empty, dimensions do not chain, or the final
    /// layer is not a linear dense layer.
    pub fn new(layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "Plnn needs at least one layer");
        for w in layers.windows(2) {
            assert_eq!(
                w[0].output_dim(),
                w[1].input_dim(),
                "layer dimensions do not chain: {} -> {}",
                w[0].output_dim(),
                w[1].input_dim()
            );
        }
        match layers.last().expect("non-empty") {
            Layer::Dense(d) => assert_eq!(
                d.activation,
                Activation::Identity,
                "final layer must be linear (logits feed softmax)"
            ),
            Layer::MaxOut(_) => panic!("final layer must be a linear dense layer"),
        }
        Plnn { layers }
    }

    /// Builds a fully-connected MLP with the given layer widths
    /// (`dims = [input, hidden…, output]`), `activation` on hidden layers,
    /// He-initialized hidden weights, and a Xavier-initialized linear output.
    ///
    /// # Panics
    /// Panics when `dims.len() < 2` or any width is zero.
    pub fn mlp<R: Rng>(dims: &[usize], activation: Activation, rng: &mut R) -> Self {
        assert!(
            dims.len() >= 2,
            "mlp needs at least input and output widths"
        );
        assert!(dims.iter().all(|&d| d > 0), "zero-width layer");
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let (inp, out) = (dims[i], dims[i + 1]);
            let last = i == dims.len() - 2;
            let weights = if last {
                init::xavier_uniform(out, inp, rng)
            } else {
                init::he_uniform(out, inp, rng)
            };
            let act = if last {
                Activation::Identity
            } else {
                activation
            };
            layers.push(Layer::Dense(DenseLayer::new(
                weights,
                init::zero_bias(out),
                act,
            )));
        }
        Plnn::new(layers)
    }

    /// The paper's PLNN: 784-256-128-100-10 with ReLU hidden layers
    /// (the Fashion-MNIST benchmark baseline architecture).
    pub fn paper_architecture<R: Rng>(rng: &mut R) -> Self {
        Self::mlp(&[784, 256, 128, 100, 10], Activation::ReLU, rng)
    }

    /// Builds an MLP whose hidden layers are MaxOut with `pieces` affine
    /// pieces each (the other PLM nonlinearity the paper's introduction
    /// names, via Goodfellow et al.), ending in a linear output layer.
    ///
    /// # Panics
    /// Panics when `dims.len() < 2`, any width is zero, or `pieces < 2`.
    pub fn maxout_mlp<R: Rng>(dims: &[usize], pieces: usize, rng: &mut R) -> Self {
        assert!(
            dims.len() >= 2,
            "maxout_mlp needs at least input and output widths"
        );
        assert!(dims.iter().all(|&d| d > 0), "zero-width layer");
        assert!(pieces >= 2, "MaxOut needs at least 2 pieces");
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let (inp, out) = (dims[i], dims[i + 1]);
            if i == dims.len() - 2 {
                layers.push(Layer::Dense(DenseLayer::new(
                    init::xavier_uniform(out, inp, rng),
                    init::zero_bias(out),
                    Activation::Identity,
                )));
            } else {
                let ws = (0..pieces)
                    .map(|_| init::he_uniform(out, inp, rng))
                    .collect();
                let bs = (0..pieces).map(|_| init::zero_bias(out)).collect();
                layers.push(Layer::MaxOut(MaxOutLayer::new(ws, bs)));
            }
        }
        Plnn::new(layers)
    }

    /// Borrow the layer stack.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access for the trainer.
    pub(crate) fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Computes logits (pre-softmax scores).
    ///
    /// # Panics
    /// Panics when `x.len() != dim()`.
    pub fn logits(&self, x: &[f64]) -> Vector {
        let mut cur = Vector(x.to_vec());
        for layer in &self.layers {
            cur = match layer {
                Layer::Dense(l) => l.forward(cur.as_slice()).1,
                Layer::MaxOut(l) => l.forward(cur.as_slice()).1,
            };
        }
        cur
    }

    /// Forward pass retaining everything backprop and OpenBox need.
    ///
    /// # Panics
    /// Panics when `x.len() != dim()`.
    pub fn forward_trace(&self, x: &[f64]) -> ForwardTrace {
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut traces = Vec::with_capacity(self.layers.len());
        let mut cur = Vector(x.to_vec());
        for layer in &self.layers {
            inputs.push(cur.clone());
            cur = match layer {
                Layer::Dense(l) => {
                    let (pre, post) = l.forward(cur.as_slice());
                    traces.push(LayerTrace::Dense { pre });
                    post
                }
                Layer::MaxOut(l) => {
                    let (selection, out) = l.forward(cur.as_slice());
                    traces.push(LayerTrace::MaxOut { selection });
                    out
                }
            };
        }
        ForwardTrace {
            inputs,
            layers: traces,
            logits: cur,
        }
    }
}

impl PredictionApi for Plnn {
    fn dim(&self) -> usize {
        self.layers[0].input_dim()
    }

    fn num_classes(&self) -> usize {
        self.layers.last().expect("non-empty").output_dim()
    }

    fn predict(&self, x: &[f64]) -> Vector {
        softmax(self.logits(x).as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net() -> Plnn {
        // 2 -> 3 (ReLU) -> 2 (linear).
        let l1 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap(),
            Vector(vec![0.0, 0.0, -1.0]),
            Activation::ReLU,
        );
        let l2 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0, -1.0, 2.0], &[0.0, 1.0, -1.0]]).unwrap(),
            Vector(vec![0.1, -0.1]),
            Activation::Identity,
        );
        Plnn::new(vec![Layer::Dense(l1), Layer::Dense(l2)])
    }

    #[test]
    fn logits_hand_computed() {
        let net = tiny_net();
        // x = (1, 2): pre1 = (1, 2, 2), post1 = (1, 2, 2);
        // logits = (1-2+4+0.1, 0+2-2-0.1) = (3.1, -0.1).
        let z = net.logits(&[1.0, 2.0]);
        assert!((z[0] - 3.1).abs() < 1e-12);
        assert!((z[1] + 0.1).abs() < 1e-12);
    }

    #[test]
    fn relu_masks_negative_units() {
        let net = tiny_net();
        // x = (-1, 0): pre1 = (-1, 0, -2) -> post1 = (0, 0, 0);
        // logits = bias of layer 2.
        let z = net.logits(&[-1.0, 0.0]);
        assert_eq!(z.as_slice(), &[0.1, -0.1]);
    }

    #[test]
    fn predict_is_softmax_of_logits() {
        let net = tiny_net();
        let x = [0.5, -0.25];
        let p = net.predict(&x);
        let z = net.logits(&x);
        let expected = softmax(z.as_slice());
        assert_eq!(p, expected);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn forward_trace_matches_logits() {
        let net = tiny_net();
        let x = [0.3, 0.9];
        let trace = net.forward_trace(&x);
        assert_eq!(trace.logits, net.logits(&x));
        assert_eq!(trace.inputs.len(), 2);
        assert_eq!(trace.inputs[0].as_slice(), &x);
        match &trace.layers[0] {
            LayerTrace::Dense { pre } => assert_eq!(pre.len(), 3),
            _ => panic!("expected dense trace"),
        }
    }

    #[test]
    fn mlp_builder_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = Plnn::mlp(&[8, 16, 4], Activation::ReLU, &mut rng);
        assert_eq!(net.dim(), 8);
        assert_eq!(net.num_classes(), 4);
        assert_eq!(net.layers().len(), 2);
        assert_eq!(net.param_count(), 16 * 8 + 16 + 4 * 16 + 4);
    }

    #[test]
    fn paper_architecture_matches_spec() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = Plnn::paper_architecture(&mut rng);
        assert_eq!(net.dim(), 784);
        assert_eq!(net.num_classes(), 10);
        let dims: Vec<usize> = net.layers().iter().map(|l| l.output_dim()).collect();
        assert_eq!(dims, vec![256, 128, 100, 10]);
    }

    #[test]
    fn maxout_layers_compose() {
        let mo = MaxOutLayer::new(
            vec![
                Matrix::from_rows(&[&[1.0, 0.0]]).unwrap(),
                Matrix::from_rows(&[&[-1.0, 0.0]]).unwrap(),
            ],
            vec![Vector(vec![0.0]), Vector(vec![0.0])],
        );
        let out = DenseLayer::new(
            Matrix::from_rows(&[&[1.0], &[-1.0]]).unwrap(),
            Vector::zeros(2),
            Activation::Identity,
        );
        let net = Plnn::new(vec![Layer::MaxOut(mo), Layer::Dense(out)]);
        // |x0| at the hidden unit.
        let z = net.logits(&[-3.0, 7.0]);
        assert_eq!(z.as_slice(), &[3.0, -3.0]);
    }

    #[test]
    fn maxout_mlp_builder_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Plnn::maxout_mlp(&[6, 10, 3], 3, &mut rng);
        assert_eq!(net.dim(), 6);
        assert_eq!(net.num_classes(), 3);
        assert!(matches!(net.layers()[0], Layer::MaxOut(_)));
        assert!(matches!(net.layers()[1], Layer::Dense(_)));
        // 3 pieces × (10×6 + 10) + (3×10 + 3)
        assert_eq!(net.param_count(), 3 * 70 + 33);
        let p = net.predict(&[0.1, -0.2, 0.3, 0.0, 0.5, -0.4]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be linear")]
    fn nonlinear_final_layer_rejected() {
        let l = DenseLayer::new(Matrix::zeros(2, 2), Vector::zeros(2), Activation::ReLU);
        let _ = Plnn::new(vec![Layer::Dense(l)]);
    }

    #[test]
    #[should_panic(expected = "do not chain")]
    fn dimension_chain_enforced() {
        let l1 = DenseLayer::new(Matrix::zeros(3, 2), Vector::zeros(3), Activation::ReLU);
        let l2 = DenseLayer::new(Matrix::zeros(2, 4), Vector::zeros(2), Activation::Identity);
        let _ = Plnn::new(vec![Layer::Dense(l1), Layer::Dense(l2)]);
    }
}
