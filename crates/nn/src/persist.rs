//! Binary persistence for trained PLNNs.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic  b"OANN"         4 bytes
//! version u16            currently 1
//! layer_count u64
//! per layer:
//!   tag u8               0 = dense, 1 = maxout
//!   dense:  act u8 (0 relu, 1 leaky, 2 identity) [+ f64 alpha if leaky]
//!           weights (matrix), bias (vector)
//!   maxout: piece_count u64, then each piece's weights, then each bias
//! ```
//!
//! Decoding validates magic, version, tags, and every dimension (via the
//! `linalg::codec` guards) and then re-runs the [`Plnn::new`] structural
//! checks, so a corrupted file can never produce an inconsistent network.

use crate::activation::Activation;
use crate::layer::DenseLayer;
use crate::maxout::MaxOutLayer;
use crate::network::{Layer, Plnn};
use bytes::{Buf, BufMut};
use openapi_linalg::codec::{self, CodecError};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

const MAGIC: &[u8; 4] = b"OANN";
const VERSION: u16 = 1;

/// Errors loading a persisted network.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Magic/version/tag mismatch or truncation.
    Format(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persist io error: {e}"),
            PersistError::Format(m) => write!(f, "persist format error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<CodecError> for PersistError {
    fn from(e: CodecError) -> Self {
        PersistError::Format(e.to_string())
    }
}

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<(), PersistError> {
    if buf.remaining() < n {
        return Err(PersistError::Format(format!(
            "truncated while reading {what}: need {n}, have {}",
            buf.remaining()
        )));
    }
    Ok(())
}

impl Plnn {
    /// Serializes the network to its binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.param_count() * 8);
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        codec::put_len(&mut buf, self.layers().len());
        for layer in self.layers() {
            match layer {
                Layer::Dense(l) => {
                    buf.put_u8(0);
                    match l.activation {
                        Activation::ReLU => buf.put_u8(0),
                        Activation::LeakyReLU(alpha) => {
                            buf.put_u8(1);
                            buf.put_f64_le(alpha);
                        }
                        Activation::Identity => buf.put_u8(2),
                    }
                    codec::put_matrix(&mut buf, &l.weights);
                    codec::put_vector(&mut buf, &l.bias);
                }
                Layer::MaxOut(l) => {
                    buf.put_u8(1);
                    codec::put_len(&mut buf, l.pieces.len());
                    for p in &l.pieces {
                        codec::put_matrix(&mut buf, p);
                    }
                    for b in &l.biases {
                        codec::put_vector(&mut buf, b);
                    }
                }
            }
        }
        buf
    }

    /// Deserializes a network written by [`Plnn::to_bytes`].
    ///
    /// # Errors
    /// [`PersistError::Format`] on any malformed input.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, PersistError> {
        let buf = &mut data;
        need(buf, 4, "magic")?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(PersistError::Format(format!("bad magic {magic:?}")));
        }
        need(buf, 2, "version")?;
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(PersistError::Format(format!(
                "unsupported version {version}"
            )));
        }
        let layer_count = codec::get_len(buf, "layer count")?;
        let mut layers = Vec::with_capacity(layer_count);
        for i in 0..layer_count {
            need(buf, 1, "layer tag")?;
            match buf.get_u8() {
                0 => {
                    need(buf, 1, "activation tag")?;
                    let activation = match buf.get_u8() {
                        0 => Activation::ReLU,
                        1 => {
                            need(buf, 8, "leaky alpha")?;
                            Activation::LeakyReLU(buf.get_f64_le())
                        }
                        2 => Activation::Identity,
                        t => {
                            return Err(PersistError::Format(format!(
                                "layer {i}: unknown activation tag {t}"
                            )))
                        }
                    };
                    let weights = codec::get_matrix(buf, "dense weights")?;
                    let bias = codec::get_vector(buf, "dense bias")?;
                    if weights.rows() != bias.len() {
                        return Err(PersistError::Format(format!(
                            "layer {i}: weights rows {} != bias {}",
                            weights.rows(),
                            bias.len()
                        )));
                    }
                    layers.push(Layer::Dense(DenseLayer::new(weights, bias, activation)));
                }
                1 => {
                    let piece_count = codec::get_len(buf, "maxout piece count")?;
                    if piece_count < 2 {
                        return Err(PersistError::Format(format!(
                            "layer {i}: maxout needs >= 2 pieces, got {piece_count}"
                        )));
                    }
                    let mut pieces = Vec::with_capacity(piece_count);
                    for _ in 0..piece_count {
                        pieces.push(codec::get_matrix(buf, "maxout piece")?);
                    }
                    let mut biases = Vec::with_capacity(piece_count);
                    for _ in 0..piece_count {
                        biases.push(codec::get_vector(buf, "maxout bias")?);
                    }
                    let (r, cc) = (pieces[0].rows(), pieces[0].cols());
                    let consistent = pieces.iter().all(|p| p.rows() == r && p.cols() == cc)
                        && biases.iter().all(|b| b.len() == r);
                    if !consistent {
                        return Err(PersistError::Format(format!(
                            "layer {i}: inconsistent maxout piece shapes"
                        )));
                    }
                    layers.push(Layer::MaxOut(MaxOutLayer::new(pieces, biases)));
                }
                t => return Err(PersistError::Format(format!("layer {i}: unknown tag {t}"))),
            }
        }
        if !data.is_empty() {
            return Err(PersistError::Format(format!(
                "{} trailing bytes after network",
                data.len()
            )));
        }
        // Re-validate the structural invariants (dimension chaining, linear
        // output layer) before handing to the panicking constructor.
        if layers.is_empty() {
            return Err(PersistError::Format("zero layers".into()));
        }
        for w in layers.windows(2) {
            if w[0].output_dim() != w[1].input_dim() {
                return Err(PersistError::Format(format!(
                    "layer dimensions do not chain: {} -> {}",
                    w[0].output_dim(),
                    w[1].input_dim()
                )));
            }
        }
        match layers.last().expect("non-empty") {
            Layer::Dense(d) if d.activation == Activation::Identity => {}
            _ => {
                return Err(PersistError::Format(
                    "final layer must be linear dense".into(),
                ))
            }
        }
        Ok(Plnn::new(layers))
    }

    /// Writes the network to a file.
    ///
    /// # Errors
    /// I/O errors.
    pub fn save(&self, path: &Path) -> Result<(), PersistError> {
        fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Loads a network from a file.
    ///
    /// # Errors
    /// I/O and format errors.
    pub fn load(path: &Path) -> Result<Self, PersistError> {
        let data = fs::read(path)?;
        Self::from_bytes(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_api::PredictionApi;
    use openapi_linalg::{Matrix, Vector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_net() -> Plnn {
        let mut rng = StdRng::seed_from_u64(3);
        Plnn::mlp(&[5, 7, 4], Activation::ReLU, &mut rng)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let net = sample_net();
        let back = Plnn::from_bytes(&net.to_bytes()).unwrap();
        assert_eq!(net, back);
        // And behaviour, not just structure.
        let x = [0.1, -0.4, 0.9, 0.0, 0.3];
        assert_eq!(net.predict(&x), back.predict(&x));
    }

    #[test]
    fn leaky_and_maxout_layers_round_trip() {
        let mo = MaxOutLayer::new(
            vec![
                Matrix::from_rows(&[&[1.0, 0.5], &[0.0, -1.0]]).unwrap(),
                Matrix::from_rows(&[&[-1.0, 0.25], &[2.0, 0.0]]).unwrap(),
            ],
            vec![Vector(vec![0.1, 0.2]), Vector(vec![-0.1, 0.0])],
        );
        let hidden = DenseLayer::new(
            Matrix::from_rows(&[&[0.5, -0.5], &[1.0, 1.0], &[0.0, 2.0]]).unwrap(),
            Vector::zeros(3),
            Activation::LeakyReLU(0.07),
        );
        let out = DenseLayer::new(
            Matrix::from_rows(&[&[1.0, 0.0, -1.0], &[0.0, 1.0, 1.0]]).unwrap(),
            Vector(vec![0.5, -0.5]),
            Activation::Identity,
        );
        let net = Plnn::new(vec![
            Layer::MaxOut(mo),
            Layer::Dense(hidden),
            Layer::Dense(out),
        ]);
        let back = Plnn::from_bytes(&net.to_bytes()).unwrap();
        assert_eq!(net, back);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_net().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Plnn::from_bytes(&bytes),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample_net().to_bytes();
        bytes[4] = 0xff;
        assert!(Plnn::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = sample_net().to_bytes();
        // Chop at a few representative offsets; none may panic.
        for cut in [3usize, 5, 10, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Plnn::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample_net().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Plnn::from_bytes(&bytes),
            Err(PersistError::Format(m)) if m.contains("trailing")
        ));
    }

    #[test]
    fn save_and_load_file() {
        let dir = std::env::temp_dir().join("openapi_nn_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.oann");
        let net = sample_net();
        net.save(&path).unwrap();
        let back = Plnn::load(&path).unwrap();
        assert_eq!(net, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let r = Plnn::load(Path::new("/nonexistent/openapi/net.oann"));
        assert!(matches!(r, Err(PersistError::Io(_))));
    }
}
