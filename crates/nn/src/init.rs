//! Deterministic weight initialization.

use openapi_linalg::{Matrix, Vector};
use rand::Rng;

/// He (Kaiming) initialization for ReLU-family layers: entries drawn from a
/// uniform distribution with variance `2 / fan_in`.
///
/// Uniform rather than Gaussian keeps the implementation dependency-light
/// (no Box–Muller needed) with the same variance scaling that makes deep
/// ReLU stacks trainable.
pub fn he_uniform<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    // Var(U(-a, a)) = a²/3 = 2/fan_in  ⇒  a = sqrt(6 / fan_in).
    let a = (6.0 / cols as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
}

/// Xavier/Glorot initialization for linear output layers:
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
}

/// Zero bias vector (the standard choice for both layer kinds).
pub fn zero_bias(n: usize) -> Vector {
    Vector::zeros(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn he_bounds_and_determinism() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = he_uniform(16, 64, &mut rng);
        let bound = (6.0f64 / 64.0).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() < bound));

        let mut rng2 = StdRng::seed_from_u64(1);
        let m2 = he_uniform(16, 64, &mut rng2);
        assert_eq!(m, m2);
    }

    #[test]
    fn he_variance_is_near_two_over_fanin() {
        let mut rng = StdRng::seed_from_u64(2);
        let fan_in = 256;
        let m = he_uniform(64, fan_in, &mut rng);
        let n = (64 * fan_in) as f64;
        let mean: f64 = m.as_slice().iter().sum::<f64>() / n;
        let var: f64 = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n;
        let target = 2.0 / fan_in as f64;
        assert!(
            (var - target).abs() < target * 0.15,
            "var {var} vs {target}"
        );
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = xavier_uniform(10, 30, &mut rng);
        let bound = (6.0f64 / 40.0).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() < bound));
    }

    #[test]
    fn zero_bias_is_zero() {
        assert_eq!(zero_bias(4).as_slice(), &[0.0; 4]);
    }
}
