//! Piecewise linear elementwise activations (the "ReLU family").

/// An elementwise, piecewise linear activation function.
///
/// Only piecewise linear activations are admitted — that restriction is what
/// makes the whole network a PLM and the OpenBox extraction exact. Smooth
/// activations (sigmoid, tanh) are intentionally unrepresentable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// `max(0, x)` — the paper's default hidden activation.
    ReLU,
    /// `x` if `x > 0` else `alpha·x` — PReLU/LeakyReLU family member.
    LeakyReLU(f64),
    /// The identity — used by output layers (logits feed softmax).
    Identity,
}

impl Activation {
    /// Applies the activation to one value.
    #[inline]
    pub fn apply(&self, x: f64) -> f64 {
        match *self {
            Activation::ReLU => x.max(0.0),
            Activation::LeakyReLU(alpha) => {
                if x > 0.0 {
                    x
                } else {
                    alpha * x
                }
            }
            Activation::Identity => x,
        }
    }

    /// The local slope at `x` — the diagonal entry of the activation's mask
    /// matrix in the OpenBox composition, and the backprop derivative.
    ///
    /// At the non-differentiable kink (`x = 0`) the inactive-side slope is
    /// returned; inputs sit exactly on a kink with probability 0.
    #[inline]
    pub fn slope(&self, x: f64) -> f64 {
        match *self {
            Activation::ReLU => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyReLU(alpha) => {
                if x > 0.0 {
                    1.0
                } else {
                    alpha
                }
            }
            Activation::Identity => 1.0,
        }
    }

    /// Whether the unit counts as "active" for the activation pattern
    /// (region identity). Identity units have no kink and contribute no
    /// pattern bit.
    #[inline]
    pub fn is_active(&self, x: f64) -> bool {
        x > 0.0
    }

    /// `true` when this activation contributes a bit to the region pattern.
    #[inline]
    pub fn has_kink(&self) -> bool {
        !matches!(self, Activation::Identity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_values_and_slopes() {
        let a = Activation::ReLU;
        assert_eq!(a.apply(3.0), 3.0);
        assert_eq!(a.apply(-2.0), 0.0);
        assert_eq!(a.slope(3.0), 1.0);
        assert_eq!(a.slope(-2.0), 0.0);
        assert_eq!(a.slope(0.0), 0.0);
    }

    #[test]
    fn leaky_relu_values_and_slopes() {
        let a = Activation::LeakyReLU(0.1);
        assert_eq!(a.apply(5.0), 5.0);
        assert!((a.apply(-5.0) + 0.5).abs() < 1e-12);
        assert_eq!(a.slope(5.0), 1.0);
        assert_eq!(a.slope(-5.0), 0.1);
    }

    #[test]
    fn identity_is_linear_everywhere() {
        let a = Activation::Identity;
        assert_eq!(a.apply(-7.0), -7.0);
        assert_eq!(a.slope(123.0), 1.0);
        assert!(!a.has_kink());
    }

    #[test]
    fn activation_consistency_apply_equals_slope_times_x() {
        // For these homogeneous activations, apply(x) == slope(x) * x
        // everywhere (the defining property of a piecewise linear function
        // through the origin).
        for a in [
            Activation::ReLU,
            Activation::LeakyReLU(0.2),
            Activation::Identity,
        ] {
            for x in [-3.0, -0.5, 0.0, 0.5, 3.0] {
                assert!((a.apply(x) - a.slope(x) * x).abs() < 1e-12, "{a:?} at {x}");
            }
        }
    }

    #[test]
    fn pattern_bits() {
        assert!(Activation::ReLU.has_kink());
        assert!(Activation::LeakyReLU(0.01).has_kink());
        assert!(Activation::ReLU.is_active(0.1));
        assert!(!Activation::ReLU.is_active(-0.1));
        assert!(!Activation::ReLU.is_active(0.0));
    }
}
