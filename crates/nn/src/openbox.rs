//! OpenBox extraction: the exact locally linear classifier of a PLNN.
//!
//! Within the set of inputs that share one *activation pattern* (the on/off
//! state of every ReLU unit and the winning piece of every MaxOut unit),
//! each layer is affine, so the whole network collapses to a single affine
//! map `logits = A·x + c`. Composing the masked layers yields `A` and `c`
//! exactly — this is the construction of Chu et al. (KDD 2018) that the
//! paper uses as its PLNN ground-truth oracle, and it also gives exact input
//! gradients (`∂z_c/∂x` is row `c` of `A`).
//!
//! The composition runs in `O(Σ_l n_l · n_{l-1} · d)` time — polynomial, as
//! the paper notes — and is implemented with one running `(A, c)` pair
//! updated layer by layer.

use crate::network::{ForwardTrace, Layer, LayerTrace, Plnn};
use openapi_api::{GradientOracle, GroundTruthOracle, LocalLinearModel, PredictionApi, RegionId};
use openapi_linalg::{Matrix, Vector};

impl Plnn {
    /// The activation pattern of `x`, packed into a [`RegionId`].
    ///
    /// For dense PWL layers each unit contributes one bit (`pre > 0`); for
    /// MaxOut layers each unit contributes its winning piece index encoded
    /// in `ceil(log2 k)` bits. Identity-activation layers contribute
    /// nothing (they have no kink).
    ///
    /// # Panics
    /// Panics when `x.len() != dim()`.
    pub fn activation_pattern(&self, x: &[f64]) -> RegionId {
        let trace = self.forward_trace(x);
        let mut bits: Vec<bool> = Vec::new();
        for (layer, lt) in self.layers().iter().zip(trace.layers.iter()) {
            match (layer, lt) {
                (Layer::Dense(dense), LayerTrace::Dense { pre }) => {
                    if dense.activation.has_kink() {
                        bits.extend(pre.iter().map(|&a| dense.activation.is_active(a)));
                    }
                }
                (Layer::MaxOut(mo), LayerTrace::MaxOut { selection }) => {
                    let width = usize::BITS - (mo.num_pieces() - 1).leading_zeros();
                    for &k in selection {
                        for bit in 0..width {
                            bits.push((k >> bit) & 1 == 1);
                        }
                    }
                }
                _ => unreachable!("trace aligned with layers"),
            }
        }
        RegionId::from_bits(bits)
    }

    /// The exact affine map `logits = A·x + c` valid on `x`'s region,
    /// returned as a [`LocalLinearModel`] (`W = Aᵀ ∈ R^{d×C}`, `b = c`).
    ///
    /// # Panics
    /// Panics when `x.len() != dim()`.
    pub fn local_linear_map(&self, x: &[f64]) -> LocalLinearModel {
        let trace = self.forward_trace(x);
        let (a, c) = self.compose_affine(&trace);
        LocalLinearModel::new(a.transpose(), c)
    }

    /// Composes the masked affine layers along `trace` into `(A, c)` with
    /// `A ∈ R^{C×d}`.
    fn compose_affine(&self, trace: &ForwardTrace) -> (Matrix, Vector) {
        let d = self.dim();
        // Running map: z_l = A·x + c, starting from the identity.
        let mut a = Matrix::identity(d);
        let mut c = Vector::zeros(d);
        for (layer, lt) in self.layers().iter().zip(trace.layers.iter()) {
            match (layer, lt) {
                (Layer::Dense(dense), LayerTrace::Dense { pre }) => {
                    // Masked affine: z = M(W·prev + b) with M = diag(slope).
                    let mut new_a = dense.weights.matmul(&a).expect("layer dims chain");
                    let mut new_c = dense
                        .weights
                        .matvec(c.as_slice())
                        .expect("layer dims chain");
                    new_c += &dense.bias;
                    for (j, &p) in pre.iter().enumerate() {
                        let slope = dense.activation.slope(p);
                        // float: slope() returns literal 1.0 on the identity
                        // piece; skipping the scale for bit-exact identity is
                        // the point (multiplying by 1.0 could flip -0.0).
                        if slope != 1.0 {
                            for v in new_a.row_mut(j) {
                                *v *= slope;
                            }
                            new_c[j] *= slope;
                        }
                    }
                    a = new_a;
                    c = new_c;
                }
                (Layer::MaxOut(mo), LayerTrace::MaxOut { selection }) => {
                    // Each unit j uses row j of its winning piece.
                    let out_dim = mo.output_dim();
                    let mut new_a = Matrix::zeros(out_dim, d);
                    let mut new_c = Vector::zeros(out_dim);
                    for (j, &k) in selection.iter().enumerate() {
                        let wrow = mo.pieces[k].row(j);
                        // new_a[j, :] = wrow · a ; new_c[j] = wrow · c + b_k[j]
                        for (col, out_v) in new_a.row_mut(j).iter_mut().enumerate() {
                            let mut s = 0.0;
                            for (i, &w) in wrow.iter().enumerate() {
                                s += w * a[(i, col)];
                            }
                            *out_v = s;
                        }
                        let mut s = mo.biases[k][j];
                        for (i, &w) in wrow.iter().enumerate() {
                            s += w * c[i];
                        }
                        new_c[j] = s;
                    }
                    a = new_a;
                    c = new_c;
                }
                _ => unreachable!("trace aligned with layers"),
            }
        }
        (a, c)
    }
}

impl GroundTruthOracle for Plnn {
    fn region_id(&self, x: &[f64]) -> RegionId {
        self.activation_pattern(x)
    }

    fn local_model(&self, x: &[f64]) -> LocalLinearModel {
        self.local_linear_map(x)
    }
}

impl GradientOracle for Plnn {
    fn logit_gradient(&self, x: &[f64], class: usize) -> Vector {
        assert!(class < self.num_classes(), "class out of range");
        // Exact: column `class` of W = row `class` of A.
        self.local_linear_map(x).weights.col(class)
    }

    fn prob_gradient(&self, x: &[f64], class: usize) -> Vector {
        assert!(class < self.num_classes(), "class out of range");
        // One OpenBox composition serves every class: the default trait
        // implementation would re-extract the local map per logit, a C-fold
        // waste for deep nets.
        let lm = self.local_linear_map(x);
        let probs = openapi_api::softmax(lm.logits(x).as_slice());
        let yc = probs[class];
        let mut grad = Vector::zeros(self.dim());
        for j in 0..self.num_classes() {
            let coef = yc * (if j == class { 1.0 } else { 0.0 } - probs[j]);
            if coef != 0.0 {
                grad.axpy(coef, &lm.weights.col(j))
                    .expect("dimension invariant");
            }
        }
        grad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::layer::DenseLayer;
    use crate::maxout::MaxOutLayer;
    use crate::network::Layer;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_net(seed: u64, dims: &[usize], act: Activation) -> Plnn {
        let mut rng = StdRng::seed_from_u64(seed);
        Plnn::mlp(dims, act, &mut rng)
    }

    fn random_point(rng: &mut StdRng, d: usize) -> Vec<f64> {
        (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn local_map_reproduces_logits_at_the_point() {
        let net = random_net(1, &[5, 8, 6, 3], Activation::ReLU);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let x = random_point(&mut rng, 5);
            let lm = net.local_linear_map(&x);
            let direct = net.logits(&x);
            let via_map = lm.logits(&x);
            for c in 0..3 {
                assert!(
                    (direct[c] - via_map[c]).abs() < 1e-10,
                    "class {c}: {} vs {}",
                    direct[c],
                    via_map[c]
                );
            }
        }
    }

    #[test]
    fn local_map_is_valid_across_the_whole_region() {
        let net = random_net(3, &[4, 10, 3], Activation::ReLU);
        let mut rng = StdRng::seed_from_u64(4);
        let x = random_point(&mut rng, 4);
        let lm = net.local_linear_map(&x);
        let region = net.activation_pattern(&x);
        // Probe nearby points; wherever the pattern matches, the SAME affine
        // map must reproduce the logits (that is the definition of the
        // locally linear region).
        let mut same_region_checked = 0;
        for _ in 0..200 {
            let probe: Vec<f64> = x.iter().map(|v| v + rng.gen_range(-0.05..0.05)).collect();
            if net.activation_pattern(&probe) == region {
                same_region_checked += 1;
                let direct = net.logits(&probe);
                let via_map = lm.logits(&probe);
                for c in 0..3 {
                    assert!((direct[c] - via_map[c]).abs() < 1e-9);
                }
            }
        }
        assert!(same_region_checked > 10, "test needs same-region probes");
    }

    #[test]
    fn different_regions_have_different_patterns_and_maps() {
        let net = random_net(5, &[3, 12, 8, 2], Activation::ReLU);
        let mut rng = StdRng::seed_from_u64(6);
        // Find two points with different patterns (overwhelmingly likely).
        let a = random_point(&mut rng, 3);
        let mut b = random_point(&mut rng, 3);
        let mut guard = 0;
        while net.activation_pattern(&b) == net.activation_pattern(&a) {
            b = random_point(&mut rng, 3);
            guard += 1;
            assert!(guard < 100, "could not find distinct regions");
        }
        let la = net.local_linear_map(&a);
        let lb = net.local_linear_map(&b);
        assert_ne!(la, lb, "distinct patterns should give distinct maps");
    }

    #[test]
    fn logit_gradient_matches_finite_differences() {
        let net = random_net(7, &[4, 9, 3], Activation::ReLU);
        let mut rng = StdRng::seed_from_u64(8);
        let x = random_point(&mut rng, 4);
        let h = 1e-7;
        for c in 0..3 {
            let g = net.logit_gradient(&x, c);
            for i in 0..4 {
                let mut xp = x.clone();
                xp[i] += h;
                let mut xm = x.clone();
                xm[i] -= h;
                let fd = (net.logits(&xp)[c] - net.logits(&xm)[c]) / (2.0 * h);
                assert!(
                    (g[i] - fd).abs() < 1e-5,
                    "class {c} coord {i}: {} vs {fd}",
                    g[i]
                );
            }
        }
    }

    #[test]
    fn prob_gradient_matches_finite_differences() {
        let net = random_net(9, &[3, 7, 3], Activation::ReLU);
        let mut rng = StdRng::seed_from_u64(10);
        let x = random_point(&mut rng, 3);
        let h = 1e-7;
        for c in 0..3 {
            let g = net.prob_gradient(&x, c);
            for i in 0..3 {
                let mut xp = x.clone();
                xp[i] += h;
                let mut xm = x.clone();
                xm[i] -= h;
                let fd = (net.predict(&xp)[c] - net.predict(&xm)[c]) / (2.0 * h);
                assert!((g[i] - fd).abs() < 1e-5, "class {c} coord {i}");
            }
        }
    }

    #[test]
    fn leaky_relu_region_map_is_exact() {
        let net = random_net(11, &[4, 8, 2], Activation::LeakyReLU(0.1));
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..10 {
            let x = random_point(&mut rng, 4);
            let lm = net.local_linear_map(&x);
            let direct = net.logits(&x);
            let via = lm.logits(&x);
            for c in 0..2 {
                assert!((direct[c] - via[c]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn maxout_region_map_is_exact() {
        let mut rng = StdRng::seed_from_u64(13);
        let pieces = 3;
        let mo = MaxOutLayer::new(
            (0..pieces)
                .map(|_| Matrix::from_fn(5, 4, |_, _| rng.gen_range(-1.0..1.0)))
                .collect(),
            (0..pieces)
                .map(|_| Vector((0..5).map(|_| rng.gen_range(-0.5..0.5)).collect()))
                .collect(),
        );
        let out = DenseLayer::new(
            Matrix::from_fn(2, 5, |_, _| rng.gen_range(-1.0..1.0)),
            Vector::zeros(2),
            Activation::Identity,
        );
        let net = Plnn::new(vec![Layer::MaxOut(mo), Layer::Dense(out)]);
        for _ in 0..20 {
            let x = random_point(&mut rng, 4);
            let lm = net.local_linear_map(&x);
            let direct = net.logits(&x);
            let via = lm.logits(&x);
            for c in 0..2 {
                assert!((direct[c] - via[c]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn pattern_bit_budget_counts_only_kinked_units() {
        let net = random_net(14, &[3, 6, 4, 2], Activation::ReLU);
        let mut rng = StdRng::seed_from_u64(15);
        let x = random_point(&mut rng, 3);
        let id = net.activation_pattern(&x);
        // 6 + 4 = 10 kink bits (output layer is Identity): packed into one
        // word plus the length word.
        assert_eq!(id.0.len(), 2);
        assert_eq!(id.0[1], 10);
    }

    #[test]
    fn decision_features_from_ground_truth_are_region_constant() {
        let net = random_net(16, &[4, 10, 3], Activation::ReLU);
        let mut rng = StdRng::seed_from_u64(17);
        let x = random_point(&mut rng, 4);
        let region = net.activation_pattern(&x);
        let d0 = net.local_linear_map(&x).decision_features(0);
        for _ in 0..100 {
            let probe: Vec<f64> = x.iter().map(|v| v + rng.gen_range(-0.02..0.02)).collect();
            if net.activation_pattern(&probe) == region {
                let d0p = net.local_linear_map(&probe).decision_features(0);
                assert!(
                    d0.l1_distance(&d0p).unwrap() < 1e-12,
                    "Dc must be constant per region"
                );
            }
        }
    }
}
