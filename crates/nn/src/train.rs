//! From-scratch mini-batch training: softmax cross-entropy, backprop,
//! SGD-with-momentum and Adam.
//!
//! The paper trains its PLNN with "standard back-propagation"; this module
//! is that substrate. It is deliberately a plain, single-threaded
//! implementation — the repository's correctness-critical surface is the
//! interpretation layer, and the trainer only needs to produce accurate
//! PLMs deterministically from a seed.

use crate::activation::Activation;
use crate::network::{Layer, LayerTrace, Plnn};
use openapi_api::{softmax, PredictionApi};
use openapi_data::Dataset;
use openapi_linalg::{Matrix, Vector};
use rand::seq::SliceRandom;
use rand::Rng;

/// Gradient-descent flavour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// Stochastic gradient descent with classical momentum.
    Sgd {
        /// Learning rate.
        lr: f64,
        /// Momentum coefficient in `[0, 1)`.
        momentum: f64,
    },
    /// Adam (Kingma & Ba) with bias correction.
    Adam {
        /// Learning rate.
        lr: f64,
        /// First-moment decay (typically 0.9).
        beta1: f64,
        /// Second-moment decay (typically 0.999).
        beta2: f64,
        /// Numerical floor (typically 1e-8).
        eps: f64,
    },
}

impl Optimizer {
    /// Adam with the standard hyperparameters and the given learning rate.
    pub fn adam(lr: f64) -> Self {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Plain SGD with momentum 0.9.
    pub fn sgd(lr: f64) -> Self {
        Optimizer::Sgd { lr, momentum: 0.9 }
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of full passes over the training data.
    pub epochs: usize,
    /// Mini-batch size (clamped to the dataset size).
    pub batch_size: usize,
    /// Update rule.
    pub optimizer: Optimizer,
    /// L2 weight decay applied to weight matrices (not biases); 0 disables.
    pub weight_decay: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 64,
            optimizer: Optimizer::adam(1e-3),
            weight_decay: 0.0,
        }
    }
}

/// What [`train`] reports back.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean cross-entropy per epoch.
    pub epoch_losses: Vec<f64>,
    /// Accuracy on the training set after the final epoch.
    pub final_train_accuracy: f64,
}

/// Per-layer gradient accumulator, shape-matched to the layer stack.
#[derive(Debug, Clone)]
enum LayerGrad {
    Dense { dw: Matrix, db: Vector },
    MaxOut { dws: Vec<Matrix>, dbs: Vec<Vector> },
}

impl LayerGrad {
    fn zeros_like(layer: &Layer) -> Self {
        match layer {
            Layer::Dense(l) => LayerGrad::Dense {
                dw: Matrix::zeros(l.weights.rows(), l.weights.cols()),
                db: Vector::zeros(l.bias.len()),
            },
            Layer::MaxOut(l) => LayerGrad::MaxOut {
                dws: l
                    .pieces
                    .iter()
                    .map(|p| Matrix::zeros(p.rows(), p.cols()))
                    .collect(),
                dbs: l.biases.iter().map(|b| Vector::zeros(b.len())).collect(),
            },
        }
    }

    fn reset(&mut self) {
        match self {
            LayerGrad::Dense { dw, db } => {
                dw.as_mut_slice().fill(0.0);
                db.as_mut_slice().fill(0.0);
            }
            LayerGrad::MaxOut { dws, dbs } => {
                for m in dws {
                    m.as_mut_slice().fill(0.0);
                }
                for v in dbs {
                    v.as_mut_slice().fill(0.0);
                }
            }
        }
    }
}

/// Cross-entropy of a probability vector against an integer label, with the
/// probability clamped away from zero so the loss stays finite.
pub fn cross_entropy(probs: &Vector, label: usize) -> f64 {
    -probs[label].max(1e-300).ln()
}

/// Fraction of instances whose argmax prediction matches the label.
pub fn accuracy<M: PredictionApi>(model: &M, data: &Dataset) -> f64 {
    let correct = data
        .iter()
        .filter(|(x, l)| model.predict_label(x.as_slice()) == *l)
        .count();
    correct as f64 / data.len() as f64
}

/// Backprop for one example; accumulates into `grads`, returns the loss.
fn backprop_one(net: &Plnn, x: &Vector, label: usize, grads: &mut [LayerGrad]) -> f64 {
    let trace = net.forward_trace(x.as_slice());
    let probs = softmax(trace.logits.as_slice());
    let loss = cross_entropy(&probs, label);

    // dL/d(logits) for softmax + cross-entropy.
    let mut g = probs;
    g[label] -= 1.0;

    for (idx, layer) in net.layers().iter().enumerate().rev() {
        let input = &trace.inputs[idx];
        match (layer, &trace.layers[idx], &mut grads[idx]) {
            (Layer::Dense(dense), LayerTrace::Dense { pre }, LayerGrad::Dense { dw, db }) => {
                // delta = g ⊙ act'(pre)
                let mut delta = g;
                if dense.activation != Activation::Identity {
                    for (d, &p) in delta.iter_mut().zip(pre.iter()) {
                        *d *= dense.activation.slope(p);
                    }
                }
                // Rank-1 accumulate: dW += delta ⊗ inputᵀ, db += delta.
                for (r, &dr) in delta.iter().enumerate() {
                    if dr != 0.0 {
                        for (w, &xi) in dw.row_mut(r).iter_mut().zip(input.iter()) {
                            *w += dr * xi;
                        }
                    }
                }
                db.axpy(1.0, &delta).expect("shape invariant");
                // Propagate: g = Wᵀ delta.
                g = dense
                    .weights
                    .matvec_t(delta.as_slice())
                    .expect("shape invariant");
            }
            (
                Layer::MaxOut(mo),
                LayerTrace::MaxOut { selection },
                LayerGrad::MaxOut { dws, dbs },
            ) => {
                let mut g_in = Vector::zeros(mo.input_dim());
                for (j, (&k, &gj)) in selection.iter().zip(g.iter()).enumerate() {
                    if gj == 0.0 {
                        continue;
                    }
                    for (w, &xi) in dws[k].row_mut(j).iter_mut().zip(input.iter()) {
                        *w += gj * xi;
                    }
                    dbs[k][j] += gj;
                    for (gi, &w) in g_in.iter_mut().zip(mo.pieces[k].row(j).iter()) {
                        *gi += gj * w;
                    }
                }
                g = g_in;
            }
            _ => unreachable!("trace/grads aligned with layers"),
        }
    }
    loss
}

/// Optimizer state: one flat buffer pair (first/second moment or velocity)
/// per parameter tensor, in layer order.
struct OptState {
    first: Vec<Vec<f64>>,
    second: Vec<Vec<f64>>,
    step: u64,
}

impl OptState {
    fn new(net: &Plnn) -> Self {
        let mut sizes = Vec::new();
        for layer in net.layers() {
            match layer {
                Layer::Dense(l) => {
                    sizes.push(l.weights.rows() * l.weights.cols());
                    sizes.push(l.bias.len());
                }
                Layer::MaxOut(l) => {
                    for p in &l.pieces {
                        sizes.push(p.rows() * p.cols());
                    }
                    for b in &l.biases {
                        sizes.push(b.len());
                    }
                }
            }
        }
        OptState {
            first: sizes.iter().map(|&s| vec![0.0; s]).collect(),
            second: sizes.iter().map(|&s| vec![0.0; s]).collect(),
            step: 0,
        }
    }
}

/// Applies one optimizer step to a single parameter tensor.
#[allow(clippy::too_many_arguments)]
fn update_tensor(
    opt: &Optimizer,
    params: &mut [f64],
    grads: &[f64],
    m1: &mut [f64],
    m2: &mut [f64],
    scale: f64,
    weight_decay: f64,
    step: u64,
) {
    match *opt {
        Optimizer::Sgd { lr, momentum } => {
            for i in 0..params.len() {
                let g = grads[i] * scale + weight_decay * params[i];
                m1[i] = momentum * m1[i] - lr * g;
                params[i] += m1[i];
            }
        }
        Optimizer::Adam {
            lr,
            beta1,
            beta2,
            eps,
        } => {
            let bc1 = 1.0 - beta1.powi(step as i32);
            let bc2 = 1.0 - beta2.powi(step as i32);
            for i in 0..params.len() {
                let g = grads[i] * scale + weight_decay * params[i];
                m1[i] = beta1 * m1[i] + (1.0 - beta1) * g;
                m2[i] = beta2 * m2[i] + (1.0 - beta2) * g * g;
                let mhat = m1[i] / bc1;
                let vhat = m2[i] / bc2;
                params[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }
}

/// Applies the accumulated batch gradients to the network.
fn apply_update(
    net: &mut Plnn,
    grads: &[LayerGrad],
    state: &mut OptState,
    opt: &Optimizer,
    batch_len: usize,
    weight_decay: f64,
) {
    state.step += 1;
    let scale = 1.0 / batch_len as f64;
    let mut t = 0usize;
    for (layer, grad) in net.layers_mut().iter_mut().zip(grads.iter()) {
        match (layer, grad) {
            (Layer::Dense(l), LayerGrad::Dense { dw, db }) => {
                let (m1, m2) = (&mut state.first[t], &mut state.second[t]);
                update_tensor(
                    opt,
                    l.weights.as_mut_slice(),
                    dw.as_slice(),
                    m1,
                    m2,
                    scale,
                    weight_decay,
                    state.step,
                );
                t += 1;
                let (m1, m2) = (&mut state.first[t], &mut state.second[t]);
                update_tensor(
                    opt,
                    l.bias.as_mut_slice(),
                    db.as_slice(),
                    m1,
                    m2,
                    scale,
                    0.0,
                    state.step,
                );
                t += 1;
            }
            (Layer::MaxOut(l), LayerGrad::MaxOut { dws, dbs }) => {
                for (p, dp) in l.pieces.iter_mut().zip(dws.iter()) {
                    let (m1, m2) = (&mut state.first[t], &mut state.second[t]);
                    update_tensor(
                        opt,
                        p.as_mut_slice(),
                        dp.as_slice(),
                        m1,
                        m2,
                        scale,
                        weight_decay,
                        state.step,
                    );
                    t += 1;
                }
                for (b, db) in l.biases.iter_mut().zip(dbs.iter()) {
                    let (m1, m2) = (&mut state.first[t], &mut state.second[t]);
                    update_tensor(
                        opt,
                        b.as_mut_slice(),
                        db.as_slice(),
                        m1,
                        m2,
                        scale,
                        0.0,
                        state.step,
                    );
                    t += 1;
                }
            }
            _ => unreachable!("grads aligned with layers"),
        }
    }
}

/// Trains `net` in place on `data`; all randomness (batch order) comes from
/// `rng`, so a fixed seed reproduces the trained model bit-for-bit.
///
/// # Panics
/// Panics when `data.dim() != net.dim()`, `data.num_classes() >
/// net.num_classes()`, or `cfg.batch_size == 0` / `cfg.epochs == 0`.
pub fn train<R: Rng>(
    net: &mut Plnn,
    data: &Dataset,
    cfg: &TrainConfig,
    rng: &mut R,
) -> TrainReport {
    assert_eq!(data.dim(), net.dim(), "data/network dimension mismatch");
    assert!(
        data.num_classes() <= net.num_classes(),
        "network has fewer outputs than classes"
    );
    assert!(
        cfg.batch_size > 0 && cfg.epochs > 0,
        "degenerate train config"
    );

    let mut grads: Vec<LayerGrad> = net.layers().iter().map(LayerGrad::zeros_like).collect();
    let mut state = OptState::new(net);
    let mut indices: Vec<usize> = (0..data.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    for _ in 0..cfg.epochs {
        indices.shuffle(rng);
        let mut epoch_loss = 0.0;
        for batch in indices.chunks(cfg.batch_size.min(data.len())) {
            for g in &mut grads {
                g.reset();
            }
            for &i in batch {
                epoch_loss += backprop_one(net, data.instance(i), data.label(i), &mut grads);
            }
            apply_update(
                net,
                &grads,
                &mut state,
                &cfg.optimizer,
                batch.len(),
                cfg.weight_decay,
            );
        }
        epoch_losses.push(epoch_loss / data.len() as f64);
    }

    let final_train_accuracy = accuracy(net, data);
    TrainReport {
        epoch_losses,
        final_train_accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::DenseLayer;
    use crate::maxout::MaxOutLayer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two well-separated Gaussian-ish blobs in 2-D.
    fn blobs(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let cx = if class == 0 { -1.0 } else { 1.0 };
            xs.push(Vector(vec![
                cx + rng.gen_range(-0.3..0.3),
                cx + rng.gen_range(-0.3..0.3),
            ]));
            ys.push(class);
        }
        Dataset::new(xs, ys, 2).unwrap()
    }

    /// XOR-ish dataset that a linear model cannot fit.
    fn xor(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a = rng.gen_range(-1.0..1.0f64);
            let b = rng.gen_range(-1.0..1.0f64);
            xs.push(Vector(vec![a, b]));
            ys.push(usize::from(a * b > 0.0));
        }
        Dataset::new(xs, ys, 2).unwrap()
    }

    #[test]
    fn cross_entropy_basics() {
        let p = Vector(vec![0.5, 0.5]);
        assert!((cross_entropy(&p, 0) - 0.5f64.recip().ln()).abs() < 1e-12);
        let certain = Vector(vec![1.0, 0.0]);
        assert_eq!(cross_entropy(&certain, 0), 0.0);
        assert!(cross_entropy(&certain, 1).is_finite());
    }

    #[test]
    fn backprop_matches_finite_difference_gradients() {
        // Numerical check of the full gradient on a tiny network.
        let mut rng = StdRng::seed_from_u64(21);
        let net = Plnn::mlp(&[3, 4, 2], Activation::ReLU, &mut rng);
        let x = Vector(vec![0.3, -0.5, 0.8]);
        let label = 1;

        let mut grads: Vec<LayerGrad> = net.layers().iter().map(LayerGrad::zeros_like).collect();
        let _ = backprop_one(&net, &x, label, &mut grads);

        let loss_of = |n: &Plnn| {
            let p = softmax(n.logits(x.as_slice()).as_slice());
            cross_entropy(&p, label)
        };
        let h = 1e-6;
        // Check a handful of weight coordinates in each layer.
        for (li, grad) in grads.iter().enumerate() {
            if let LayerGrad::Dense { dw, db } = grad {
                for (r, c) in [(0usize, 0usize), (1, 2.min(dw.cols() - 1))] {
                    let mut plus = net.clone();
                    let mut minus = net.clone();
                    if let Layer::Dense(l) = &mut plus.layers_mut()[li] {
                        l.weights[(r, c)] += h;
                    }
                    if let Layer::Dense(l) = &mut minus.layers_mut()[li] {
                        l.weights[(r, c)] -= h;
                    }
                    let fd = (loss_of(&plus) - loss_of(&minus)) / (2.0 * h);
                    assert!(
                        (dw[(r, c)] - fd).abs() < 1e-5,
                        "layer {li} w({r},{c}): {} vs fd {fd}",
                        dw[(r, c)]
                    );
                }
                // One bias coordinate.
                let mut plus = net.clone();
                let mut minus = net.clone();
                if let Layer::Dense(l) = &mut plus.layers_mut()[li] {
                    l.bias[0] += h;
                }
                if let Layer::Dense(l) = &mut minus.layers_mut()[li] {
                    l.bias[0] -= h;
                }
                let fd = (loss_of(&plus) - loss_of(&minus)) / (2.0 * h);
                assert!((db[0] - fd).abs() < 1e-5, "layer {li} b(0)");
            }
        }
    }

    #[test]
    fn maxout_backprop_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(33);
        let mo = MaxOutLayer::new(
            vec![
                Matrix::from_fn(3, 2, |_, _| rng.gen_range(-1.0..1.0)),
                Matrix::from_fn(3, 2, |_, _| rng.gen_range(-1.0..1.0)),
            ],
            vec![
                Vector((0..3).map(|_| rng.gen_range(-0.2..0.2)).collect()),
                Vector((0..3).map(|_| rng.gen_range(-0.2..0.2)).collect()),
            ],
        );
        let out = DenseLayer::new(
            Matrix::from_fn(2, 3, |_, _| rng.gen_range(-1.0..1.0)),
            Vector::zeros(2),
            Activation::Identity,
        );
        let net = Plnn::new(vec![Layer::MaxOut(mo), Layer::Dense(out)]);
        let x = Vector(vec![0.4, -0.7]);
        let label = 0;
        let mut grads: Vec<LayerGrad> = net.layers().iter().map(LayerGrad::zeros_like).collect();
        let _ = backprop_one(&net, &x, label, &mut grads);

        let loss_of = |n: &Plnn| {
            let p = softmax(n.logits(x.as_slice()).as_slice());
            cross_entropy(&p, label)
        };
        let h = 1e-6;
        if let LayerGrad::MaxOut { dws, dbs } = &grads[0] {
            for k in 0..2 {
                for (r, c) in [(0usize, 0usize), (2, 1)] {
                    let mut plus = net.clone();
                    let mut minus = net.clone();
                    if let Layer::MaxOut(l) = &mut plus.layers_mut()[0] {
                        l.pieces[k][(r, c)] += h;
                    }
                    if let Layer::MaxOut(l) = &mut minus.layers_mut()[0] {
                        l.pieces[k][(r, c)] -= h;
                    }
                    let fd = (loss_of(&plus) - loss_of(&minus)) / (2.0 * h);
                    assert!(
                        (dws[k][(r, c)] - fd).abs() < 1e-5,
                        "piece {k} w({r},{c}): {} vs {fd}",
                        dws[k][(r, c)]
                    );
                }
                let mut plus = net.clone();
                let mut minus = net.clone();
                if let Layer::MaxOut(l) = &mut plus.layers_mut()[0] {
                    l.biases[k][1] += h;
                }
                if let Layer::MaxOut(l) = &mut minus.layers_mut()[0] {
                    l.biases[k][1] -= h;
                }
                let fd = (loss_of(&plus) - loss_of(&minus)) / (2.0 * h);
                assert!((dbs[k][1] - fd).abs() < 1e-5, "piece {k} bias");
            }
        } else {
            panic!("expected maxout grads");
        }
    }

    #[test]
    fn training_separates_blobs_with_sgd() {
        let data = blobs(200, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Plnn::mlp(&[2, 8, 2], Activation::ReLU, &mut rng);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 16,
            optimizer: Optimizer::sgd(0.05),
            weight_decay: 0.0,
        };
        let report = train(&mut net, &data, &cfg, &mut rng);
        assert!(
            report.final_train_accuracy > 0.95,
            "accuracy {}",
            report.final_train_accuracy
        );
        // Loss should broadly decrease.
        assert!(report.epoch_losses.last().unwrap() < &report.epoch_losses[0]);
    }

    #[test]
    fn training_solves_xor_with_adam() {
        let data = xor(400, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = Plnn::mlp(&[2, 16, 8, 2], Activation::ReLU, &mut rng);
        let cfg = TrainConfig {
            epochs: 60,
            batch_size: 32,
            optimizer: Optimizer::adam(5e-3),
            weight_decay: 0.0,
        };
        let report = train(&mut net, &data, &cfg, &mut rng);
        assert!(
            report.final_train_accuracy > 0.9,
            "XOR accuracy {} (nonlinear task needs hidden units)",
            report.final_train_accuracy
        );
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let data = blobs(60, 5);
        let make = || {
            let mut rng = StdRng::seed_from_u64(6);
            let mut net = Plnn::mlp(&[2, 6, 2], Activation::ReLU, &mut rng);
            let cfg = TrainConfig {
                epochs: 5,
                ..Default::default()
            };
            let _ = train(&mut net, &data, &cfg, &mut rng);
            net
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let data = blobs(100, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let net0 = Plnn::mlp(&[2, 8, 2], Activation::ReLU, &mut rng);
        let run = |wd: f64, net: &Plnn| {
            let mut n = net.clone();
            let mut r = StdRng::seed_from_u64(9);
            let cfg = TrainConfig {
                epochs: 20,
                batch_size: 20,
                optimizer: Optimizer::sgd(0.05),
                weight_decay: wd,
            };
            let _ = train(&mut n, &data, &cfg, &mut r);
            let mut norm = 0.0;
            for l in n.layers() {
                if let Layer::Dense(d) = l {
                    norm += d.weights.norm_frobenius().powi(2);
                }
            }
            norm.sqrt()
        };
        let free = run(0.0, &net0);
        let decayed = run(0.05, &net0);
        assert!(decayed < free, "decay {decayed} vs free {free}");
    }

    #[test]
    fn accuracy_of_perfect_and_useless_models() {
        let data = blobs(50, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Plnn::mlp(&[2, 8, 2], Activation::ReLU, &mut rng);
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 10,
            optimizer: Optimizer::adam(1e-2),
            weight_decay: 0.0,
        };
        let _ = train(&mut net, &data, &cfg, &mut rng);
        assert!(accuracy(&net, &data) > 0.95);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn train_validates_dimensions() {
        let data = blobs(10, 12);
        let mut rng = StdRng::seed_from_u64(13);
        let mut net = Plnn::mlp(&[3, 4, 2], Activation::ReLU, &mut rng);
        let _ = train(&mut net, &data, &TrainConfig::default(), &mut rng);
    }
}
