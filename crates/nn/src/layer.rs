//! Dense (fully-connected) layer with a piecewise linear activation.

use crate::activation::Activation;
use openapi_linalg::{Matrix, Vector};

/// A dense layer `z = act(W·x + b)` with `W ∈ R^{out×in}`.
///
/// Note the orientation: rows index output units (the usual neural-network
/// convention), which is the *transpose* of the `d × C` layout the
/// interpretation layer uses for local models. `openbox` performs the
/// transposition once at extraction time.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLayer {
    /// `out × in` weight matrix.
    pub weights: Matrix,
    /// Length-`out` bias.
    pub bias: Vector,
    /// Elementwise activation.
    pub activation: Activation,
}

impl DenseLayer {
    /// Constructs a layer, validating shapes.
    ///
    /// # Panics
    /// Panics when `weights.rows() != bias.len()`.
    pub fn new(weights: Matrix, bias: Vector, activation: Activation) -> Self {
        assert_eq!(
            weights.rows(),
            bias.len(),
            "DenseLayer: weights rows {} != bias len {}",
            weights.rows(),
            bias.len()
        );
        DenseLayer {
            weights,
            bias,
            activation,
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Pre-activation values `W·x + b`.
    ///
    /// # Panics
    /// Panics when `x.len() != input_dim()`.
    pub fn pre_activation(&self, x: &[f64]) -> Vector {
        let mut a = self
            .weights
            .matvec(x)
            .expect("DenseLayer::pre_activation: dimension mismatch");
        a += &self.bias;
        a
    }

    /// Full forward pass: returns `(pre_activation, post_activation)`.
    ///
    /// # Panics
    /// Panics when `x.len() != input_dim()`.
    pub fn forward(&self, x: &[f64]) -> (Vector, Vector) {
        let pre = self.pre_activation(x);
        let post = Vector(pre.iter().map(|&a| self.activation.apply(a)).collect());
        (pre, post)
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> DenseLayer {
        DenseLayer::new(
            Matrix::from_rows(&[&[1.0, -1.0], &[0.5, 0.5], &[-2.0, 1.0]]).unwrap(),
            Vector(vec![0.0, 1.0, -0.5]),
            Activation::ReLU,
        )
    }

    #[test]
    fn shapes() {
        let l = layer();
        assert_eq!(l.input_dim(), 2);
        assert_eq!(l.output_dim(), 3);
        assert_eq!(l.param_count(), 9);
    }

    #[test]
    fn forward_applies_affine_then_activation() {
        let l = layer();
        let (pre, post) = l.forward(&[1.0, 2.0]);
        assert_eq!(pre.as_slice(), &[-1.0, 2.5, -0.5]);
        assert_eq!(post.as_slice(), &[0.0, 2.5, 0.0]);
    }

    #[test]
    fn identity_activation_passes_through() {
        let mut l = layer();
        l.activation = Activation::Identity;
        let (pre, post) = l.forward(&[1.0, 2.0]);
        assert_eq!(pre, post);
    }

    #[test]
    #[should_panic(expected = "bias len")]
    fn shape_mismatch_panics() {
        let _ = DenseLayer::new(Matrix::zeros(3, 2), Vector::zeros(2), Activation::ReLU);
    }
}
