//! MaxOut layer — the other piecewise linear nonlinearity the paper's
//! introduction places inside the PLM family [Goodfellow et al., ICML 2013].

use openapi_linalg::{Matrix, Vector};

/// A MaxOut layer: `z_j = max_k (W_k·x + b_k)_j` over `k` affine *pieces*.
///
/// Each output unit takes the maximum over `k` independent affine functions
/// of the input; the layer is piecewise linear with the active-piece index
/// per unit playing the role ReLU's on/off bit plays in the activation
/// pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxOutLayer {
    /// `k` weight matrices, each `out × in`.
    pub pieces: Vec<Matrix>,
    /// `k` bias vectors, each length `out`.
    pub biases: Vec<Vector>,
}

impl MaxOutLayer {
    /// Constructs a layer from piece weights/biases.
    ///
    /// # Panics
    /// Panics when there are fewer than 2 pieces, shapes are inconsistent,
    /// or weights/biases counts differ.
    pub fn new(pieces: Vec<Matrix>, biases: Vec<Vector>) -> Self {
        assert!(pieces.len() >= 2, "MaxOut needs at least 2 pieces");
        assert_eq!(pieces.len(), biases.len(), "pieces/biases count mismatch");
        let (out, inp) = (pieces[0].rows(), pieces[0].cols());
        for (i, p) in pieces.iter().enumerate() {
            assert_eq!(p.rows(), out, "piece {i} rows");
            assert_eq!(p.cols(), inp, "piece {i} cols");
            assert_eq!(biases[i].len(), out, "bias {i} length");
        }
        MaxOutLayer { pieces, biases }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.pieces[0].cols()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.pieces[0].rows()
    }

    /// Number of affine pieces `k`.
    pub fn num_pieces(&self) -> usize {
        self.pieces.len()
    }

    /// Forward pass returning `(selected_piece_per_unit, output)`.
    ///
    /// The selection vector is the layer's contribution to the activation
    /// pattern: inputs sharing selections lie in the same linear region.
    /// Ties break toward the lower piece index (measure-zero event for
    /// continuous inputs).
    ///
    /// # Panics
    /// Panics when `x.len() != input_dim()`.
    pub fn forward(&self, x: &[f64]) -> (Vec<usize>, Vector) {
        let per_piece: Vec<Vector> = self
            .pieces
            .iter()
            .zip(self.biases.iter())
            .map(|(w, b)| {
                let mut a = w.matvec(x).expect("MaxOut forward: dimension mismatch");
                a += b;
                a
            })
            .collect();
        let out_dim = self.output_dim();
        let mut selection = vec![0usize; out_dim];
        let mut out = Vector::zeros(out_dim);
        for j in 0..out_dim {
            let mut best_k = 0;
            let mut best_v = per_piece[0][j];
            for (k, vals) in per_piece.iter().enumerate().skip(1) {
                if vals[j] > best_v {
                    best_v = vals[j];
                    best_k = k;
                }
            }
            selection[j] = best_k;
            out[j] = best_v;
        }
        (selection, out)
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.num_pieces() * (self.output_dim() * self.input_dim() + self.output_dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> MaxOutLayer {
        // 2 pieces, 2 units, 1 input: unit j computes max of two lines.
        let p0 = Matrix::from_rows(&[&[1.0], &[-1.0]]).unwrap();
        let p1 = Matrix::from_rows(&[&[-1.0], &[1.0]]).unwrap();
        MaxOutLayer::new(
            vec![p0, p1],
            vec![Vector(vec![0.0, 0.0]), Vector(vec![0.0, 0.0])],
        )
    }

    #[test]
    fn maxout_computes_abs_here() {
        // max(x, -x) = |x| for unit 0; unit 1 is max(-x, x) = |x| too.
        let l = layer();
        let (_, out) = l.forward(&[3.0]);
        assert_eq!(out.as_slice(), &[3.0, 3.0]);
        let (_, out) = l.forward(&[-2.0]);
        assert_eq!(out.as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn selection_tracks_active_piece() {
        let l = layer();
        let (sel_pos, _) = l.forward(&[5.0]);
        assert_eq!(sel_pos, vec![0, 1]);
        let (sel_neg, _) = l.forward(&[-5.0]);
        assert_eq!(sel_neg, vec![1, 0]);
    }

    #[test]
    fn ties_break_low() {
        let l = layer();
        let (sel, out) = l.forward(&[0.0]);
        assert_eq!(sel, vec![0, 0]);
        assert_eq!(out.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn shapes_and_params() {
        let l = layer();
        assert_eq!(l.input_dim(), 1);
        assert_eq!(l.output_dim(), 2);
        assert_eq!(l.num_pieces(), 2);
        assert_eq!(l.param_count(), 2 * (2 + 2));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_piece_rejected() {
        let _ = MaxOutLayer::new(vec![Matrix::zeros(1, 1)], vec![Vector::zeros(1)]);
    }

    #[test]
    #[should_panic(expected = "rows")]
    fn inconsistent_pieces_rejected() {
        let _ = MaxOutLayer::new(
            vec![Matrix::zeros(2, 1), Matrix::zeros(3, 1)],
            vec![Vector::zeros(2), Vector::zeros(3)],
        );
    }
}
