//! Cache snapshot/restore: one-shot persistence for the shared region
//! cache.
//!
//! A service that restarts (deploy, crash, scale-out) would otherwise pay
//! the full Algorithm-1 query budget again for every region its traffic
//! touches. [`CacheSnapshot`] captures the solved regions — each entry is a
//! recovered, *exact* set of core parameters, so replaying them into a
//! fresh cache is sound: membership lookups re-verify every serve against
//! the live API's predictions, so even a snapshot from a *different* model
//! can never produce a wrong answer (its entries would simply never pass
//! the membership test and would age out of the bounded cache).
//!
//! The wire format is a thin wrapper over the workspace's single record
//! codec ([`openapi_store::record`]): a magic/version header, an entry
//! count, then one CRC-framed `(fingerprint, Interpretation)` record per
//! entry — byte-compatible with the frames in the durable store's WAL and
//! segments, so there is exactly one framing/checksum implementation to
//! audit. (For *continuously* durable regions, prefer the store itself:
//! [`openapi_store::RegionStore`]. Snapshots remain for one-shot
//! copies — shipping a warm cache to another host, test fixtures.)
//!
//! The `serde` derives on the snapshot types keep them source-compatible
//! with a real serde format should one land in the dependency set.

use bytes::{Buf, BufMut};
use openapi_core::decision::{Interpretation, RegionFingerprint};
use openapi_core::InterpretError;
use openapi_linalg::codec::{self, CodecError};
use openapi_store::record::{self, RecordError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Format magic + version: v2 moved entries into CRC-framed store records
/// (v1 was unframed). Bumped on any layout change.
const MAGIC: u64 = 0x4F41_534E_4150_0002; // "OASNAP" v2

/// One persisted region: its canonical key and full interpretation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotEntry {
    /// Fingerprint at snapshot time (recomputed on restore; stored so
    /// offline tooling can key entries without re-hashing).
    pub fingerprint: RegionFingerprint,
    /// The region's exact interpretation (shared, not copied, on both the
    /// snapshot and the restore path).
    pub interpretation: Arc<Interpretation>,
}

/// A point-in-time copy of a region cache (see the module docs).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// The persisted regions, in shard-scan order.
    pub entries: Vec<SnapshotEntry>,
}

/// Why decoding a snapshot failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The byte stream is not a snapshot (wrong magic/version).
    BadMagic {
        /// The value found where the magic was expected.
        found: u64,
    },
    /// Truncated or implausible binary payload.
    Codec(CodecError),
    /// An entry's payload bytes fail their CRC — the snapshot was
    /// corrupted in place.
    Corrupt {
        /// CRC stored in the entry's frame.
        stored: u64,
        /// CRC computed over the bytes read.
        computed: u64,
    },
    /// An entry decoded structurally but is not a valid interpretation
    /// (e.g. empty contrast list or ragged dimensions).
    BadEntry(InterpretError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic { found } => {
                write!(f, "not a cache snapshot (magic {found:#018x})")
            }
            SnapshotError::Codec(e) => write!(f, "snapshot payload: {e}"),
            SnapshotError::Corrupt { stored, computed } => write!(
                f,
                "snapshot entry corrupt: stored CRC {stored:#018x}, computed {computed:#018x}"
            ),
            SnapshotError::BadEntry(e) => write!(f, "snapshot entry invalid: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> Self {
        SnapshotError::Codec(e)
    }
}

impl From<RecordError> for SnapshotError {
    fn from(e: RecordError) -> Self {
        match e {
            RecordError::Codec(c) => SnapshotError::Codec(c),
            RecordError::Checksum { stored, computed } => {
                SnapshotError::Corrupt { stored, computed }
            }
            RecordError::BadEntry(e) => SnapshotError::BadEntry(e),
            // Tombstones never enter the cache, so a tombstone frame in a
            // snapshot is a foreign entry, not a region.
            RecordError::UnexpectedTombstone(t) => {
                SnapshotError::BadEntry(openapi_core::InterpretError::ClassOutOfRange {
                    class: t.class,
                    num_classes: 0,
                })
            }
        }
    }
}

impl CacheSnapshot {
    /// Serializes the snapshot to bytes (infallible).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.put_u64_le(MAGIC);
        codec::put_len(&mut buf, self.entries.len());
        for entry in &self.entries {
            record::put_record(&mut buf, entry.fingerprint, &entry.interpretation);
        }
        buf
    }

    /// Decodes a snapshot written by [`CacheSnapshot::to_bytes`]. Decision
    /// features are recomputed from the persisted pairwise parameters
    /// (Equation 1 is deterministic, so the result is bit-identical to the
    /// original).
    ///
    /// # Errors
    /// [`SnapshotError`] on wrong magic, truncation, per-entry CRC
    /// failure, or invalid entries; never panics on malformed input.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self, SnapshotError> {
        let buf = &mut bytes;
        if buf.remaining() < 8 {
            return Err(CodecError::Truncated {
                what: "snapshot magic",
                needed: 8,
                remaining: buf.remaining(),
            }
            .into());
        }
        let magic = buf.get_u64_le();
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        let n = codec::get_len(buf, "snapshot entries")?;
        let mut entries = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let stored = record::get_record(buf)?;
            entries.push(SnapshotEntry {
                fingerprint: stored.fingerprint,
                interpretation: stored.interpretation,
            });
        }
        Ok(CacheSnapshot { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_core::decision::PairwiseCoreParams;
    use openapi_linalg::Vector;

    fn entry(class: usize, weights: Vec<f64>, bias: f64) -> SnapshotEntry {
        let interpretation = Interpretation::from_pairwise(
            class,
            vec![PairwiseCoreParams {
                c_prime: class + 1,
                weights: Vector(weights),
                bias,
            }],
        )
        .unwrap();
        SnapshotEntry {
            fingerprint: interpretation.fingerprint(6),
            interpretation: Arc::new(interpretation),
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let snap = CacheSnapshot {
            entries: vec![
                entry(0, vec![1.5, -2.25, 1e-300], 0.125),
                entry(3, vec![f64::MIN_POSITIVE, 0.0], -7.5),
            ],
        };
        let bytes = snap.to_bytes();
        let back = CacheSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap, back);
        // Fingerprints recompute identically from the decoded parameters.
        for e in &back.entries {
            assert_eq!(e.fingerprint, e.interpretation.fingerprint(6));
        }
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = CacheSnapshot::default();
        assert_eq!(CacheSnapshot::from_bytes(&snap.to_bytes()).unwrap(), snap);
    }

    #[test]
    fn garbage_is_rejected_not_panicked_on() {
        assert!(matches!(
            CacheSnapshot::from_bytes(&[1, 2, 3]),
            Err(SnapshotError::Codec(CodecError::Truncated { .. }))
        ));
        let mut wrong_magic = vec![0u8; 16];
        wrong_magic[0] = 0xAB;
        assert!(matches!(
            CacheSnapshot::from_bytes(&wrong_magic),
            Err(SnapshotError::BadMagic { .. })
        ));
        // Valid header, truncated body.
        let snap = CacheSnapshot {
            entries: vec![entry(0, vec![1.0, 2.0], 0.5)],
        };
        let mut bytes = snap.to_bytes();
        bytes.truncate(bytes.len() - 5);
        assert!(matches!(
            CacheSnapshot::from_bytes(&bytes),
            Err(SnapshotError::Codec(CodecError::Truncated { .. }))
        ));
    }

    #[test]
    fn corrupted_entry_bytes_fail_their_crc() {
        let snap = CacheSnapshot {
            entries: vec![entry(0, vec![1.0, 2.0], 0.5)],
        };
        let mut bytes = snap.to_bytes();
        // Flip one bit inside the entry payload (past magic + count + the
        // 12-byte frame header).
        let flip_at = 8 + 8 + 12 + 4;
        bytes[flip_at] ^= 0x01;
        assert!(matches!(
            CacheSnapshot::from_bytes(&bytes),
            Err(SnapshotError::Corrupt { .. })
        ));
    }

    #[test]
    fn structurally_valid_but_empty_entry_is_rejected() {
        // An entry with zero contrasts frames and checksums fine but
        // cannot form an interpretation (Equation 1 needs ≥ 1 contrast).
        let mut payload = Vec::new();
        payload.put_u64_le(42); // fingerprint
        codec::put_len(&mut payload, 0); // class
        codec::put_len(&mut payload, 0); // zero contrasts
        let mut buf = Vec::new();
        buf.put_u64_le(super::MAGIC);
        codec::put_len(&mut buf, 1); // one entry
        record::put_frame(&mut buf, &payload);
        assert!(matches!(
            CacheSnapshot::from_bytes(&buf),
            Err(SnapshotError::BadEntry(_))
        ));
    }
}
