#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! `openapi-serve` — a concurrent interpretation service over the paper's
//! Theorem-2 region cache.
//!
//! The OpenAPI method (Algorithm 1) makes exact black-box interpretation
//! cheap enough to run behind a live prediction API, and Theorem 2 makes
//! the expensive part per-*region*, not per-instance: every instance inside
//! one locally linear region recovers the identical core parameters. The
//! single-threaded [`openapi_core::BatchInterpreter`] already exploits that
//! with a region cache; this crate scales the same insight to many client
//! threads:
//!
//! * [`SharedRegionCache`] — N shards of [`openapi_core::RegionCache`]
//!   keyed by [`openapi_core::RegionFingerprint`], each behind a
//!   `openapi_sync::RwLock`, with a capacity bound and CLOCK eviction so
//!   memory stays flat under millions of distinct regions. Slots hold
//!   `Arc<Interpretation>`, so a hit is a reference-count bump, never a
//!   multi-KB parameter copy. Snapshot / restore ([`CacheSnapshot`]) lets
//!   a service warm-start from a prior run's solved regions.
//! * [`InterpretationService`] — a worker pool (crossbeam channels) that
//!   accepts [`InterpretRequest`]s and returns [`Ticket`] handles the
//!   caller can block on ([`Ticket::wait`]) or poll ([`Ticket::poll`]).
//!   Opened over a directory ([`InterpretationService::open`]), it gains a
//!   durable L2 — [`openapi_store::RegionStore`] — behind the cache:
//!   misses consult the store before electing an Algorithm-1 leader
//!   ([`ServeOutcome::StoreHit`]), solves append to the store's
//!   write-ahead log asynchronously, and a restart against the same
//!   directory re-serves every previously solved region without a single
//!   additional solve.
//! * [`ServiceStats`] — atomic hit/store-hit/miss/coalesce/eviction/query
//!   counters plus a fixed-bucket latency histogram
//!   ([`openapi_metrics::LatencyHistogram`]) for p50/p99, with the
//!   store's own counters embedded when one is attached.
//!
//! # Request coalescing preserves exactness
//!
//! Concurrent requests that resolve to the same region wait on one
//! in-flight Algorithm-1 solve instead of each paying the full query
//! budget. This does **not** weaken the paper's exactness guarantee, for
//! the same reason the cache itself doesn't:
//!
//! 1. Every request pays one membership probe (its own prediction at `x`).
//! 2. A waiter is served the leader's interpretation **only if** that
//!    interpretation explains the waiter's probe at every class contrast
//!    ([`openapi_core::decision::Interpretation::explains_probe`]) — the
//!    identical test a cache hit passes.
//! 3. By Theorem 2, core parameters hold throughout a locally linear
//!    region, and an instance whose observed prediction satisfies
//!    `D_{c,c'}ᵀx + B_{c,c'} = ln(y_c/y_{c'})` for every contrast lies in
//!    the solved region (with probability 1, at the configured tolerance).
//!    All waiters that pass the test are therefore in the *same region* as
//!    the leader, and the leader's exact answer is *their* exact answer —
//!    bit-identical, which is the paper's consistency property.
//!
//! A waiter whose probe is *not* explained (it was merely queued behind a
//! different region's solve) is requeued and solved on its own — coalescing
//! can only save queries, never change an answer.
//!
//! # Example
//!
//! ```
//! use openapi_api::LinearSoftmaxModel;
//! use openapi_linalg::{Matrix, Vector};
//! use openapi_serve::{InterpretationService, ServeOutcome, ServiceConfig};
//!
//! let model = LinearSoftmaxModel::new(
//!     Matrix::from_fn(4, 3, |r, c| ((r * 3 + c) % 5) as f64 * 0.25 - 0.5),
//!     Vector(vec![0.1, -0.2, 0.05]),
//! );
//! let service = InterpretationService::new(model, ServiceConfig::default());
//! let x = Vector(vec![0.3, -0.1, 0.7, 0.2]);
//!
//! // The first request into a region pays the Algorithm-1 solve …
//! let first = service.submit_instance(x.clone(), 1).wait().unwrap();
//! assert_eq!(first.outcome, ServeOutcome::Solved);
//! // … every later request in the region costs one membership probe and
//! // is served the identical bits (the paper's consistency property).
//! let again = service.submit_instance(x, 1).wait().unwrap();
//! assert_eq!(again.outcome, ServeOutcome::CacheHit);
//! assert_eq!(again.queries, 1);
//! assert_eq!(again.interpretation, first.interpretation);
//! ```
//!
//! A region's identity is unknowable before its solve (knowing it would
//! require the very parameters being solved for), so the in-flight registry
//! keys on the only thing a miss *does* know: its class. Up to
//! [`ServiceConfig::max_leaders_per_class`] solves of one class run
//! concurrently, so distinct-region cold misses parallelize instead of
//! serializing behind a single leader; the deliberate cost is that racing
//! leaders occasionally solve the *same* region twice — the duplicates
//! merge at insert (identical bits, one entry), so only query spend is
//! affected, never an answer. Past the leader limit, misses park as
//! waiters; once the hot regions are cached the registry is idle (hits
//! dominate steady-state traffic and never touch it).
//!
//! # Request lifecycle
//!
//! ```text
//! submit(x, c) ──► queue ──► worker: probe x (1 query)
//!                              │
//!                              ├─ shard lookup ──► hit ──► reply (cached, exact)
//!                              │
//!                              ├─ durable store lookup (if attached)
//!                              │    └─ hit ──► promote to cache ──► reply (store, exact)
//!                              │
//!                              ├─ class at its leader limit?
//!                              │    └─ yes ──► park as waiter (coalesce)
//!                              │
//!                              └─ no ──► lead Algorithm-1 solve (≤ N per class)
//!                                         ├─ insert region into shard (may evict)
//!                                         ├─ append region to store WAL (async fsync)
//!                                         ├─ reply to leader
//!                                         └─ for each waiter:
//!                                              explains_probe? ──► reply (coalesced)
//!                                              else ──► requeue
//! ```

pub mod coalesce;
mod service;
mod shared_cache;
mod snapshot;
mod stats;

pub use coalesce::{ClassLedger, Election};
pub use service::{
    drift_detection_enabled, set_drift_detection_enabled, InterpretRequest, InterpretationService,
    ServeError, ServeOutcome, Served, ServiceConfig, ServiceCore, Ticket,
};
pub use shared_cache::{SharedCacheConfig, SharedRegionCache};
pub use snapshot::{CacheSnapshot, SnapshotEntry, SnapshotError};
pub use stats::{
    DriftStats, DriftStatsSnapshot, FabricStats, FabricStatsSnapshot, ServiceStats, StageSlot,
    StatsSnapshot, STAGES, STAGE_NAMES,
};
