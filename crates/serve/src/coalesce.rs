//! Per-class leader election for request coalescing.
//!
//! The service bounds how many Algorithm-1 solves of one class run
//! concurrently: requests beyond the limit park as waiters and are settled
//! by whichever leader finishes next. This module owns that registry — the
//! [`ClassLedger`] — as a standalone, generic type so its protocol can be
//! model-checked under `--cfg loom` without spinning up the full service
//! (see `tests/loom.rs` at the workspace root and `docs/CONCURRENCY.md`).
//!
//! # Protocol
//!
//! 1. A miss bids for leadership with [`ClassLedger::try_lead`]. The
//!    leaders-at-limit check and the park are **one atomic step** under the
//!    registry mutex — a bid can never observe a free slot and then park,
//!    nor park after the last leader drained the waiter list.
//! 2. A winning leader publishes its result (cache insert), then calls
//!    [`ClassLedger::record_solve`], then [`ClassLedger::step_down`] — in
//!    that order. Step 1's mutex makes the ordering observable: any bid
//!    that sees the freed slot also sees the bumped generation and the
//!    published cache entry (mutex release/acquire edges).
//! 3. The miss path snapshots [`ClassLedger::generation`] before its cache
//!    lookup; a leader re-reads it after winning an election and repeats
//!    the lookup only when the generation moved — the cheap "did a solve
//!    complete while I was busy?" test.

use openapi_sync::atomic::{AtomicU64, Ordering};
use openapi_sync::Mutex;
use std::collections::HashMap;

/// Per-class coalescing state: how many leaders are currently solving,
/// and the requests parked behind them.
struct ClassInflight<J> {
    leaders: usize,
    waiters: Vec<J>,
}

impl<J> Default for ClassInflight<J> {
    fn default() -> Self {
        ClassInflight {
            leaders: 0,
            waiters: Vec::new(),
        }
    }
}

/// Outcome of a leadership bid ([`ClassLedger::try_lead`]).
#[derive(Debug)]
pub enum Election<J> {
    /// The bid won a leader slot; the job is handed back to run the solve.
    Led(J),
    /// The class was at its leader limit; the job is parked in the ledger
    /// and will be settled (or requeued) by a finishing leader's
    /// [`ClassLedger::step_down`].
    Parked,
}

/// The per-class in-flight solve registry.
///
/// Generic over the parked job type `J` so the protocol can be exercised
/// under the loom model checker with a unit payload instead of a full
/// service `Job`.
pub struct ClassLedger<J> {
    /// Leader counts and parked waiters, keyed by class.
    inflight: Mutex<HashMap<usize, ClassInflight<J>>>,
    /// Bumped by [`ClassLedger::record_solve`] after every successful
    /// solve's cache insert (and before its registry bookkeeping). Lets
    /// the miss path skip the duplicate-solve recheck — a cache scan —
    /// unless a solve actually completed since it last read the cache.
    generation: AtomicU64,
}

impl<J> Default for ClassLedger<J> {
    fn default() -> Self {
        Self::new()
    }
}

impl<J> ClassLedger<J> {
    /// An empty ledger at generation 0.
    pub fn new() -> Self {
        ClassLedger {
            inflight: Mutex::new(HashMap::new()),
            generation: AtomicU64::new(0),
        }
    }

    /// Bids for a leader slot on `class`.
    ///
    /// Returns [`Election::Led`] (job handed back, leader count bumped)
    /// when fewer than `max_leaders` leaders are in flight, otherwise
    /// parks `job` behind them and returns [`Election::Parked`]. The check
    /// and the park happen atomically under the registry mutex.
    pub fn try_lead(&self, class: usize, max_leaders: usize, job: J) -> Election<J> {
        let mut inflight = self.inflight.lock();
        let entry = inflight.entry(class).or_default();
        if entry.leaders >= max_leaders {
            entry.waiters.push(job);
            return Election::Parked;
        }
        entry.leaders += 1;
        Election::Led(job)
    }

    /// Records a completed solve by bumping the generation.
    ///
    /// Call **after** publishing the result (cache insert) and **before**
    /// [`ClassLedger::step_down`]: the registry mutex inside `step_down`
    /// then orders all three, so any bid observing the freed slot also
    /// observes the bump and the published entry.
    pub fn record_solve(&self) {
        // ordering: Relaxed is enough — the generation is only consulted
        // together with registry state, and the registry mutex acquired in
        // `step_down` (release) / `try_lead` (acquire) carries the
        // happens-before edge that makes this bump, and the cache insert
        // before it, visible. See docs/CONCURRENCY.md § coalescing.
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    /// The current solve generation (see [`ClassLedger::record_solve`]).
    pub fn generation(&self) -> u64 {
        // ordering: Relaxed — a stale read is benign in both directions.
        // Too old: the miss path does one redundant cache scan. Too few
        // bumps observed: the recheck is skipped, exactly as if the lookup
        // had raced ahead of the solve, and coalescing/duplicate-merging
        // still keep the result exact. Precise reads ride the registry
        // mutex edge instead (see `record_solve`).
        self.generation.load(Ordering::Relaxed)
    }

    /// Steps a leader of `class` down and drains its parked waiters for
    /// the finishing leader to settle. The registry entry is removed once
    /// the last leader steps down.
    ///
    /// # Panics
    /// Panics if no leader of `class` is in flight — step-down without a
    /// matching [`Election::Led`] is a protocol bug.
    pub fn step_down(&self, class: usize) -> Vec<J> {
        let mut inflight = self.inflight.lock();
        let entry = inflight
            .get_mut(&class)
            .expect("a leader owns an in-flight slot");
        entry.leaders -= 1;
        let waiters = std::mem::take(&mut entry.waiters);
        if entry.leaders == 0 {
            inflight.remove(&class);
        }
        waiters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leads_until_the_limit_then_parks() {
        let ledger = ClassLedger::new();
        assert!(matches!(ledger.try_lead(7, 2, "a"), Election::Led("a")));
        assert!(matches!(ledger.try_lead(7, 2, "b"), Election::Led("b")));
        assert!(matches!(ledger.try_lead(7, 2, "c"), Election::Parked));
        // A different class has its own slots.
        assert!(matches!(ledger.try_lead(8, 2, "d"), Election::Led("d")));
    }

    #[test]
    fn step_down_drains_waiters_and_frees_the_slot() {
        let ledger = ClassLedger::new();
        let Election::Led(_) = ledger.try_lead(3, 1, 0u32) else {
            panic!("first bid must lead");
        };
        assert!(matches!(ledger.try_lead(3, 1, 1), Election::Parked));
        assert!(matches!(ledger.try_lead(3, 1, 2), Election::Parked));
        assert_eq!(ledger.step_down(3), vec![1, 2]);
        // Slot freed: the next bid leads and finds no stale waiters.
        assert!(matches!(ledger.try_lead(3, 1, 9), Election::Led(9)));
        assert_eq!(ledger.step_down(3), Vec::<u32>::new());
    }

    #[test]
    fn generation_counts_recorded_solves() {
        let ledger = ClassLedger::<()>::new();
        assert_eq!(ledger.generation(), 0);
        ledger.record_solve();
        ledger.record_solve();
        assert_eq!(ledger.generation(), 2);
    }

    #[test]
    #[should_panic(expected = "in-flight slot")]
    fn step_down_without_leading_is_a_bug() {
        ClassLedger::<()>::new().step_down(0);
    }
}
