//! The concurrent interpretation service (see the crate docs for the
//! request lifecycle and the exactness argument for coalescing).

use crate::shared_cache::{SharedCacheConfig, SharedRegionCache};
use crate::snapshot::CacheSnapshot;
use crate::stats::{ServiceStats, StatsSnapshot};
use crossbeam::channel::{self, Receiver, Sender};
use openapi_api::PredictionApi;
use openapi_core::batch::queries_consumed;
use openapi_core::decision::{Interpretation, RegionFingerprint};
use openapi_core::equations::Probe;
use openapi_core::openapi::{OpenApiConfig, OpenApiInterpreter};
use openapi_core::InterpretError;
use openapi_linalg::Vector;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (clamped to ≥ 1).
    pub workers: usize,
    /// Shared-cache sharding and capacity.
    pub cache: SharedCacheConfig,
    /// Configuration of the per-region Algorithm-1 solves.
    pub openapi: OpenApiConfig,
    /// Master seed; each request's sampling RNG derives from
    /// `(seed, request id)`, so a fixed submission order replays exactly.
    pub seed: u64,
    /// Whether concurrent same-class misses coalesce onto one in-flight
    /// solve (`true` by default; disable to benchmark the difference).
    pub coalesce: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            cache: SharedCacheConfig::default(),
            openapi: OpenApiConfig::default(),
            seed: 42,
            coalesce: true,
        }
    }
}

/// One unit of work for the service.
#[derive(Debug, Clone)]
pub struct InterpretRequest {
    /// The instance whose prediction to interpret.
    pub instance: Vector,
    /// The class to interpret it for.
    pub class: usize,
    /// Drop-dead time: a request past its deadline completes with
    /// [`ServeError::DeadlineExceeded`] instead of occupying a worker.
    pub deadline: Option<Instant>,
}

impl InterpretRequest {
    /// A request with no deadline.
    pub fn new(instance: Vector, class: usize) -> Self {
        InterpretRequest {
            instance,
            class,
            deadline: None,
        }
    }

    /// Sets a deadline `budget` from now.
    pub fn with_timeout(mut self, budget: Duration) -> Self {
        self.deadline = Some(Instant::now() + budget);
        self
    }
}

/// How a request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// Served from the shared cache (1 probe query).
    CacheHit,
    /// This request led the Algorithm-1 solve for its region.
    Solved,
    /// Served from another request's in-flight solve (1 probe query).
    Coalesced,
}

/// A completed interpretation.
#[derive(Debug, Clone, PartialEq)]
pub struct Served {
    /// The region's exact interpretation (bit-identical across every
    /// request resolved to the same region — the paper's consistency
    /// property).
    pub interpretation: Interpretation,
    /// Canonical key of the serving region.
    pub fingerprint: RegionFingerprint,
    /// How the request was satisfied.
    pub outcome: ServeOutcome,
    /// Prediction queries spent on behalf of this request.
    pub queries: usize,
    /// End-to-end latency (submit → completion).
    pub latency: Duration,
}

/// Why a request failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The underlying interpretation failed (bad arguments, budget
    /// exhaustion, …).
    Interpret(InterpretError),
    /// The request's deadline passed before it completed.
    DeadlineExceeded,
    /// The service shut down before the request completed.
    ServiceStopped,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Interpret(e) => write!(f, "interpretation failed: {e}"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::ServiceStopped => write!(f, "service stopped"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The caller's handle to an in-flight request: block on
/// [`Ticket::wait`] or poll with [`Ticket::poll`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Served, ServeError>>,
}

impl Ticket {
    /// Blocks until the request completes.
    ///
    /// # Errors
    /// [`ServeError`] as completed by the service, or
    /// [`ServeError::ServiceStopped`] if the service dropped the request.
    pub fn wait(self) -> Result<Served, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ServiceStopped))
    }

    /// Blocks up to `timeout`; `None` when the request is still running.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Served, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::ServiceStopped)),
        }
    }

    /// Non-blocking check; `None` while the request is still running.
    pub fn poll(&self) -> Option<Result<Served, ServeError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::ServiceStopped)),
        }
    }
}

/// A queued request inside the service. `probs` caches the membership
/// probe so a requeued request never queries the API twice.
struct Job {
    x: Vector,
    class: usize,
    deadline: Option<Instant>,
    probs: Option<Vector>,
    queries_spent: usize,
    submitted: Instant,
    id: u64,
    reply: mpsc::Sender<Result<Served, ServeError>>,
}

enum Msg {
    Job(Job),
    Shutdown,
}

/// State shared between the service handle and its workers.
struct Inner<M> {
    api: M,
    cache: SharedRegionCache,
    stats: ServiceStats,
    interpreter: OpenApiInterpreter,
    config: ServiceConfig,
    /// Per-class in-flight solve registry: the key's presence means a
    /// leader is solving; the value collects waiters to serve (or requeue)
    /// when it finishes.
    inflight: Mutex<HashMap<usize, Vec<Job>>>,
    /// Bumped after every successful solve's cache insert (and before its
    /// registry-key removal). Lets the miss path skip the duplicate-solve
    /// recheck — a cache scan — while holding the `inflight` mutex unless a
    /// solve actually completed since it last read the cache.
    solve_generation: AtomicU64,
}

/// The concurrent interpretation service (see the crate docs).
///
/// Dropping the service joins its workers; requests still queued at that
/// point complete with [`ServeError::ServiceStopped`].
pub struct InterpretationService<M: PredictionApi + Send + Sync + 'static> {
    inner: Arc<Inner<M>>,
    tx: Sender<Msg>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl<M: PredictionApi + Send + Sync + 'static> InterpretationService<M> {
    /// Spawns the worker pool over `api`.
    pub fn new(api: M, config: ServiceConfig) -> Self {
        let mut config = config;
        config.workers = config.workers.max(1);
        let cache = SharedRegionCache::new(config.cache.clone());
        let interpreter = OpenApiInterpreter::new(config.openapi.clone());
        let inner = Arc::new(Inner {
            api,
            cache,
            stats: ServiceStats::default(),
            interpreter,
            config,
            inflight: Mutex::new(HashMap::new()),
            solve_generation: AtomicU64::new(0),
        });
        let (tx, rx) = channel::unbounded::<Msg>();
        let workers = (0..inner.config.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                let rx: Receiver<Msg> = rx.clone();
                let tx = tx.clone();
                std::thread::spawn(move || worker_loop(&inner, &rx, &tx))
            })
            .collect();
        InterpretationService {
            inner,
            tx,
            workers,
            next_id: AtomicU64::new(0),
        }
    }

    /// Borrow the (clamped) configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// Borrow the shared region cache (e.g. to snapshot it).
    pub fn cache(&self) -> &SharedRegionCache {
        &self.inner.cache
    }

    /// Borrow the wrapped prediction API.
    pub fn api(&self) -> &M {
        &self.inner.api
    }

    /// Submits a request; returns immediately with a [`Ticket`].
    pub fn submit(&self, request: InterpretRequest) -> Ticket {
        let (reply, rx) = mpsc::channel();
        ServiceStats::add(&self.inner.stats.requests, 1);
        let job = Job {
            x: request.instance,
            class: request.class,
            deadline: request.deadline,
            probs: None,
            queries_spent: 0,
            submitted: Instant::now(),
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            reply,
        };
        if let Err(channel::SendError(Msg::Job(job))) = self.tx.send(Msg::Job(job)) {
            // Workers are gone (shutdown raced the submit): fail the ticket
            // immediately — through `finish`, so the failure is counted and
            // the stats ledger stays consistent.
            finish(self.inner.as_ref(), job, Err(ServeError::ServiceStopped));
        }
        Ticket { rx }
    }

    /// Convenience: submit an instance/class pair with no deadline.
    pub fn submit_instance(&self, instance: Vector, class: usize) -> Ticket {
        self.submit(InterpretRequest::new(instance, class))
    }

    /// A point-in-time statistics snapshot (counters + cache gauges +
    /// latency quantiles).
    pub fn stats(&self) -> StatsSnapshot {
        self.inner
            .stats
            .snapshot(self.inner.cache.evictions(), self.inner.cache.len())
    }

    /// Snapshot of the solved regions, for [`CacheSnapshot::to_bytes`] /
    /// warm-starting another service.
    pub fn snapshot_cache(&self) -> CacheSnapshot {
        self.inner.cache.snapshot()
    }

    /// Warm-starts the cache from a prior run's snapshot; returns the
    /// number of entries admitted.
    pub fn restore_cache(&self, snapshot: &CacheSnapshot) -> usize {
        self.inner.cache.restore(snapshot)
    }
}

impl<M: PredictionApi + Send + Sync + 'static> Drop for InterpretationService<M> {
    fn drop(&mut self) {
        for _ in &self.workers {
            // Workers still draining jobs will see the sentinel eventually;
            // send errors mean they are already gone.
            let _ = self.tx.send(Msg::Shutdown);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<M: PredictionApi + Send + Sync + 'static> fmt::Debug for InterpretationService<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InterpretationService")
            .field("config", &self.inner.config)
            .field("cached_regions", &self.inner.cache.len())
            .finish_non_exhaustive()
    }
}

fn worker_loop<M: PredictionApi>(inner: &Inner<M>, rx: &Receiver<Msg>, tx: &Sender<Msg>) {
    while let Ok(Msg::Job(job)) = rx.recv() {
        // A panicking `predict` (e.g. a remote-API wrapper) must not take
        // the worker — or, via leaked coalescing leadership, a whole class
        // — down with it. The panicking job's reply sender is dropped here,
        // so its ticket resolves as `ServiceStopped`; `LeaderGuard` inside
        // `handle_job` releases any leadership it held.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle_job(inner, tx, job)));
        if outcome.is_err() {
            ServiceStats::add(&inner.stats.failures, 1);
        }
    }
}

/// Unwind protection for coalescing leadership: if the leader panics
/// between electing itself and settling its waiters, dropping the guard
/// releases the in-flight entry and requeues the parked waiters so healthy
/// workers recover them — without it, every future request for the class
/// would park behind a dead leader forever.
struct LeaderGuard<'a, M: PredictionApi> {
    inner: &'a Inner<M>,
    tx: &'a Sender<Msg>,
    class: usize,
    armed: bool,
}

impl<'a, M: PredictionApi> LeaderGuard<'a, M> {
    fn new(inner: &'a Inner<M>, tx: &'a Sender<Msg>, class: usize) -> Self {
        LeaderGuard {
            inner,
            tx,
            class,
            armed: true,
        }
    }

    /// The normal path: disarms the guard and hands back the waiters that
    /// parked during the solve.
    fn release(mut self) -> Vec<Job> {
        self.armed = false;
        self.inner
            .inflight
            .lock()
            .remove(&self.class)
            .expect("leader owns the in-flight entry")
    }
}

impl<M: PredictionApi> Drop for LeaderGuard<'_, M> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // Unwinding: release leadership and requeue the waiters. A send
        // failure means shutdown; dropping the job resolves its ticket as
        // `ServiceStopped`.
        if let Some(waiters) = self.inner.inflight.lock().remove(&self.class) {
            for waiter in waiters {
                let _ = self.tx.send(Msg::Job(waiter));
            }
        }
    }
}

/// Completes a job: records latency + outcome counters, sends the reply.
fn finish(inner: &Inner<impl PredictionApi>, job: Job, result: Result<Served, ServeError>) {
    if result.is_err() {
        ServiceStats::add(&inner.stats.failures, 1);
        if matches!(result, Err(ServeError::DeadlineExceeded)) {
            ServiceStats::add(&inner.stats.deadline_expired, 1);
        }
    }
    inner.stats.record_latency(job.submitted.elapsed());
    let _ = job.reply.send(result);
}

fn expired(job: &Job) -> bool {
    job.deadline.is_some_and(|d| Instant::now() > d)
}

fn handle_job<M: PredictionApi>(inner: &Inner<M>, tx: &Sender<Msg>, mut job: Job) {
    if expired(&job) {
        return finish(inner, job, Err(ServeError::DeadlineExceeded));
    }
    // Argument validation mirrors `OpenApiInterpreter::interpret`: doomed
    // requests must not be billed a single query.
    let (d, c_total) = (inner.api.dim(), inner.api.num_classes());
    if job.x.len() != d {
        let e = InterpretError::DimensionMismatch {
            expected: d,
            found: job.x.len(),
        };
        return finish(inner, job, Err(ServeError::Interpret(e)));
    }
    if c_total < 2 {
        let e = InterpretError::TooFewClasses {
            num_classes: c_total,
        };
        return finish(inner, job, Err(ServeError::Interpret(e)));
    }
    if job.class >= c_total {
        let e = InterpretError::ClassOutOfRange {
            class: job.class,
            num_classes: c_total,
        };
        return finish(inner, job, Err(ServeError::Interpret(e)));
    }

    // The membership probe: one query, reused as Algorithm 1's x⁰ equation
    // on a miss and carried along on a requeue — never paid twice.
    let probs = match job.probs.take() {
        Some(probs) => probs,
        None => {
            ServiceStats::add(&inner.stats.queries, 1);
            job.queries_spent += 1;
            inner.api.predict(job.x.as_slice())
        }
    };

    let generation = inner.solve_generation.load(Ordering::Relaxed);
    if let Some(hit) = inner
        .cache
        .lookup_probe(&job.x, probs.as_slice(), job.class)
    {
        ServiceStats::add(&inner.stats.hits, 1);
        let served = Served {
            interpretation: hit.interpretation,
            fingerprint: hit.fingerprint,
            outcome: ServeOutcome::CacheHit,
            queries: job.queries_spent,
            latency: job.submitted.elapsed(),
        };
        return finish(inner, job, Ok(served));
    }

    if inner.config.coalesce {
        let mut inflight = inner.inflight.lock();
        if let Some(waiters) = inflight.get_mut(&job.class) {
            // A leader is solving this class: park and let its result
            // decide (serve if it explains our probe, requeue otherwise).
            ServiceStats::add(&inner.stats.coalesced_waits, 1);
            job.probs = Some(probs);
            waiters.push(job);
            return;
        }
        inflight.insert(job.class, Vec::new());
        // Lock released here; newcomers for this class now park above.
    }
    let leadership = inner
        .config
        .coalesce
        .then(|| LeaderGuard::new(inner, tx, job.class));

    // Double-checked lookup before solving: a leader that finished between
    // our cache miss and our election has already inserted its region
    // (insert happens-before the generation bump, which happens-before the
    // registry removal our election observed), so re-reading the cache
    // prevents a duplicate solve of a just-solved region. The recheck runs
    // OUTSIDE the registry mutex — leadership already excludes same-class
    // leaders, so the scan serializes nobody — and only in the rare race,
    // when the generation says a solve completed since our lookup began.
    let recheck = (leadership.is_some()
        && inner.solve_generation.load(Ordering::Relaxed) != generation)
        .then(|| {
            inner
                .cache
                .lookup_probe(&job.x, probs.as_slice(), job.class)
        })
        .flatten();

    let (solved, outcome) = match recheck {
        Some(hit) => {
            ServiceStats::add(&inner.stats.hits, 1);
            (
                Ok((hit.interpretation, hit.fingerprint)),
                ServeOutcome::CacheHit,
            )
        }
        None => (lead_solve(inner, &mut job, probs), ServeOutcome::Solved),
    };

    if let Some(guard) = leadership {
        let waiters = guard.release();
        settle_waiters(inner, tx, solved.as_ref(), waiters);
    }

    let result = match solved {
        Ok((interpretation, fingerprint)) => Ok(Served {
            interpretation,
            fingerprint,
            outcome,
            queries: job.queries_spent,
            latency: job.submitted.elapsed(),
        }),
        Err(e) => Err(ServeError::Interpret(e)),
    };
    finish(inner, job, result);
}

/// Runs Algorithm 1 from the already-paid probe and admits the result into
/// the shared cache. Returns the *cached* entry (canonical under
/// fingerprint merging), so every caller serves identical bits.
fn lead_solve<M: PredictionApi>(
    inner: &Inner<M>,
    job: &mut Job,
    probs: Vector,
) -> Result<(Interpretation, RegionFingerprint), InterpretError> {
    let probe = Probe {
        x: job.x.clone(),
        probs,
    };
    let mut rng = request_rng(inner.config.seed, job.id);
    match inner
        .interpreter
        .interpret_with_probe(&inner.api, probe, job.class, &mut rng)
    {
        Ok(res) => {
            // `res.queries` counts the probe; it was already tallied.
            ServiceStats::add(&inner.stats.queries, (res.queries - 1) as u64);
            ServiceStats::add(&inner.stats.misses, 1);
            job.queries_spent += res.queries - 1;
            let cached = inner.cache.insert(res.interpretation);
            // After the insert, before the leader releases its registry
            // key: anyone who later observes the key absent also observes
            // this bump (the registry mutex orders both), and rechecks.
            inner.solve_generation.fetch_add(1, Ordering::Relaxed);
            Ok((cached.interpretation, cached.fingerprint))
        }
        Err(e) => {
            ServiceStats::add(
                &inner.stats.queries,
                queries_consumed(&e, inner.api.dim()) as u64,
            );
            Err(e)
        }
    }
}

/// Settles the requests that parked behind a leader's solve: waiters whose
/// probe the solved region explains are in that region (Theorem 2) and are
/// served its exact interpretation; everyone else — other regions queued
/// behind this solve, or waiters of a failed solve — goes back on the
/// queue, probe in hand, to hit the cache or lead their own solve.
fn settle_waiters<M: PredictionApi>(
    inner: &Inner<M>,
    tx: &Sender<Msg>,
    solved: Result<&(Interpretation, RegionFingerprint), &InterpretError>,
    waiters: Vec<Job>,
) {
    let rtol = inner.config.cache.membership_rtol;
    for waiter in waiters {
        if expired(&waiter) {
            finish(inner, waiter, Err(ServeError::DeadlineExceeded));
            continue;
        }
        let same_region = match solved {
            Ok((interpretation, _)) => {
                let probs = waiter.probs.as_ref().expect("waiters carry their probe");
                interpretation.explains_probe(&waiter.x, probs.as_slice(), rtol)
            }
            Err(_) => false,
        };
        if same_region {
            let (interpretation, fingerprint) = solved.expect("checked above");
            ServiceStats::add(&inner.stats.coalesced_served, 1);
            let served = Served {
                interpretation: interpretation.clone(),
                fingerprint: *fingerprint,
                outcome: ServeOutcome::Coalesced,
                queries: waiter.queries_spent,
                latency: waiter.submitted.elapsed(),
            };
            finish(inner, waiter, Ok(served));
        } else if let Err(channel::SendError(Msg::Job(waiter))) = tx.send(Msg::Job(waiter)) {
            finish(inner, waiter, Err(ServeError::ServiceStopped));
        }
    }
}

/// Derives a request's sampling RNG from `(seed, request id)` via
/// [`openapi_core::rng::derived_rng`] — the same derivation the eval
/// harness's `item_rng` uses, so request 0 never collides with direct uses
/// of the master seed and any fixed submission order replays
/// bit-identically.
fn request_rng(seed: u64, id: u64) -> StdRng {
    openapi_core::rng::derived_rng(seed, id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_api::{CountingApi, LinearSoftmaxModel, LocalLinearModel, TwoRegionPlm};
    use openapi_linalg::Matrix;

    fn two_region_model() -> TwoRegionPlm {
        let low = LocalLinearModel::new(
            Matrix::from_rows(&[&[2.0, -2.0], &[1.0, 0.5]]).unwrap(),
            Vector(vec![0.0, 0.2]),
        );
        let high = LocalLinearModel::new(
            Matrix::from_rows(&[&[-1.0, 1.5], &[0.0, 3.0]]).unwrap(),
            Vector(vec![0.5, -0.5]),
        );
        TwoRegionPlm::axis_split(0, 0.5, low, high)
    }

    fn service(workers: usize) -> InterpretationService<CountingApi<TwoRegionPlm>> {
        InterpretationService::new(
            CountingApi::new(two_region_model()),
            ServiceConfig {
                workers,
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn serves_exact_interpretations_and_counts_outcomes() {
        let svc = service(2);
        let instances: Vec<Vector> = (0..12)
            .map(|i| {
                let side = if i % 2 == 0 { 0.2 } else { 0.8 };
                Vector(vec![side, (i as f64 * 0.37).sin() * 0.4])
            })
            .collect();
        let tickets: Vec<Ticket> = instances
            .iter()
            .map(|x| svc.submit_instance(x.clone(), 0))
            .collect();
        let model = two_region_model();
        for (x, t) in instances.iter().zip(tickets) {
            let served = t.wait().expect("interior instances interpret");
            // Exactness: the served parameters are the region's ground truth.
            use openapi_api::GroundTruthOracle;
            let truth = model.local_model(x.as_slice()).decision_features(0);
            let err = served
                .interpretation
                .decision_features
                .l1_distance(&truth)
                .unwrap();
            assert!(err < 1e-7, "L1Dist {err}");
            // Every serve verified membership against this request's probe.
            assert!(served.queries >= 1);
        }
        let stats = svc.stats();
        assert_eq!(stats.requests, 12);
        assert_eq!(
            stats.hits + stats.misses + stats.coalesced_served + stats.failures,
            12
        );
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.cached_regions, 2);
        // The metered API agrees with the stats ledger.
        assert_eq!(stats.queries, svc.api().queries());
    }

    #[test]
    fn invalid_requests_fail_without_queries() {
        let svc = service(1);
        let bad_dim = svc.submit_instance(Vector(vec![0.0; 5]), 0).wait();
        assert!(matches!(
            bad_dim,
            Err(ServeError::Interpret(
                InterpretError::DimensionMismatch { .. }
            ))
        ));
        let bad_class = svc.submit_instance(Vector(vec![0.1, 0.2]), 9).wait();
        assert!(matches!(
            bad_class,
            Err(ServeError::Interpret(
                InterpretError::ClassOutOfRange { .. }
            ))
        ));
        assert_eq!(svc.api().queries(), 0);
        let stats = svc.stats();
        assert_eq!(stats.failures, 2);
    }

    #[test]
    fn expired_deadlines_are_rejected() {
        let svc = service(1);
        let req = InterpretRequest {
            instance: Vector(vec![0.2, 0.1]),
            class: 0,
            deadline: Some(Instant::now() - Duration::from_millis(1)),
        };
        assert!(matches!(
            svc.submit(req).wait(),
            Err(ServeError::DeadlineExceeded)
        ));
        assert_eq!(svc.stats().deadline_expired, 1);
    }

    #[test]
    fn tickets_can_be_polled() {
        let svc = service(1);
        let ticket = svc.submit_instance(Vector(vec![0.2, 0.1]), 0);
        let deadline = Instant::now() + Duration::from_secs(10);
        let result = loop {
            if let Some(r) = ticket.poll() {
                break r;
            }
            assert!(Instant::now() < deadline, "request never completed");
            std::thread::yield_now();
        };
        assert!(result.is_ok());
    }

    #[test]
    fn coalescing_shares_one_solve_across_a_burst() {
        // Single-region model: every request resolves to the same region,
        // so a burst must produce exactly one miss and zero failures, and
        // hits + coalesced make up the rest.
        let w = Matrix::from_fn(8, 3, |r, c| ((r * 3 + c) % 7) as f64 * 0.1 - 0.3);
        let api = CountingApi::new(LinearSoftmaxModel::new(w, Vector(vec![0.1, -0.2, 0.05])));
        let svc = InterpretationService::new(
            api,
            ServiceConfig {
                workers: 4,
                ..ServiceConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..64)
            .map(|i| {
                let x = Vector((0..8).map(|j| ((i * 8 + j) as f64 * 0.11).cos()).collect());
                svc.submit_instance(x, 1)
            })
            .collect();
        let mut outcomes = Vec::new();
        for t in tickets {
            outcomes.push(t.wait().expect("single region must interpret").outcome);
        }
        let stats = svc.stats();
        assert_eq!(stats.misses, 1, "one region, one solve");
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.hits + stats.coalesced_served, 63);
        assert_eq!(
            outcomes
                .iter()
                .filter(|o| **o == ServeOutcome::Solved)
                .count(),
            1
        );
        // All 64 answers are bit-identical (consistency).
        // (Checked via stats here; tests/service_concurrency.rs does the
        // full bitwise comparison across threads.)
    }

    #[test]
    fn panicking_solve_does_not_wedge_the_class_or_the_worker() {
        /// Panics on exactly the `panic_on`-th prediction — timed so the
        /// first request's probe succeeds (call 1) and its Algorithm-1
        /// sampling (calls 2–4) dies mid-solve, i.e. while the request
        /// holds coalescing leadership for its class.
        struct PanicOnCall<M> {
            inner: M,
            calls: AtomicU64,
            panic_on: u64,
        }

        impl<M: PredictionApi> PredictionApi for PanicOnCall<M> {
            fn dim(&self) -> usize {
                self.inner.dim()
            }

            fn num_classes(&self) -> usize {
                self.inner.num_classes()
            }

            fn predict(&self, x: &[f64]) -> Vector {
                let n = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
                assert!(n != self.panic_on, "injected mid-solve panic");
                self.inner.predict(x)
            }
        }

        let svc = InterpretationService::new(
            PanicOnCall {
                inner: two_region_model(),
                calls: AtomicU64::new(0),
                panic_on: 3,
            },
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        let x = Vector(vec![0.2, 0.1]);
        let poisoned = svc.submit_instance(x.clone(), 0);
        let recovered = svc.submit_instance(x.clone(), 0);
        let hit = svc.submit_instance(x, 0);
        // The poisoned request dies with the worker's unwind; its ticket
        // resolves (as stopped), it never hangs.
        assert!(poisoned.wait().is_err());
        // Leadership was released: the follow-up request for the same class
        // completes (a wedged registry would park it forever).
        let recovered = recovered
            .wait_timeout(Duration::from_secs(60))
            .expect("class must recover after a panicked leader")
            .expect("clean re-solve");
        assert_eq!(recovered.outcome, ServeOutcome::Solved);
        assert_eq!(hit.wait().unwrap().outcome, ServeOutcome::CacheHit);
        // The panicked request is accounted as a failure.
        assert!(svc.stats().failures >= 1);
    }

    #[test]
    fn replays_are_deterministic_for_a_fixed_submission_order() {
        let run = || {
            let svc = service(1);
            let xs = [Vector(vec![0.2, 0.4]), Vector(vec![0.7, -0.1])];
            xs.iter()
                .map(|x| {
                    svc.submit_instance(x.clone(), 0)
                        .wait()
                        .unwrap()
                        .interpretation
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mismatched_snapshot_degrades_to_misses_not_poisoned_lookups() {
        // Regression: an entry recovered from a DIFFERENT model (contrast
        // class 4 in a 2-class service) lands in the cache via restore; it
        // must simply never pass membership — requests for its class still
        // solve and succeed, rather than every lookup panicking on the
        // foreign entry and killing the class.
        use crate::snapshot::SnapshotEntry;
        use openapi_core::decision::PairwiseCoreParams;

        let foreign = Interpretation::from_pairwise(
            0,
            vec![PairwiseCoreParams {
                c_prime: 4, // out of range for TwoRegionPlm's 2 classes
                weights: Vector(vec![1.0, -1.0]),
                bias: 0.5,
            }],
        )
        .unwrap();
        let snapshot = CacheSnapshot {
            entries: vec![SnapshotEntry {
                fingerprint: foreign.fingerprint(6),
                interpretation: foreign,
            }],
        };
        let svc = service(2);
        assert_eq!(svc.restore_cache(&snapshot), 1);
        let served = svc
            .submit_instance(Vector(vec![0.2, 0.1]), 0)
            .wait()
            .expect("foreign cache entry must not poison the class");
        assert_eq!(served.outcome, ServeOutcome::Solved);
        assert_eq!(svc.stats().failures, 0);
    }

    #[test]
    fn warm_start_from_snapshot_skips_the_solves() {
        let svc = service(2);
        let xs: Vec<Vector> = vec![Vector(vec![0.2, 0.3]), Vector(vec![0.8, -0.2])];
        for x in &xs {
            svc.submit_instance(x.clone(), 0).wait().unwrap();
        }
        let snapshot = svc.snapshot_cache();
        assert_eq!(snapshot.entries.len(), 2);
        let bytes = snapshot.to_bytes();

        // A brand-new service restored from the bytes serves both regions
        // from cache: zero solves, one probe per request.
        let restored = CacheSnapshot::from_bytes(&bytes).unwrap();
        let svc2 = service(2);
        assert_eq!(svc2.restore_cache(&restored), 2);
        for x in &xs {
            let served = svc2.submit_instance(x.clone(), 0).wait().unwrap();
            assert_eq!(served.outcome, ServeOutcome::CacheHit);
            assert_eq!(served.queries, 1);
        }
        assert_eq!(svc2.stats().misses, 0);
    }
}
