//! The concurrent interpretation service (see the crate docs for the
//! request lifecycle and the exactness argument for coalescing).

use crate::coalesce::{ClassLedger, Election};
use crate::shared_cache::{SharedCacheConfig, SharedRegionCache};
use crate::snapshot::CacheSnapshot;
use crate::stats::{DriftStats, FabricStats, ServiceStats, StageSlot, StatsSnapshot};
use crossbeam::channel::{self, Receiver, Sender};
use openapi_api::PredictionApi;
use openapi_core::batch::queries_consumed;
use openapi_core::cache::ProbeRef;
use openapi_core::decision::{Interpretation, RegionFingerprint};
use openapi_core::equations::Probe;
use openapi_core::openapi::{OpenApiConfig, OpenApiInterpreter};
use openapi_core::InterpretError;
use openapi_linalg::Vector;
use openapi_store::{RegionStore, StoreConfig, StoreError};
use openapi_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use openapi_sync::Mutex;
use openapi_trace::{clock, slowlog, RequestSpan, Stage};
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (clamped to ≥ 1).
    pub workers: usize,
    /// Shared-cache sharding and capacity.
    pub cache: SharedCacheConfig,
    /// Configuration of the per-region Algorithm-1 solves.
    pub openapi: OpenApiConfig,
    /// Master seed; each request's sampling RNG derives from
    /// `(seed, request id)`, so a fixed submission order replays exactly.
    pub seed: u64,
    /// Whether concurrent same-class misses coalesce onto in-flight
    /// solves (`true` by default; disable to benchmark the difference).
    pub coalesce: bool,
    /// How many Algorithm-1 solves of one class may run concurrently
    /// before further misses park as waiters (clamped to ≥ 1; default 4).
    /// A class's region identity is unknowable before its solve, so
    /// during cold start distinct-region misses of one class would
    /// serialize behind a single leader; allowing several leaders
    /// parallelizes the cold start at the cost of occasionally solving
    /// the *same* region twice — duplicates merge at
    /// [`openapi_core::cache::RegionCache::insert`], so consistency is
    /// unaffected, only query spend. Set to 1 for strictly minimal spend.
    pub max_leaders_per_class: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            cache: SharedCacheConfig::default(),
            openapi: OpenApiConfig::default(),
            seed: 42,
            coalesce: true,
            max_leaders_per_class: 4,
        }
    }
}

/// One unit of work for the service.
#[derive(Debug, Clone)]
pub struct InterpretRequest {
    /// The instance whose prediction to interpret.
    pub instance: Vector,
    /// The class to interpret it for.
    pub class: usize,
    /// Drop-dead time: a request past its deadline completes with
    /// [`ServeError::DeadlineExceeded`] instead of occupying a worker.
    pub deadline: Option<Instant>,
}

impl InterpretRequest {
    /// A request with no deadline.
    pub fn new(instance: Vector, class: usize) -> Self {
        InterpretRequest {
            instance,
            class,
            deadline: None,
        }
    }

    /// Sets a deadline `budget` from now.
    pub fn with_timeout(mut self, budget: Duration) -> Self {
        self.deadline = Some(clock::now() + budget);
        self
    }
}

/// How a request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// Served from the shared in-memory cache (1 probe query).
    CacheHit,
    /// Served from the durable region store (1 probe query; the region
    /// was solved in a previous run and promoted back into the cache).
    StoreHit,
    /// This request led the Algorithm-1 solve for its region.
    Solved,
    /// Served from another request's in-flight solve (1 probe query).
    Coalesced,
}

/// A completed interpretation.
#[derive(Debug, Clone, PartialEq)]
pub struct Served {
    /// The region's exact interpretation (bit-identical across every
    /// request resolved to the same region — the paper's consistency
    /// property). Shared out of the cache slot: a hit hands out an `Arc`,
    /// never a multi-KB parameter copy.
    pub interpretation: Arc<Interpretation>,
    /// Canonical key of the serving region.
    pub fingerprint: RegionFingerprint,
    /// How the request was satisfied.
    pub outcome: ServeOutcome,
    /// Prediction queries spent on behalf of this request.
    pub queries: usize,
    /// End-to-end latency (submit → completion).
    pub latency: Duration,
    /// The request's trace span id (0 with tracing disabled), for
    /// correlating this reply with its ring events and slow-log lines.
    pub span: u64,
}

/// Why a request failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The underlying interpretation failed (bad arguments, budget
    /// exhaustion, …).
    Interpret(InterpretError),
    /// The request's deadline passed before it completed.
    DeadlineExceeded,
    /// The service shut down before the request completed.
    ServiceStopped,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Interpret(e) => write!(f, "interpretation failed: {e}"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::ServiceStopped => write!(f, "service stopped"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The caller's handle to an in-flight request: block on
/// [`Ticket::wait`] or poll with [`Ticket::poll`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Served, ServeError>>,
}

impl Ticket {
    /// Blocks until the request completes.
    ///
    /// # Errors
    /// [`ServeError`] as completed by the service, or
    /// [`ServeError::ServiceStopped`] if the service dropped the request.
    pub fn wait(self) -> Result<Served, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ServiceStopped))
    }

    /// Blocks up to `timeout`; `None` when the request is still running.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Served, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::ServiceStopped)),
        }
    }

    /// Non-blocking check; `None` while the request is still running.
    pub fn poll(&self) -> Option<Result<Served, ServeError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::ServiceStopped)),
        }
    }
}

/// A queued request inside the service. `probs` caches the membership
/// probe so a requeued request never queries the API twice.
struct Job {
    x: Vector,
    class: usize,
    deadline: Option<Instant>,
    probs: Option<Vector>,
    queries_spent: usize,
    submitted: Instant,
    /// When the job last entered the queue: `submitted` at first, reset
    /// on every requeue, so the queue-stage timing never double-counts a
    /// previous pass.
    enqueued: Instant,
    id: u64,
    /// Set when the drift detector invalidated this request's former
    /// region: its eventual successful serve is a *re-solve* and is traced
    /// ([`Stage::Resolve`]) and counted as such.
    drifted: bool,
    /// The request's trace span; every stage event carries its id.
    span: RequestSpan,
    /// Per-stage nanosecond breakdown accumulated across the job's life,
    /// in [`crate::stats::STAGE_NAMES`] order — the slow log's timeline.
    stage_ns: [u64; slowlog::STAGES],
    reply: mpsc::Sender<Result<Served, ServeError>>,
}

enum Msg {
    Job(Job),
    Shutdown,
}

/// Most served instances the drift detector remembers. Witnesses are the
/// detector's ground truth ("this exact `x` was served by that region"),
/// so the book is bounded: once full, new serves are simply not witnessed
/// (drift on them is still caught the moment a *witnessed* instance of
/// the same region misses, or by an [`InterpretationService::audit_drift`]
/// sweep).
const DRIFT_WITNESS_CAP: usize = 4096;

/// Runtime kill switch for the drift detector — witness recording on the
/// serve path and conviction on the miss path. On by default; the
/// overhead A/B in `--bench chaos_overhead` flips it to price the
/// calm-path bookkeeping (`BENCH_chaos.json` at the workspace root), and
/// an operator who accepts staleness-on-swap can do the same.
static DRIFT_DETECTION: AtomicBool = AtomicBool::new(true);

/// Enables or disables the drift detector at runtime (default: enabled).
///
/// Disabling stops witness recording and miss-path convictions; it does
/// not forget already-held witnesses, and tombstones already written stay
/// suppressed (a tombstone is a store fact, not detector state).
pub fn set_drift_detection_enabled(on: bool) {
    // ordering: Relaxed — an independent on/off knob; every serve
    // re-reads it, and no other state is published through it.
    DRIFT_DETECTION.store(on, Ordering::Relaxed);
}

/// Whether the drift detector is currently enabled.
pub fn drift_detection_enabled() -> bool {
    // ordering: Relaxed — see `set_drift_detection_enabled`.
    DRIFT_DETECTION.load(Ordering::Relaxed)
}

/// The drift detector's memory: for instances the service has served, the
/// exact bit pattern of `x` (keyed per class) and the fingerprint of the
/// region that served it. A later request for the same exact instance
/// whose probe misses *both* tiers while that region is still on offer is
/// proof the hidden model changed — predictions moved, so the once-exact
/// parameters no longer explain them.
#[derive(Debug, Default)]
struct WitnessBook {
    by_instance: HashMap<(usize, Vec<u64>), RegionFingerprint>,
}

/// The exact identity of a served instance: its class and the bit
/// patterns of its coordinates (bit equality, not float equality — the
/// witness must name the very probe that was served).
fn witness_key(class: usize, x: &Vector) -> (usize, Vec<u64>) {
    (class, x.as_slice().iter().map(|v| v.to_bits()).collect())
}

impl WitnessBook {
    /// Remembers (or refreshes) a successful serve. Past the cap, new
    /// instances are not admitted; known instances always refresh.
    fn record(&mut self, class: usize, x: &Vector, fingerprint: RegionFingerprint) {
        let key = witness_key(class, x);
        if self.by_instance.len() >= DRIFT_WITNESS_CAP && !self.by_instance.contains_key(&key) {
            return;
        }
        self.by_instance.insert(key, fingerprint);
    }

    /// Removes and returns the witnessed fingerprint for an instance, if
    /// any — the serving path consumes the witness while deciding whether
    /// a two-tier miss is drift (a successful re-serve re-records it).
    fn take(&mut self, class: usize, x: &Vector) -> Option<RegionFingerprint> {
        self.by_instance.remove(&witness_key(class, x))
    }

    /// Witnesses currently held (gauge).
    fn len(&self) -> usize {
        self.by_instance.len()
    }

    /// A copy of every witness, for the audit sweep.
    fn entries(&self) -> Vec<((usize, Vec<u64>), RegionFingerprint)> {
        self.by_instance
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// Drops one witness by its exact key.
    fn remove(&mut self, class: usize, bits: &[u64]) {
        self.by_instance.remove(&(class, bits.to_vec()));
    }
}

/// State shared between the service handle and its workers.
struct Inner<M> {
    api: M,
    cache: SharedRegionCache,
    store: Option<RegionStore>,
    stats: ServiceStats,
    /// Counters the anti-entropy fabric (`openapi-fabric`, a tier above
    /// this crate) records into through a [`ServiceCore`]. Always present
    /// so recording is lock-free; surfaced in snapshots only once
    /// `fabric_active` is set.
    fabric_stats: FabricStats,
    /// Set by [`ServiceCore::mark_fabric_active`]; gates whether
    /// [`InterpretationService::stats`] carries the fabric counters.
    fabric_active: AtomicBool,
    /// Counters of the drift detector (see [`WitnessBook`]).
    drift_stats: DriftStats,
    /// Served instances remembered for drift detection.
    witnesses: Mutex<WitnessBook>,
    interpreter: OpenApiInterpreter,
    config: ServiceConfig,
    /// Per-class in-flight solve registry: up to
    /// [`ServiceConfig::max_leaders_per_class`] leaders solve
    /// concurrently; requests beyond that park as waiters and are settled
    /// (or requeued) by whichever leader finishes next. Owns the solve
    /// generation too — see [`crate::coalesce`] for the protocol and its
    /// `--cfg loom` model checks.
    ledger: ClassLedger<Job>,
}

/// The concurrent interpretation service (see the crate docs).
///
/// Dropping the service joins its workers; requests still queued at that
/// point complete with [`ServeError::ServiceStopped`]. A service with a
/// durable store flushes it on drop too (the store's own destructor);
/// use [`InterpretationService::close`] to *observe* flush errors.
pub struct InterpretationService<M: PredictionApi + Send + Sync + 'static> {
    inner: Arc<Inner<M>>,
    tx: Sender<Msg>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl<M: PredictionApi + Send + Sync + 'static> InterpretationService<M> {
    /// Spawns the worker pool over `api`, with no durable tier.
    pub fn new(api: M, config: ServiceConfig) -> Self {
        Self::build(api, config, None)
    }

    /// Spawns the worker pool over `api` with `store` as the L2 behind
    /// the shared cache: cache misses consult the store before electing
    /// an Algorithm-1 leader, and every solved region is appended to the
    /// store's WAL asynchronously.
    pub fn with_store(api: M, config: ServiceConfig, store: RegionStore) -> Self {
        Self::build(api, config, Some(store))
    }

    /// Convenience: opens (or creates) a [`RegionStore`] under `dir` —
    /// recovering every previously solved region — and builds the service
    /// on top of it. The store's membership tolerance is aligned with the
    /// cache's.
    ///
    /// # Errors
    /// [`StoreError`] from [`RegionStore::open`].
    pub fn open(api: M, config: ServiceConfig, dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let store = RegionStore::open(
            dir,
            StoreConfig {
                membership_rtol: config.cache.membership_rtol,
                ..StoreConfig::default()
            },
        )?;
        Ok(Self::with_store(api, config, store))
    }

    fn build(api: M, config: ServiceConfig, store: Option<RegionStore>) -> Self {
        let mut config = config;
        config.workers = config.workers.max(1);
        config.max_leaders_per_class = config.max_leaders_per_class.max(1);
        let cache = SharedRegionCache::new(config.cache.clone());
        let interpreter = OpenApiInterpreter::new(config.openapi.clone());
        let inner = Arc::new(Inner {
            api,
            cache,
            store,
            stats: ServiceStats::default(),
            fabric_stats: FabricStats::default(),
            fabric_active: AtomicBool::new(false),
            drift_stats: DriftStats::default(),
            witnesses: Mutex::new(WitnessBook::default()),
            interpreter,
            config,
            ledger: ClassLedger::new(),
        });
        let (tx, rx) = channel::unbounded::<Msg>();
        let workers = (0..inner.config.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                let rx: Receiver<Msg> = rx.clone();
                let tx = tx.clone();
                std::thread::spawn(move || worker_loop(&inner, &rx, &tx))
            })
            .collect();
        InterpretationService {
            inner,
            tx,
            workers,
            next_id: AtomicU64::new(0),
        }
    }

    /// Borrow the (clamped) configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// Borrow the shared region cache (e.g. to snapshot it).
    pub fn cache(&self) -> &SharedRegionCache {
        &self.inner.cache
    }

    /// Borrow the durable store, when the service has one.
    pub fn store(&self) -> Option<&RegionStore> {
        self.inner.store.as_ref()
    }

    /// Borrow the wrapped prediction API.
    pub fn api(&self) -> &M {
        &self.inner.api
    }

    /// A cloneable handle onto the service's shared state, for sibling
    /// subsystems (the anti-entropy fabric) that outlive individual
    /// requests. See [`ServiceCore`] for the shutdown-ordering caveat.
    pub fn core(&self) -> ServiceCore<M> {
        ServiceCore {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Submits a request; returns immediately with a [`Ticket`]. Mints a
    /// fresh root trace span for the request.
    pub fn submit(&self, request: InterpretRequest) -> Ticket {
        self.submit_spanned(request, RequestSpan::root())
    }

    /// [`submit`](InterpretationService::submit) under a caller-minted
    /// trace span — `openapi-net` mints the span at frame decode so the
    /// request's trace covers its wire time too.
    pub fn submit_spanned(&self, request: InterpretRequest, span: RequestSpan) -> Ticket {
        let (reply, rx) = mpsc::channel();
        ServiceStats::add(&self.inner.stats.requests, 1);
        let now = clock::now();
        let job = Job {
            x: request.instance,
            class: request.class,
            deadline: request.deadline,
            probs: None,
            queries_spent: 0,
            submitted: now,
            enqueued: now,
            // ordering: Relaxed — the ID only needs uniqueness (the RMW is
            // atomic regardless of ordering); nothing is published through it.
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            drifted: false,
            span,
            stage_ns: [0; slowlog::STAGES],
            reply,
        };
        if let Err(channel::SendError(Msg::Job(job))) = self.tx.send(Msg::Job(job)) {
            // Workers are gone (shutdown raced the submit): fail the ticket
            // immediately — through `finish`, so the failure is counted and
            // the stats ledger stays consistent.
            finish(self.inner.as_ref(), job, Err(ServeError::ServiceStopped));
        }
        Ticket { rx }
    }

    /// Convenience: submit an instance/class pair with no deadline.
    pub fn submit_instance(&self, instance: Vector, class: usize) -> Ticket {
        self.submit(InterpretRequest::new(instance, class))
    }

    /// Submits a batch of requests through the warm-path fast lane: every
    /// request is probed on the caller thread (one prediction query each —
    /// the same query the per-request path pays), then the whole batch is
    /// resolved against the shared cache in **one blocked kernel pass per
    /// shard** ([`SharedRegionCache::lookup_probe_batch`]) instead of N
    /// sequential scans. Hits complete immediately; misses carry their
    /// probe to the worker pool and take the ordinary solve path (store
    /// lookup, coalescing, Algorithm 1), so outcomes, query accounting,
    /// and exactness are identical to N individual [`submit`] calls — only
    /// the cache-hit path gets cheaper.
    ///
    /// Returns one [`Ticket`] per request, in submission order.
    ///
    /// [`submit`]: InterpretationService::submit
    pub fn submit_batch(&self, requests: Vec<InterpretRequest>) -> Vec<Ticket> {
        self.submit_batch_spanned(requests, RequestSpan::root())
    }

    /// [`submit_batch`](InterpretationService::submit_batch) under a
    /// caller-minted trace span: each request gets a child span of
    /// `parent` (the wire frame's span, for remote batches), and the
    /// shared kernel pass's events attribute to `parent` itself.
    pub fn submit_batch_spanned(
        &self,
        requests: Vec<InterpretRequest>,
        parent: RequestSpan,
    ) -> Vec<Ticket> {
        let inner = self.inner.as_ref();
        let (d, c_total) = (inner.api.dim(), inner.api.num_classes());
        let mut tickets = Vec::with_capacity(requests.len());
        // Jobs that survive validation, paired with their (already paid)
        // membership probe.
        let mut pending: Vec<(Job, Vector)> = Vec::new();
        for request in requests {
            let (reply, rx) = mpsc::channel();
            ServiceStats::add(&inner.stats.requests, 1);
            let now = clock::now();
            let mut job = Job {
                x: request.instance,
                class: request.class,
                deadline: request.deadline,
                probs: None,
                queries_spent: 0,
                submitted: now,
                enqueued: now,
                // ordering: Relaxed — uniqueness only, as in `submit`.
                id: self.next_id.fetch_add(1, Ordering::Relaxed),
                drifted: false,
                span: parent.child(),
                stage_ns: [0; slowlog::STAGES],
                reply,
            };
            tickets.push(Ticket { rx });
            if expired(&job) {
                finish(inner, job, Err(ServeError::DeadlineExceeded));
                continue;
            }
            // Validation mirrors `handle_job`: doomed requests are not
            // billed a single query.
            if job.x.len() != d {
                let e = InterpretError::DimensionMismatch {
                    expected: d,
                    found: job.x.len(),
                };
                finish(inner, job, Err(ServeError::Interpret(e)));
                continue;
            }
            if c_total < 2 {
                let e = InterpretError::TooFewClasses {
                    num_classes: c_total,
                };
                finish(inner, job, Err(ServeError::Interpret(e)));
                continue;
            }
            if job.class >= c_total {
                let e = InterpretError::ClassOutOfRange {
                    class: job.class,
                    num_classes: c_total,
                };
                finish(inner, job, Err(ServeError::Interpret(e)));
                continue;
            }
            ServiceStats::add(&inner.stats.queries, 1);
            job.queries_spent += 1;
            let probe_start = clock::now();
            let probs = inner.api.predict(job.x.as_slice());
            // Per-request probe attribution in the batch path covers the
            // prediction query; the shared kernel pass below is the
            // frame's, not any one item's.
            let (_, at) = mark_stage(inner, &mut job, StageSlot::Probe, probe_start);
            job.span.event_at(Stage::Probe, 1, at);
            pending.push((job, probs));
        }

        // One batched membership pass across the shards.
        let probes: Vec<ProbeRef<'_>> = pending
            .iter()
            .map(|(job, probs)| ProbeRef {
                x: &job.x,
                probs: probs.as_slice(),
                class: job.class,
            })
            .collect();
        let mut hits = Vec::new();
        hits.resize_with(probes.len(), || None);
        {
            // The blocked pass's kernel events attribute to the frame span.
            let _frame = openapi_trace::enter(parent);
            inner.cache.lookup_probe_batch(&probes, &mut hits);
        }
        drop(probes);

        // One clock read covers every hit in the frame: the batched pass
        // just ended, so all the hit events share its completion instant.
        let batch_at = clock::now();
        for ((mut job, probs), hit) in pending.into_iter().zip(hits) {
            match hit {
                Some(cached) => {
                    ServiceStats::add(&inner.stats.hits, 1);
                    job.span.event_at(Stage::CacheHit, 0, batch_at);
                    let served = Served {
                        interpretation: cached.interpretation,
                        fingerprint: cached.fingerprint,
                        outcome: ServeOutcome::CacheHit,
                        queries: job.queries_spent,
                        latency: job.submitted.elapsed(),
                        span: job.span.id(),
                    };
                    finish(inner, job, Ok(served));
                }
                None => {
                    // Hand the probe to the workers: `handle_job` takes it
                    // from `job.probs` and never queries twice.
                    job.probs = Some(probs);
                    if let Err(channel::SendError(Msg::Job(job))) = self.tx.send(Msg::Job(job)) {
                        finish(inner, job, Err(ServeError::ServiceStopped));
                    }
                }
            }
        }
        tickets
    }

    /// Records the reply-write stage for a request served over the wire:
    /// `openapi-net`'s writer thread calls this after framing and writing
    /// the response, with the `span` taken from [`Served::span`] and `at`
    /// the clock reading that ended the write (one reading stamps every
    /// span a batch frame answers).
    pub fn record_reply(&self, span: u64, latency: Duration, at: Instant) {
        self.inner.stats.record_stage(StageSlot::Reply, latency);
        RequestSpan::from_id(span).event_at(
            Stage::Reply,
            latency.as_nanos().min(u128::from(u64::MAX)) as u64,
            at,
        );
    }

    /// A point-in-time statistics snapshot (counters + cache gauges +
    /// latency quantiles + the store's counters when one is attached).
    pub fn stats(&self) -> StatsSnapshot {
        let mut snapshot = self
            .inner
            .stats
            .snapshot(self.inner.cache.evictions(), self.inner.cache.len());
        snapshot.store = self.inner.store.as_ref().map(RegionStore::stats);
        // ordering: Relaxed — a presence flag set once at fabric spawn;
        // the counters it gates are themselves only per-counter exact.
        if self.inner.fabric_active.load(Ordering::Relaxed) {
            snapshot.fabric = Some(self.inner.fabric_stats.snapshot());
        }
        let witnesses = self.inner.witnesses.lock().len() as u64;
        snapshot.drift = Some(self.inner.drift_stats.snapshot(witnesses));
        snapshot
    }

    /// Actively audits the served history against the live API: re-probes
    /// every witnessed instance (one prediction query each) and
    /// invalidates any whose probe no cached or stored region explains
    /// while the region that once served it is still on offer — the same
    /// verdict the inline detector reaches, without waiting for traffic to
    /// touch the stale region. Returns the number of regions invalidated.
    pub fn audit_drift(&self) -> u64 {
        audit_drift(self.inner.as_ref())
    }

    /// Snapshot of the solved regions, for [`CacheSnapshot::to_bytes`] /
    /// warm-starting another service.
    pub fn snapshot_cache(&self) -> CacheSnapshot {
        self.inner.cache.snapshot()
    }

    /// Warm-starts the cache from a prior run's snapshot; returns the
    /// number of entries admitted.
    pub fn restore_cache(&self, snapshot: &CacheSnapshot) -> usize {
        self.inner.cache.restore(snapshot)
    }

    /// Graceful shutdown: drains and joins the workers, then closes the
    /// durable store (final WAL flush + fsync), surfacing any I/O error.
    /// Dropping the service instead does the same shutdown but can only
    /// swallow store errors.
    ///
    /// # Errors
    /// [`StoreError`] when the store's final flush fails.
    pub fn close(mut self) -> Result<(), StoreError> {
        self.shutdown_workers();
        // Workers are joined, so this handle owns the last `Arc` and can
        // take the store out for a fallible close. (If a caller somehow
        // kept another clone alive, fall back to the store's own drop —
        // still flushed, just not observable.)
        match Arc::get_mut(&mut self.inner).and_then(|inner| inner.store.take()) {
            Some(store) => store.close(),
            None => Ok(()),
        }
    }

    fn shutdown_workers(&mut self) {
        for _ in &self.workers {
            // Workers still draining jobs will see the sentinel eventually;
            // send errors mean they are already gone.
            let _ = self.tx.send(Msg::Shutdown);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<M: PredictionApi + Send + Sync + 'static> Drop for InterpretationService<M> {
    fn drop(&mut self) {
        self.shutdown_workers();
    }
}

/// A cloneable handle onto an [`InterpretationService`]'s shared state:
/// the API, the durable store, the shared cache, and the fabric counters.
/// `openapi-fabric`'s gossip loop holds one so it can read digests, ingest
/// peer records, and promote them — without owning the service.
///
/// **Shutdown ordering:** a live core keeps the service's shared state
/// alive, so [`InterpretationService::close`] cannot take the store out
/// for a fallible close while one exists — the store still flushes (its
/// own destructor), but flush errors become unobservable. Shut the fabric
/// down (dropping its core) before closing the service.
pub struct ServiceCore<M: PredictionApi + Send + Sync + 'static> {
    inner: Arc<Inner<M>>,
}

impl<M: PredictionApi + Send + Sync + 'static> Clone for ServiceCore<M> {
    fn clone(&self) -> Self {
        ServiceCore {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M: PredictionApi + Send + Sync + 'static> fmt::Debug for ServiceCore<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceCore")
            .field("cached_regions", &self.inner.cache.len())
            .field(
                "stored_regions",
                &self.inner.store.as_ref().map(RegionStore::len),
            )
            .finish_non_exhaustive()
    }
}

impl<M: PredictionApi + Send + Sync + 'static> ServiceCore<M> {
    /// Borrow the wrapped prediction API.
    pub fn api(&self) -> &M {
        &self.inner.api
    }

    /// Borrow the durable store, when the service has one.
    pub fn store(&self) -> Option<&RegionStore> {
        self.inner.store.as_ref()
    }

    /// Borrow the (clamped) service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// The fabric counters this service surfaces in its stats snapshots.
    pub fn fabric_stats(&self) -> &FabricStats {
        &self.inner.fabric_stats
    }

    /// Marks the fabric attached: from now on,
    /// [`InterpretationService::stats`] snapshots carry the fabric
    /// counters (and the wire/Prometheus expositions with them).
    pub fn mark_fabric_active(&self) {
        // ordering: Relaxed — a one-way presence flag; the counters it
        // gates carry their own (per-counter) contract.
        self.inner.fabric_active.store(true, Ordering::Relaxed);
    }

    /// Ingests a validated record pulled from a peer: appends it to the
    /// durable store (idempotent — the store dedupes re-appends) and
    /// promotes it into the shared region cache, so the next request in
    /// that region warm-serves without a solve. Returns whether the store
    /// accepted the record as new.
    ///
    /// Exactness is *not* delegated to the peer: the serving path
    /// re-verifies membership against each request's own probe before the
    /// record ever answers anything, identical to a locally solved region.
    pub fn ingest(
        &self,
        fingerprint: RegionFingerprint,
        interpretation: Arc<Interpretation>,
    ) -> bool {
        if let Some(store) = &self.inner.store {
            // Tombstones win permanently: a region invalidated for drift
            // must never be resurrected by a replicated live record, no
            // matter the arrival order — neither in the store (its admit
            // also refuses) nor, crucially, in the cache.
            if store.contains_tombstone(interpretation.class, fingerprint) {
                return false;
            }
        }
        let fresh = match &self.inner.store {
            Some(store) => store.append(fingerprint, Arc::clone(&interpretation)),
            None => false,
        };
        // Promote through the cache's own insert so fingerprint merging
        // keeps one canonical entry per region.
        let _ = self.inner.cache.insert(interpretation);
        fresh
    }

    /// The drift detector's counters this service surfaces in its stats
    /// snapshots.
    pub fn drift_stats(&self) -> &DriftStats {
        &self.inner.drift_stats
    }

    /// Applies a "forget this region" fact — detected locally by
    /// [`InterpretationService::audit_drift`]/the serving path on a peer
    /// and replicated through the fabric, or decided by an operator:
    /// evicts the region's cache entries and tombstones it in the durable
    /// store, so it can never be served again nor resurrected by
    /// anti-entropy set union. Returns whether the tombstone was fresh
    /// (false when the store already held it, or without a store).
    pub fn apply_tombstone(&self, class: usize, fingerprint: RegionFingerprint) -> bool {
        let evicted = self.inner.cache.evict(class, fingerprint) as u64;
        DriftStats::add(&self.inner.drift_stats.invalidated, evicted);
        let fresh = match &self.inner.store {
            Some(store) => store.tombstone(class, fingerprint),
            None => false,
        };
        if fresh {
            DriftStats::add(&self.inner.drift_stats.tombstones, 1);
            RequestSpan::detached().event(Stage::Invalidate, fingerprint.0);
        }
        fresh
    }

    /// [`InterpretationService::audit_drift`] through the core handle, for
    /// sibling subsystems (the fabric's chaos soak, operator tooling).
    pub fn audit_drift(&self) -> u64 {
        audit_drift(self.inner.as_ref())
    }
}

impl<M: PredictionApi + Send + Sync + 'static> fmt::Debug for InterpretationService<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InterpretationService")
            .field("config", &self.inner.config)
            .field("cached_regions", &self.inner.cache.len())
            .field(
                "stored_regions",
                &self.inner.store.as_ref().map(RegionStore::len),
            )
            .finish_non_exhaustive()
    }
}

fn worker_loop<M: PredictionApi>(inner: &Inner<M>, rx: &Receiver<Msg>, tx: &Sender<Msg>) {
    while let Ok(Msg::Job(job)) = rx.recv() {
        // A panicking `predict` (e.g. a remote-API wrapper) must not take
        // the worker — or, via leaked coalescing leadership, a whole class
        // — down with it. The panicking job's reply sender is dropped here,
        // so its ticket resolves as `ServiceStopped`; `LeaderGuard` inside
        // `handle_job` releases any leadership it held.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle_job(inner, tx, job)));
        if outcome.is_err() {
            ServiceStats::add(&inner.stats.failures, 1);
        }
    }
}

/// Unwind protection for coalescing leadership: if a leader panics
/// between electing itself and settling its waiters, dropping the guard
/// steps its slot down and requeues the parked waiters so healthy workers
/// recover them — without it, a class at its leader limit would park every
/// future request behind dead leaders forever.
struct LeaderGuard<'a, M: PredictionApi> {
    inner: &'a Inner<M>,
    tx: &'a Sender<Msg>,
    class: usize,
    armed: bool,
}

impl<'a, M: PredictionApi> LeaderGuard<'a, M> {
    fn new(inner: &'a Inner<M>, tx: &'a Sender<Msg>, class: usize) -> Self {
        LeaderGuard {
            inner,
            tx,
            class,
            armed: true,
        }
    }

    /// The normal path: disarms the guard, steps this leader down, and
    /// hands back the waiters that parked during the solve.
    fn release(mut self) -> Vec<Job> {
        self.armed = false;
        self.inner.ledger.step_down(self.class)
    }
}

impl<M: PredictionApi> Drop for LeaderGuard<'_, M> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // Unwinding: step down and requeue the waiters. A send failure
        // means shutdown; dropping the job resolves its ticket as
        // `ServiceStopped`.
        for mut waiter in self.inner.ledger.step_down(self.class) {
            waiter.enqueued = clock::now();
            let _ = self.tx.send(Msg::Job(waiter));
        }
    }
}

/// Records one stage's elapsed time into the service's per-stage
/// histogram and the job's slow-log breakdown; returns the elapsed
/// nanoseconds (for use as an event payload) together with the clock
/// reading that ended the stage, so the caller can stamp the stage's
/// trace event without a second clock read.
fn mark_stage(
    inner: &Inner<impl PredictionApi>,
    job: &mut Job,
    slot: StageSlot,
    start: Instant,
) -> (u64, Instant) {
    let now = clock::now();
    let elapsed = now.saturating_duration_since(start);
    inner.stats.record_stage(slot, elapsed);
    let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
    job.stage_ns[slot as usize] += ns;
    (ns, now)
}

/// Completes a job: records latency + outcome counters, emits the span's
/// terminal event, feeds the slow-request log, sends the reply.
fn finish(inner: &Inner<impl PredictionApi>, job: Job, result: Result<Served, ServeError>) {
    // Finish payload: 0 ok / 1 failed / 2 deadline-expired.
    let outcome_code = match &result {
        Ok(_) => 0,
        Err(ServeError::DeadlineExceeded) => 2,
        Err(_) => 1,
    };
    if result.is_err() {
        ServiceStats::add(&inner.stats.failures, 1);
        if matches!(result, Err(ServeError::DeadlineExceeded)) {
            ServiceStats::add(&inner.stats.deadline_expired, 1);
        }
    }
    let now = clock::now();
    let latency = now.saturating_duration_since(job.submitted);
    inner.stats.record_latency(latency);
    if let Ok(served) = &result {
        if job.drifted {
            // The drift detector invalidated this request's former region
            // and this serve replaced it with a live answer.
            DriftStats::add(&inner.drift_stats.resolves, 1);
            job.span.event_at(Stage::Resolve, served.fingerprint.0, now);
        }
        // Witness the serve: the exact instance and the region that
        // answered it, the ground truth later drift checks test against.
        if drift_detection_enabled() {
            inner
                .witnesses
                .lock()
                .record(job.class, &job.x, served.fingerprint);
        }
    }
    job.span.event_at(Stage::Finish, outcome_code, now);
    slowlog::observe(job.span.id(), latency, &job.stage_ns);
    let _ = job.reply.send(result);
}

fn expired(job: &Job) -> bool {
    job.deadline.is_some_and(|d| clock::now() > d)
}

fn handle_job<M: PredictionApi>(inner: &Inner<M>, tx: &Sender<Msg>, mut job: Job) {
    // Kernel and store events emitted below attribute to this request's
    // span through the thread-local.
    let _span_guard = openapi_trace::enter(job.span);
    let enqueued = job.enqueued;
    let (queue_ns, at) = mark_stage(inner, &mut job, StageSlot::Queue, enqueued);
    job.span.event_at(Stage::Queue, queue_ns, at);
    if expired(&job) {
        return finish(inner, job, Err(ServeError::DeadlineExceeded));
    }
    // Argument validation mirrors `OpenApiInterpreter::interpret`: doomed
    // requests must not be billed a single query.
    let (d, c_total) = (inner.api.dim(), inner.api.num_classes());
    if job.x.len() != d {
        let e = InterpretError::DimensionMismatch {
            expected: d,
            found: job.x.len(),
        };
        return finish(inner, job, Err(ServeError::Interpret(e)));
    }
    if c_total < 2 {
        let e = InterpretError::TooFewClasses {
            num_classes: c_total,
        };
        return finish(inner, job, Err(ServeError::Interpret(e)));
    }
    if job.class >= c_total {
        let e = InterpretError::ClassOutOfRange {
            class: job.class,
            num_classes: c_total,
        };
        return finish(inner, job, Err(ServeError::Interpret(e)));
    }

    // The membership probe: one query, reused as Algorithm 1's x⁰ equation
    // on a miss and carried along on a requeue — never paid twice.
    let probe_start = clock::now();
    let (probs, probe_queries) = match job.probs.take() {
        Some(probs) => (probs, 0),
        None => {
            ServiceStats::add(&inner.stats.queries, 1);
            job.queries_spent += 1;
            (inner.api.predict(job.x.as_slice()), 1)
        }
    };

    let generation = inner.ledger.generation();
    let hit = inner
        .cache
        .lookup_probe(&job.x, probs.as_slice(), job.class);
    // The probe stage covers the prediction query plus the cache scan.
    let (_, at) = mark_stage(inner, &mut job, StageSlot::Probe, probe_start);
    job.span.event_at(Stage::Probe, probe_queries, at);
    if let Some(hit) = hit {
        ServiceStats::add(&inner.stats.hits, 1);
        job.span.event_at(Stage::CacheHit, 0, at);
        let served = Served {
            interpretation: hit.interpretation,
            fingerprint: hit.fingerprint,
            outcome: ServeOutcome::CacheHit,
            queries: job.queries_spent,
            latency: job.submitted.elapsed(),
            span: job.span.id(),
        };
        return finish(inner, job, Ok(served));
    }

    // L2: the durable store. A region solved in any previous run (or by a
    // sibling process sharing the directory) is promoted back into the
    // cache and served for the price of the probe — no leader election,
    // no Algorithm-1 queries. The membership test just passed against
    // *this* request's live probe, so the serve is as exact as any hit.
    if let Some(store) = &inner.store {
        let store_start = clock::now();
        let stored = store.lookup_probe(&job.x, probs.as_slice(), job.class);
        let (_, at) = mark_stage(inner, &mut job, StageSlot::Store, store_start);
        job.span
            .event_at(Stage::StoreLookup, u64::from(stored.is_some()), at);
        if let Some(stored) = stored {
            ServiceStats::add(&inner.stats.store_hits, 1);
            let cached = inner.cache.insert(stored.interpretation);
            let served = Served {
                interpretation: cached.interpretation,
                fingerprint: cached.fingerprint,
                outcome: ServeOutcome::StoreHit,
                queries: job.queries_spent,
                latency: job.submitted.elapsed(),
                span: job.span.id(),
            };
            return finish(inner, job, Ok(served));
        }
    }

    // Drift detection: this exact instance was served before (witnessed),
    // yet its probe now misses both tiers. If the region that served it is
    // still being offered, the hidden model changed behind the API — the
    // once-exact parameters no longer explain its predictions. Invalidate
    // the stale region everywhere (cache evict + store tombstone), then
    // fall through to re-solve against the live API. A consumed witness is
    // re-recorded when this request's fresh serve completes.
    let witnessed = if drift_detection_enabled() {
        inner.witnesses.lock().take(job.class, &job.x)
    } else {
        None
    };
    if let Some(stale) = witnessed {
        let evicted = inner.cache.evict(job.class, stale) as u64;
        let stored = inner
            .store
            .as_ref()
            .is_some_and(|s| s.contains_fingerprint(job.class, stale));
        if evicted > 0 || stored {
            DriftStats::add(&inner.drift_stats.detected, 1);
            DriftStats::add(&inner.drift_stats.invalidated, evicted);
            job.span.event(Stage::Invalidate, stale.0);
            if let Some(store) = &inner.store {
                if store.tombstone(job.class, stale) {
                    DriftStats::add(&inner.drift_stats.tombstones, 1);
                }
            }
            job.drifted = true;
        }
    }

    // The probe rides in the job across the election: a parked request is
    // settled (or requeued) with its probe intact and never pays it twice.
    job.probs = Some(probs);
    let leadership = if inner.config.coalesce {
        let class = job.class;
        // The span outlives the election either way; keep a copy so the
        // parked branch (which surrenders the job to the ledger) can
        // still emit its event.
        let span = job.span;
        match inner
            .ledger
            .try_lead(class, inner.config.max_leaders_per_class, job)
        {
            Election::Parked => {
                // The class is at its concurrent-solve limit: parked (the
                // limit check and the park were one atomic step inside the
                // ledger). A finishing leader's result decides our fate —
                // serve if it explains our probe, requeue otherwise.
                ServiceStats::add(&inner.stats.coalesced_waits, 1);
                span.event(Stage::CoalesceWait, 0);
                return;
            }
            Election::Led(led) => {
                job = led;
                job.span.event(Stage::CoalesceLead, 0);
                // Guard constructed immediately after winning the slot: from
                // here on, a panic anywhere in the solve steps this leader
                // down via `Drop`.
                Some(LeaderGuard::new(inner, tx, class))
            }
        }
    } else {
        None
    };
    let probs = job.probs.take().expect("the probe rides the election");

    // Double-checked lookup before solving: a leader that finished between
    // our cache miss and our election has already inserted its region
    // (insert happens-before the generation bump, which happens-before the
    // registry bookkeeping our election observed), so re-reading the cache
    // prevents a duplicate solve of a just-solved region. The recheck runs
    // OUTSIDE the registry mutex — leadership slots already bound
    // same-class concurrency, so the scan serializes nobody — and only in
    // the rare race, when the generation says a solve completed since our
    // lookup began.
    let recheck = (leadership.is_some() && inner.ledger.generation() != generation)
        .then(|| {
            inner
                .cache
                .lookup_probe(&job.x, probs.as_slice(), job.class)
        })
        .flatten();

    let (solved, outcome) = match recheck {
        Some(hit) => {
            ServiceStats::add(&inner.stats.hits, 1);
            job.span.event(Stage::CacheHit, 0);
            (
                Ok((hit.interpretation, hit.fingerprint)),
                ServeOutcome::CacheHit,
            )
        }
        None => {
            let solve_start = clock::now();
            let queries_before = job.queries_spent;
            let solved = lead_solve(inner, &mut job, probs);
            let (_, at) = mark_stage(inner, &mut job, StageSlot::Solve, solve_start);
            job.span.event_at(
                Stage::Solve,
                (job.queries_spent - queries_before) as u64,
                at,
            );
            (solved, ServeOutcome::Solved)
        }
    };

    if let Some(guard) = leadership {
        let waiters = guard.release();
        settle_waiters(inner, tx, solved.as_ref(), waiters);
    }

    let result = match solved {
        Ok((interpretation, fingerprint)) => Ok(Served {
            interpretation,
            fingerprint,
            outcome,
            queries: job.queries_spent,
            latency: job.submitted.elapsed(),
            span: job.span.id(),
        }),
        Err(e) => Err(ServeError::Interpret(e)),
    };
    finish(inner, job, result);
}

/// Runs Algorithm 1 from the already-paid probe, admits the result into
/// the shared cache, and queues the durable-store append. Returns the
/// *cached* entry (canonical under fingerprint merging), so every caller
/// serves identical bits.
fn lead_solve<M: PredictionApi>(
    inner: &Inner<M>,
    job: &mut Job,
    probs: Vector,
) -> Result<(Arc<Interpretation>, RegionFingerprint), InterpretError> {
    let probe = Probe {
        x: job.x.clone(),
        probs,
    };
    let mut rng = request_rng(inner.config.seed, job.id);
    match inner
        .interpreter
        .interpret_with_probe(&inner.api, probe, job.class, &mut rng)
    {
        Ok(res) => {
            // `res.queries` counts the probe; it was already tallied.
            ServiceStats::add(&inner.stats.queries, (res.queries - 1) as u64);
            ServiceStats::add(&inner.stats.misses, 1);
            job.queries_spent += res.queries - 1;
            let cached = inner.cache.insert(Arc::new(res.interpretation));
            if let Some(store) = &inner.store {
                // Asynchronous append: deduped against the store's index,
                // written + fsynced by its flusher thread. The solve path
                // never waits on the disk.
                store.append(cached.fingerprint, Arc::clone(&cached.interpretation));
            }
            // After the insert, before the leader steps down: anyone who
            // later observes a free leader slot also observes this bump
            // (the registry mutex orders both), and rechecks.
            inner.ledger.record_solve();
            Ok((cached.interpretation, cached.fingerprint))
        }
        Err(e) => {
            ServiceStats::add(
                &inner.stats.queries,
                queries_consumed(&e, inner.api.dim()) as u64,
            );
            Err(e)
        }
    }
}

/// Settles the requests that parked behind a leader's solve: waiters whose
/// probe the solved region explains are in that region (Theorem 2) and are
/// served its exact interpretation; everyone else — other regions queued
/// behind this solve, or waiters of a failed solve — goes back on the
/// queue, probe in hand, to hit the cache or lead (or park behind) a solve
/// of their own.
fn settle_waiters<M: PredictionApi>(
    inner: &Inner<M>,
    tx: &Sender<Msg>,
    solved: Result<&(Arc<Interpretation>, RegionFingerprint), &InterpretError>,
    waiters: Vec<Job>,
) {
    let rtol = inner.config.cache.membership_rtol;
    for mut waiter in waiters {
        if expired(&waiter) {
            finish(inner, waiter, Err(ServeError::DeadlineExceeded));
            continue;
        }
        let same_region = match solved {
            Ok((interpretation, _)) => {
                let probs = waiter.probs.as_ref().expect("waiters carry their probe");
                interpretation.explains_probe(&waiter.x, probs.as_slice(), rtol)
            }
            Err(_) => false,
        };
        if same_region {
            let (interpretation, fingerprint) = solved.expect("checked above");
            ServiceStats::add(&inner.stats.coalesced_served, 1);
            let served = Served {
                interpretation: Arc::clone(interpretation),
                fingerprint: *fingerprint,
                outcome: ServeOutcome::Coalesced,
                queries: waiter.queries_spent,
                latency: waiter.submitted.elapsed(),
                span: waiter.span.id(),
            };
            finish(inner, waiter, Ok(served));
        } else {
            // Back on the queue: reset the queue-stage clock so the next
            // pass counts only its own wait.
            waiter.enqueued = clock::now();
            if let Err(channel::SendError(Msg::Job(waiter))) = tx.send(Msg::Job(waiter)) {
                finish(inner, waiter, Err(ServeError::ServiceStopped));
            }
        }
    }
}

/// The active half of the drift detector (the inline half lives in
/// `handle_job`): re-probes every witnessed instance against the live API
/// and invalidates any stale region it convicts. One prediction query per
/// witness; witnesses that no longer convict anything (their region is
/// already gone everywhere) are dropped, witnesses still explained by a
/// cached or stored region are kept.
fn audit_drift<M: PredictionApi>(inner: &Inner<M>) -> u64 {
    let entries = inner.witnesses.lock().entries();
    let mut invalidated = 0;
    for ((class, bits), stale) in entries {
        let x = Vector(bits.iter().map(|&b| f64::from_bits(b)).collect());
        ServiceStats::add(&inner.stats.queries, 1);
        let probs = inner.api.predict(x.as_slice());
        if inner
            .cache
            .lookup_probe(&x, probs.as_slice(), class)
            .is_some()
        {
            continue;
        }
        if let Some(store) = &inner.store {
            if store.lookup_probe(&x, probs.as_slice(), class).is_some() {
                continue;
            }
        }
        // Nothing explains the live prediction any more. If the witnessed
        // region is still on offer, it is stale: invalidate it everywhere.
        let evicted = inner.cache.evict(class, stale) as u64;
        let stored = inner
            .store
            .as_ref()
            .is_some_and(|s| s.contains_fingerprint(class, stale));
        if evicted > 0 || stored {
            DriftStats::add(&inner.drift_stats.detected, 1);
            DriftStats::add(&inner.drift_stats.invalidated, evicted);
            RequestSpan::detached().event(Stage::Invalidate, stale.0);
            if let Some(store) = &inner.store {
                if store.tombstone(class, stale) {
                    DriftStats::add(&inner.drift_stats.tombstones, 1);
                }
            }
            invalidated += 1;
        }
        inner.witnesses.lock().remove(class, &bits);
    }
    invalidated
}

/// Derives a request's sampling RNG from `(seed, request id)` via
/// [`openapi_core::rng::derived_rng`] — the same derivation the eval
/// harness's `item_rng` uses, so request 0 never collides with direct uses
/// of the master seed and any fixed submission order replays
/// bit-identically.
fn request_rng(seed: u64, id: u64) -> StdRng {
    openapi_core::rng::derived_rng(seed, id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_api::{CountingApi, LinearSoftmaxModel, LocalLinearModel, TwoRegionPlm};
    use openapi_linalg::Matrix;
    use std::path::PathBuf;

    fn two_region_model() -> TwoRegionPlm {
        let low = LocalLinearModel::new(
            Matrix::from_rows(&[&[2.0, -2.0], &[1.0, 0.5]]).unwrap(),
            Vector(vec![0.0, 0.2]),
        );
        let high = LocalLinearModel::new(
            Matrix::from_rows(&[&[-1.0, 1.5], &[0.0, 3.0]]).unwrap(),
            Vector(vec![0.5, -0.5]),
        );
        TwoRegionPlm::axis_split(0, 0.5, low, high)
    }

    fn service(workers: usize) -> InterpretationService<CountingApi<TwoRegionPlm>> {
        InterpretationService::new(
            CountingApi::new(two_region_model()),
            ServiceConfig {
                workers,
                ..ServiceConfig::default()
            },
        )
    }

    /// A unique temp directory per call; each test removes its own.
    fn temp_store_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "openapi_serve_{tag}_{}_{}",
            std::process::id(),
            // ordering: Relaxed — uniqueness only; nothing published.
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn serves_exact_interpretations_and_counts_outcomes() {
        let svc = service(2);
        let instances: Vec<Vector> = (0..12)
            .map(|i| {
                let side = if i % 2 == 0 { 0.2 } else { 0.8 };
                Vector(vec![side, (i as f64 * 0.37).sin() * 0.4])
            })
            .collect();
        let tickets: Vec<Ticket> = instances
            .iter()
            .map(|x| svc.submit_instance(x.clone(), 0))
            .collect();
        let model = two_region_model();
        for (x, t) in instances.iter().zip(tickets) {
            let served = t.wait().expect("interior instances interpret");
            // Exactness: the served parameters are the region's ground truth.
            use openapi_api::GroundTruthOracle;
            let truth = model.local_model(x.as_slice()).decision_features(0);
            let err = served
                .interpretation
                .decision_features
                .l1_distance(&truth)
                .unwrap();
            assert!(err < 1e-7, "L1Dist {err}");
            // Every serve verified membership against this request's probe.
            assert!(served.queries >= 1);
        }
        let stats = svc.stats();
        assert_eq!(stats.requests, 12);
        assert_eq!(
            stats.hits + stats.store_hits + stats.misses + stats.coalesced_served + stats.failures,
            12
        );
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.store_hits, 0, "no store attached");
        assert!(stats.store.is_none());
        assert_eq!(stats.cached_regions, 2);
        // The metered API agrees with the stats ledger.
        assert_eq!(stats.queries, svc.api().queries());
    }

    #[test]
    fn invalid_requests_fail_without_queries() {
        let svc = service(1);
        let bad_dim = svc.submit_instance(Vector(vec![0.0; 5]), 0).wait();
        assert!(matches!(
            bad_dim,
            Err(ServeError::Interpret(
                InterpretError::DimensionMismatch { .. }
            ))
        ));
        let bad_class = svc.submit_instance(Vector(vec![0.1, 0.2]), 9).wait();
        assert!(matches!(
            bad_class,
            Err(ServeError::Interpret(
                InterpretError::ClassOutOfRange { .. }
            ))
        ));
        assert_eq!(svc.api().queries(), 0);
        let stats = svc.stats();
        assert_eq!(stats.failures, 2);
    }

    #[test]
    fn expired_deadlines_are_rejected() {
        let svc = service(1);
        let req = InterpretRequest {
            instance: Vector(vec![0.2, 0.1]),
            class: 0,
            deadline: Some(clock::now() - Duration::from_millis(1)),
        };
        assert!(matches!(
            svc.submit(req).wait(),
            Err(ServeError::DeadlineExceeded)
        ));
        assert_eq!(svc.stats().deadline_expired, 1);
    }

    #[test]
    fn tickets_can_be_polled() {
        let svc = service(1);
        let ticket = svc.submit_instance(Vector(vec![0.2, 0.1]), 0);
        let deadline = clock::now() + Duration::from_secs(10);
        let result = loop {
            if let Some(r) = ticket.poll() {
                break r;
            }
            assert!(clock::now() < deadline, "request never completed");
            std::thread::yield_now();
        };
        assert!(result.is_ok());
    }

    #[test]
    fn coalescing_shares_one_solve_across_a_burst() {
        // Single-region model: every request resolves to the same region.
        // With the leader limit pinned to 1, a burst must produce exactly
        // one miss and zero failures, and hits + coalesced make up the
        // rest. (At the default limit of 4 leaders, up to `workers` racing
        // cold requests may each solve the one region — duplicates merge,
        // but the query spend is what this test pins down.)
        let w = Matrix::from_fn(8, 3, |r, c| ((r * 3 + c) % 7) as f64 * 0.1 - 0.3);
        let api = CountingApi::new(LinearSoftmaxModel::new(w, Vector(vec![0.1, -0.2, 0.05])));
        let svc = InterpretationService::new(
            api,
            ServiceConfig {
                workers: 4,
                max_leaders_per_class: 1,
                ..ServiceConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..64)
            .map(|i| {
                let x = Vector((0..8).map(|j| ((i * 8 + j) as f64 * 0.11).cos()).collect());
                svc.submit_instance(x, 1)
            })
            .collect();
        let mut outcomes = Vec::new();
        for t in tickets {
            outcomes.push(t.wait().expect("single region must interpret").outcome);
        }
        let stats = svc.stats();
        assert_eq!(stats.misses, 1, "one region, one solve");
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.hits + stats.coalesced_served, 63);
        assert_eq!(
            outcomes
                .iter()
                .filter(|o| **o == ServeOutcome::Solved)
                .count(),
            1
        );
        // All 64 answers are bit-identical (consistency).
        // (Checked via stats here; tests/service_concurrency.rs does the
        // full bitwise comparison across threads.)
    }

    #[test]
    fn batched_submission_serves_warm_probes_in_one_pass() {
        let svc = service(2);
        // Warm both regions through the ordinary path.
        let warm = [Vector(vec![0.2, 0.3]), Vector(vec![0.8, -0.2])];
        for x in &warm {
            assert_eq!(
                svc.submit_instance(x.clone(), 0).wait().unwrap().outcome,
                ServeOutcome::Solved
            );
        }
        let queries_before = svc.api().queries();

        // A mixed batch: six warm probes, one invalid dimension, one
        // pre-expired deadline.
        let mut requests: Vec<InterpretRequest> = (0..6)
            .map(|i| {
                let side = if i % 2 == 0 { 0.2 } else { 0.8 };
                InterpretRequest::new(Vector(vec![side, (i as f64 * 0.31).sin() * 0.3]), 0)
            })
            .collect();
        requests.push(InterpretRequest::new(Vector(vec![0.0; 5]), 0));
        requests.push(InterpretRequest {
            instance: Vector(vec![0.2, 0.1]),
            class: 0,
            deadline: Some(clock::now() - Duration::from_millis(1)),
        });
        let tickets = svc.submit_batch(requests);
        assert_eq!(tickets.len(), 8);
        let mut results: Vec<_> = tickets.into_iter().map(Ticket::wait).collect();
        assert!(matches!(
            results.pop().unwrap(),
            Err(ServeError::DeadlineExceeded)
        ));
        assert!(matches!(
            results.pop().unwrap(),
            Err(ServeError::Interpret(
                InterpretError::DimensionMismatch { .. }
            ))
        ));
        for r in results {
            let served = r.expect("warm probes must serve");
            assert_eq!(served.outcome, ServeOutcome::CacheHit);
            assert_eq!(served.queries, 1, "one probe, zero solve queries");
        }
        // The whole warm batch cost exactly one prediction per valid probe.
        assert_eq!(svc.api().queries() - queries_before, 6);
        let stats = svc.stats();
        assert_eq!(stats.requests, 10);
        assert_eq!(stats.hits, 6);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.failures, 2);
    }

    #[test]
    fn batched_submission_routes_cold_probes_to_the_workers() {
        let svc = service(2);
        // Cold cache: the batch itself must trigger the solves.
        let tickets = svc.submit_batch(vec![
            InterpretRequest::new(Vector(vec![0.2, 0.3]), 0),
            InterpretRequest::new(Vector(vec![0.8, -0.2]), 0),
        ]);
        let outcomes: Vec<_> = tickets
            .into_iter()
            .map(|t| t.wait().expect("cold batch must solve").outcome)
            .collect();
        // Distinct regions: both solve (no coalescing possible between them).
        assert!(outcomes.iter().all(|o| *o == ServeOutcome::Solved));
        let stats = svc.stats();
        assert_eq!(stats.misses, 2);
        // The metered API agrees with the ledger — the batch probe was
        // reused as Algorithm 1's x⁰ equation, never paid twice.
        assert_eq!(stats.queries, svc.api().queries());
    }

    /// Sleeps on exactly one designated prediction call (1-indexed), long
    /// enough for the test to race other requests past it.
    struct SlowCall<M> {
        inner: M,
        calls: AtomicU64,
        slow_call: u64,
        sleep: Duration,
    }

    impl<M: PredictionApi> SlowCall<M> {
        fn new(inner: M, slow_call: u64, sleep: Duration) -> Self {
            SlowCall {
                inner,
                calls: AtomicU64::new(0),
                slow_call,
                sleep,
            }
        }
    }

    impl<M: PredictionApi> PredictionApi for SlowCall<M> {
        fn dim(&self) -> usize {
            self.inner.dim()
        }

        fn num_classes(&self) -> usize {
            self.inner.num_classes()
        }

        fn predict(&self, x: &[f64]) -> Vector {
            // ordering: Relaxed — a monotone call counter; the test below
            // only polls it for progress, never to publish data.
            let n = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
            if n == self.slow_call {
                std::thread::sleep(self.sleep);
            }
            self.inner.predict(x)
        }
    }

    /// Builds the slow-first-solve scenario shared by the two leader-limit
    /// tests: request A's Algorithm-1 solve stalls on its first sampling
    /// query (call 2; its probe was call 1), then request B — a *different
    /// region* of the same class — arrives. Returns `(ticket_a, ticket_b)`
    /// with B's submitted only after A is provably mid-solve.
    fn slow_first_solve(svc: &InterpretationService<SlowCall<TwoRegionPlm>>) -> (Ticket, Ticket) {
        let a = svc.submit_instance(Vector(vec![0.2, 0.1]), 0); // low region
        let deadline = clock::now() + Duration::from_secs(30);
        // ordering: Relaxed — progress polling; the sleep itself is the
        // only synchronization the scenario needs.
        while svc.api().calls.load(Ordering::Relaxed) < 2 {
            assert!(clock::now() < deadline, "request A never began solving");
            std::thread::yield_now();
        }
        let b = svc.submit_instance(Vector(vec![0.8, -0.2]), 0); // high region
        (a, b)
    }

    #[test]
    fn second_leader_overtakes_a_slow_first_solve() {
        // ROADMAP item: distinct-region cold misses of one class must no
        // longer serialize. With 2 leader slots, request B elects itself
        // while A's solve is still sleeping and completes long before A.
        let svc = InterpretationService::new(
            SlowCall::new(two_region_model(), 2, Duration::from_millis(400)),
            ServiceConfig {
                workers: 2,
                max_leaders_per_class: 2,
                ..ServiceConfig::default()
            },
        );
        let (a, b) = slow_first_solve(&svc);
        let served_b = b.wait().expect("B solves independently");
        assert_eq!(served_b.outcome, ServeOutcome::Solved);
        assert!(
            a.poll().is_none(),
            "B finished while A was still mid-solve — no serialization"
        );
        assert_eq!(a.wait().expect("A completes").outcome, ServeOutcome::Solved);
        assert_eq!(svc.stats().coalesced_waits, 0, "B never parked");
    }

    #[test]
    fn single_leader_limit_still_serializes_distinct_regions() {
        // The mirror: with the limit at 1 (the pre-leader-pool behavior),
        // B parks behind A's in-flight solve and can only complete after
        // A settles it — so by the time B resolves, A must be done.
        let svc = InterpretationService::new(
            SlowCall::new(two_region_model(), 2, Duration::from_millis(400)),
            ServiceConfig {
                workers: 2,
                max_leaders_per_class: 1,
                ..ServiceConfig::default()
            },
        );
        let (a, b) = slow_first_solve(&svc);
        let served_b = b.wait().expect("B eventually solves");
        assert_eq!(served_b.outcome, ServeOutcome::Solved);
        assert!(svc.stats().coalesced_waits >= 1, "B must have parked");
        // B was submitted just as A's 400 ms sleep began and could only be
        // requeued after A's solve settled, so its end-to-end latency must
        // carry most of that sleep — the serialization the leader pool
        // removes. (The overtake test's B finishes in microseconds.)
        assert!(
            served_b.latency >= Duration::from_millis(200),
            "with one leader slot, B must have waited out A's solve \
             (latency {:?})",
            served_b.latency
        );
        assert_eq!(a.wait().expect("A completes").outcome, ServeOutcome::Solved);
    }

    #[test]
    fn panicking_solve_does_not_wedge_the_class_or_the_worker() {
        /// Panics on exactly the `panic_on`-th prediction — timed so the
        /// first request's probe succeeds (call 1) and its Algorithm-1
        /// sampling (calls 2–4) dies mid-solve, i.e. while the request
        /// holds a coalescing leader slot for its class.
        struct PanicOnCall<M> {
            inner: M,
            calls: AtomicU64,
            panic_on: u64,
        }

        impl<M: PredictionApi> PredictionApi for PanicOnCall<M> {
            fn dim(&self) -> usize {
                self.inner.dim()
            }

            fn num_classes(&self) -> usize {
                self.inner.num_classes()
            }

            fn predict(&self, x: &[f64]) -> Vector {
                // ordering: Relaxed — monotone call counter, uniqueness only.
                let n = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
                assert!(n != self.panic_on, "injected mid-solve panic");
                self.inner.predict(x)
            }
        }

        let svc = InterpretationService::new(
            PanicOnCall {
                inner: two_region_model(),
                calls: AtomicU64::new(0),
                panic_on: 3,
            },
            ServiceConfig {
                workers: 1,
                // One leader slot, so a leaked slot would wedge the class —
                // the strictest config for this regression.
                max_leaders_per_class: 1,
                ..ServiceConfig::default()
            },
        );
        let x = Vector(vec![0.2, 0.1]);
        let poisoned = svc.submit_instance(x.clone(), 0);
        let recovered = svc.submit_instance(x.clone(), 0);
        let hit = svc.submit_instance(x, 0);
        // The poisoned request dies with the worker's unwind; its ticket
        // resolves (as stopped), it never hangs.
        assert!(poisoned.wait().is_err());
        // Leadership was released: the follow-up request for the same class
        // completes (a wedged registry would park it forever).
        let recovered = recovered
            .wait_timeout(Duration::from_secs(60))
            .expect("class must recover after a panicked leader")
            .expect("clean re-solve");
        assert_eq!(recovered.outcome, ServeOutcome::Solved);
        assert_eq!(hit.wait().unwrap().outcome, ServeOutcome::CacheHit);
        // The panicked request is accounted as a failure.
        assert!(svc.stats().failures >= 1);
    }

    #[test]
    fn replays_are_deterministic_for_a_fixed_submission_order() {
        let run = || {
            let svc = service(1);
            let xs = [Vector(vec![0.2, 0.4]), Vector(vec![0.7, -0.1])];
            xs.iter()
                .map(|x| {
                    svc.submit_instance(x.clone(), 0)
                        .wait()
                        .unwrap()
                        .interpretation
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mismatched_snapshot_degrades_to_misses_not_poisoned_lookups() {
        // Regression: an entry recovered from a DIFFERENT model (contrast
        // class 4 in a 2-class service) lands in the cache via restore; it
        // must simply never pass membership — requests for its class still
        // solve and succeed, rather than every lookup panicking on the
        // foreign entry and killing the class.
        use crate::snapshot::SnapshotEntry;
        use openapi_core::decision::PairwiseCoreParams;

        let foreign = Interpretation::from_pairwise(
            0,
            vec![PairwiseCoreParams {
                c_prime: 4, // out of range for TwoRegionPlm's 2 classes
                weights: Vector(vec![1.0, -1.0]),
                bias: 0.5,
            }],
        )
        .unwrap();
        let snapshot = CacheSnapshot {
            entries: vec![SnapshotEntry {
                fingerprint: foreign.fingerprint(6),
                interpretation: Arc::new(foreign),
            }],
        };
        let svc = service(2);
        assert_eq!(svc.restore_cache(&snapshot), 1);
        let served = svc
            .submit_instance(Vector(vec![0.2, 0.1]), 0)
            .wait()
            .expect("foreign cache entry must not poison the class");
        assert_eq!(served.outcome, ServeOutcome::Solved);
        assert_eq!(svc.stats().failures, 0);
    }

    #[test]
    fn warm_start_from_snapshot_skips_the_solves() {
        let svc = service(2);
        let xs: Vec<Vector> = vec![Vector(vec![0.2, 0.3]), Vector(vec![0.8, -0.2])];
        for x in &xs {
            svc.submit_instance(x.clone(), 0).wait().unwrap();
        }
        let snapshot = svc.snapshot_cache();
        assert_eq!(snapshot.entries.len(), 2);
        let bytes = snapshot.to_bytes();

        // A brand-new service restored from the bytes serves both regions
        // from cache: zero solves, one probe per request.
        let restored = CacheSnapshot::from_bytes(&bytes).unwrap();
        let svc2 = service(2);
        assert_eq!(svc2.restore_cache(&restored), 2);
        for x in &xs {
            let served = svc2.submit_instance(x.clone(), 0).wait().unwrap();
            assert_eq!(served.outcome, ServeOutcome::CacheHit);
            assert_eq!(served.queries, 1);
        }
        assert_eq!(svc2.stats().misses, 0);
    }

    #[test]
    fn restarting_against_a_store_reserves_without_solving() {
        // The acceptance scenario in miniature: run traffic, close, reopen
        // the same directory — zero additional Algorithm-1 solves.
        let dir = temp_store_dir("restart");
        let xs = [Vector(vec![0.2, 0.3]), Vector(vec![0.8, -0.2])];
        let svc = InterpretationService::open(
            CountingApi::new(two_region_model()),
            ServiceConfig::default(),
            &dir,
        )
        .unwrap();
        for x in &xs {
            let served = svc.submit_instance(x.clone(), 0).wait().unwrap();
            assert_eq!(served.outcome, ServeOutcome::Solved);
        }
        let stats = svc.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.store.as_ref().unwrap().appends, 2);
        svc.close().unwrap();

        let svc = InterpretationService::open(
            CountingApi::new(two_region_model()),
            ServiceConfig::default(),
            &dir,
        )
        .unwrap();
        assert_eq!(svc.store().unwrap().len(), 2, "regions recovered");
        // First touch of each region: store hit, promoted to the cache.
        for x in &xs {
            let served = svc.submit_instance(x.clone(), 0).wait().unwrap();
            assert_eq!(served.outcome, ServeOutcome::StoreHit);
            assert_eq!(served.queries, 1, "one membership probe, no solve");
        }
        // Second touch: plain cache hits (the store is consulted only on
        // cache misses).
        for x in &xs {
            let served = svc.submit_instance(x.clone(), 0).wait().unwrap();
            assert_eq!(served.outcome, ServeOutcome::CacheHit);
        }
        let stats = svc.stats();
        assert_eq!(stats.misses, 0, "zero Algorithm-1 solves after restart");
        assert_eq!(stats.store_hits, 2);
        assert_eq!(stats.hits, 2);
        assert_eq!(
            stats.hits + stats.store_hits + stats.misses + stats.coalesced_served + stats.failures,
            4
        );
        assert_eq!(stats.queries, 4, "restart cost: one probe per request");
        let store_stats = stats.store.as_ref().unwrap();
        assert_eq!(store_stats.hits, 2);
        assert_eq!(store_stats.duplicate_appends, 0);
        svc.close().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_from_a_different_model_degrades_to_solves() {
        // Mirror of the mismatched-snapshot test against the store tier: a
        // directory written by a DIFFERENT model must never poison serves —
        // membership re-verification guards every store hit.
        let dir = temp_store_dir("foreign");
        let foreign_model = LinearSoftmaxModel::new(
            Matrix::from_fn(2, 5, |r, c| (r * 5 + c) as f64 * 0.2 - 0.4),
            Vector(vec![0.1, -0.1, 0.3, 0.0, -0.2]),
        );
        let svc =
            InterpretationService::open(foreign_model, ServiceConfig::default(), &dir).unwrap();
        svc.submit_instance(Vector(vec![0.4, -0.6]), 0)
            .wait()
            .unwrap();
        svc.close().unwrap();

        // Same directory, different model behind the API.
        let svc = InterpretationService::open(
            CountingApi::new(two_region_model()),
            ServiceConfig::default(),
            &dir,
        )
        .unwrap();
        assert!(!svc.store().unwrap().is_empty(), "foreign records loaded");
        let served = svc
            .submit_instance(Vector(vec![0.2, 0.1]), 0)
            .wait()
            .expect("foreign store entries must not poison the class");
        assert_eq!(served.outcome, ServeOutcome::Solved);
        assert_eq!(svc.stats().store_hits, 0, "foreign entries never pass");
        assert_eq!(svc.stats().failures, 0);
        svc.close().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn silent_model_swap_is_detected_tombstoned_and_resolved() {
        use openapi_api::{ChaosApi, GroundTruthOracle};

        let dir = temp_store_dir("drift");
        let api = ChaosApi::new(TwoRegionPlm::reference(), 0xD21F7)
            .with_standby(TwoRegionPlm::reference_v2());
        let svc = InterpretationService::open(
            api,
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            &dir,
        )
        .unwrap();
        let x = TwoRegionPlm::reference_instance(0);

        // Calm phase: solve, then hit — the serve records a drift witness.
        let first = svc.submit_instance(x.clone(), 0).wait().unwrap();
        assert_eq!(first.outcome, ServeOutcome::Solved);
        assert_eq!(
            svc.submit_instance(x.clone(), 0).wait().unwrap().outcome,
            ServeOutcome::CacheHit
        );
        let drift = svc.stats().drift.unwrap();
        assert_eq!(drift.detected, 0);
        assert_eq!(drift.witnesses, 1);

        // The vendor silently swaps the hidden model. The next request's
        // own membership probe convicts the cached region: the serving
        // path must invalidate it everywhere and re-solve, never serve
        // the stale parameters.
        assert!(svc.api().swap_now());
        let resolved = svc.submit_instance(x.clone(), 0).wait().unwrap();
        assert_eq!(resolved.outcome, ServeOutcome::Solved);
        assert_ne!(resolved.fingerprint, first.fingerprint);
        // Exactness against the NEW model (the oracle follows the swap).
        let truth = svc.api().local_model(x.as_slice()).decision_features(0);
        let err = resolved
            .interpretation
            .decision_features
            .l1_distance(&truth)
            .unwrap();
        assert!(
            err < 1e-7,
            "re-solve must be exact for the new model: {err}"
        );

        let drift = svc.stats().drift.unwrap();
        assert_eq!(drift.detected, 1);
        assert_eq!(drift.invalidated, 1, "one stale cache entry evicted");
        assert_eq!(drift.tombstones, 1);
        assert_eq!(drift.resolves, 1);
        assert_eq!(drift.witnesses, 1, "the fresh serve re-witnessed");
        let store = svc.store().unwrap();
        assert!(store.contains_tombstone(0, first.fingerprint));
        assert!(
            !store.contains_fingerprint(0, first.fingerprint),
            "the stale record is suppressed, not just shadowed"
        );

        // Steady state again: the new region serves from cache.
        assert_eq!(
            svc.submit_instance(x, 0).wait().unwrap().outcome,
            ServeOutcome::CacheHit
        );
        assert_eq!(svc.stats().drift.unwrap().detected, 1, "no re-detection");
        svc.close().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn audit_sweep_invalidates_every_stale_witness() {
        use openapi_api::ChaosApi;

        let dir = temp_store_dir("audit");
        let api = ChaosApi::new(TwoRegionPlm::reference(), 0xA0D17)
            .with_standby(TwoRegionPlm::reference_v2());
        let svc = InterpretationService::open(
            api,
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            &dir,
        )
        .unwrap();
        // One witnessed instance per region.
        let xs = [
            TwoRegionPlm::reference_instance(0),
            TwoRegionPlm::reference_instance(1),
        ];
        for x in &xs {
            assert_eq!(
                svc.submit_instance(x.clone(), 0).wait().unwrap().outcome,
                ServeOutcome::Solved
            );
        }
        // Calm audit: every witness is still explained; nothing happens.
        assert_eq!(svc.audit_drift(), 0);
        let drift = svc.stats().drift.unwrap();
        assert_eq!((drift.detected, drift.witnesses), (0, 2));

        // After the swap, an active sweep (no client traffic needed)
        // convicts and tombstones both stale regions.
        assert!(svc.api().swap_now());
        assert_eq!(svc.audit_drift(), 2);
        let drift = svc.stats().drift.unwrap();
        assert_eq!(drift.detected, 2);
        assert_eq!(drift.invalidated, 2);
        assert_eq!(drift.tombstones, 2);
        assert_eq!(drift.witnesses, 0, "convicted witnesses are retired");
        assert_eq!(svc.store().unwrap().tombstone_count(), 2);
        assert_eq!(svc.store().unwrap().len(), 0, "no live records remain");

        // Traffic after the sweep re-solves fresh regions — the sweep
        // already cleared the stale ones, so no inline detection fires.
        for x in &xs {
            assert_eq!(
                svc.submit_instance(x.clone(), 0).wait().unwrap().outcome,
                ServeOutcome::Solved
            );
        }
        assert_eq!(svc.stats().drift.unwrap().detected, 2);
        svc.close().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tombstoned_region_refuses_resurrection_by_ingest() {
        let dir = temp_store_dir("tombstone_ingest");
        let svc = InterpretationService::open(
            CountingApi::new(two_region_model()),
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            &dir,
        )
        .unwrap();
        let x = Vector(vec![0.2, 0.1]);
        let served = svc.submit_instance(x.clone(), 0).wait().unwrap();
        let core = svc.core();

        assert!(core.apply_tombstone(0, served.fingerprint));
        assert!(
            !core.apply_tombstone(0, served.fingerprint),
            "tombstoning is idempotent"
        );
        // A peer replicating the (now stale) live record must not bring
        // the region back — neither into the store nor the cache.
        assert!(!core.ingest(served.fingerprint, Arc::clone(&served.interpretation)));
        assert!(!svc
            .store()
            .unwrap()
            .contains_fingerprint(0, served.fingerprint));
        let probs = svc.api().predict(x.as_slice());
        assert!(
            svc.cache().lookup_probe(&x, probs.as_slice(), 0).is_none(),
            "the evicted region must not reappear in the cache"
        );
        svc.close().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
