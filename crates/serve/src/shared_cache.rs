//! The sharded, thread-safe region cache.
//!
//! [`SharedRegionCache`] spreads one [`RegionCache`] per shard behind an
//! `openapi_sync::RwLock`. Inserts route by [`RegionFingerprint`] (shard =
//! `fingerprint mod N`), so write contention is diluted N ways; lookups
//! cannot know a probe's fingerprint before solving (that would require the
//! very parameters being looked up), so they scan the shards under read
//! locks — many concurrent readers proceed in parallel, and the membership
//! test per entry is a handful of dot products.
//!
//! Each shard carries `⌈capacity / N⌉` entries at most, evicted CLOCK-wise
//! (see [`RegionCache`]), so the whole cache stays within its configured
//! bound no matter how many distinct regions traffic touches.

use crate::snapshot::{CacheSnapshot, SnapshotEntry};
use openapi_core::cache::{CachedRegion, ProbeRef, RegionCache, RegionCacheConfig};
use openapi_core::decision::{Interpretation, RegionFingerprint};
use openapi_linalg::kernel::Backend;
use openapi_linalg::Vector;
use openapi_sync::RwLock;
use std::sync::Arc;

/// Configuration of a [`SharedRegionCache`].
#[derive(Debug, Clone)]
pub struct SharedCacheConfig {
    /// Number of shards (clamped to ≥ 1). More shards → less write
    /// contention; lookups scan all of them, so keep it moderate.
    pub shards: usize,
    /// Total capacity bound across all shards (clamped to ≥ `shards`).
    pub capacity: usize,
    /// Membership-test tolerance (see
    /// [`openapi_core::batch::BatchConfig::membership_rtol`]).
    pub membership_rtol: f64,
    /// Fingerprint canonicalization digits.
    pub fingerprint_digits: u32,
    /// Kernel backend every shard's blocked membership scan runs on (see
    /// [`openapi_linalg::kernel`]); backends are bit-identical by
    /// contract.
    pub backend: Arc<dyn Backend>,
}

impl Default for SharedCacheConfig {
    fn default() -> Self {
        let base = RegionCacheConfig::default();
        SharedCacheConfig {
            shards: 8,
            capacity: 4096,
            membership_rtol: base.membership_rtol,
            fingerprint_digits: base.fingerprint_digits,
            backend: base.backend,
        }
    }
}

/// The sharded concurrent region cache (see the module docs).
#[derive(Debug)]
pub struct SharedRegionCache {
    shards: Vec<RwLock<RegionCache>>,
    config: SharedCacheConfig,
}

impl SharedRegionCache {
    /// Creates an empty cache with the given sharding and capacity.
    pub fn new(config: SharedCacheConfig) -> Self {
        let mut config = config;
        config.shards = config.shards.max(1);
        config.capacity = config.capacity.max(config.shards);
        let per_shard = config.capacity.div_ceil(config.shards);
        let shards = (0..config.shards)
            .map(|_| {
                RwLock::new(RegionCache::new(RegionCacheConfig {
                    membership_rtol: config.membership_rtol,
                    fingerprint_digits: config.fingerprint_digits,
                    capacity: Some(per_shard),
                    backend: Arc::clone(&config.backend),
                }))
            })
            .collect();
        SharedRegionCache { shards, config }
    }

    /// Borrow the (clamped) configuration.
    pub fn config(&self) -> &SharedCacheConfig {
        &self.config
    }

    /// Total capacity bound (per-shard bound × shard count; ≥ the
    /// configured capacity because per-shard capacity rounds up).
    pub fn capacity(&self) -> usize {
        self.config.capacity.div_ceil(self.config.shards) * self.config.shards
    }

    /// Regions currently cached across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether no regions are cached.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Regions evicted across all shards since construction.
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.read().evictions()).sum()
    }

    /// Drops every cached region.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }

    /// Black-box membership lookup across the shards (read locks only).
    /// Returns the first cached region of `class` whose core parameters
    /// explain the prediction `probs` observed at `x`.
    pub fn lookup_probe(&self, x: &Vector, probs: &[f64], class: usize) -> Option<CachedRegion> {
        self.shards
            .iter()
            .find_map(|shard| shard.read().lookup_probe(x, probs, class))
    }

    /// Batched black-box lookup: resolves every probe whose `results` slot
    /// is `None`, writing hits in place. Each shard is visited **once**
    /// for the whole batch (one read lock, one blocked kernel pass over
    /// its packed boundaries — see
    /// [`openapi_core::cache::RegionCache::lookup_probe_batch`]) instead
    /// of once per probe; probes already resolved stop participating at
    /// later shards, preserving the shard-order semantics of
    /// [`SharedRegionCache::lookup_probe`].
    ///
    /// # Panics
    /// When `probes.len() != results.len()`.
    pub fn lookup_probe_batch(
        &self,
        probes: &[ProbeRef<'_>],
        results: &mut [Option<CachedRegion>],
    ) {
        assert_eq!(probes.len(), results.len(), "probes/results must align");
        for shard in &self.shards {
            if results.iter().all(Option::is_some) {
                break;
            }
            shard.read().lookup_probe_batch(probes, results);
        }
    }

    /// Admits a freshly solved (or store-recovered) region into its
    /// fingerprint's shard, returning the entry that ends up cached (the
    /// canonical one if an agreeing entry already existed — see
    /// [`RegionCache::insert`]). Takes an [`Arc`] so admission from
    /// another tier never copies the parameter payload.
    pub fn insert(&self, interpretation: Arc<Interpretation>) -> CachedRegion {
        let fingerprint = interpretation.fingerprint(self.config.fingerprint_digits);
        let shard = (fingerprint.0 % self.shards.len() as u64) as usize;
        self.shards[shard].write().insert(interpretation, None)
    }

    /// Drops every cached entry of `class` keyed by `fingerprint` across
    /// all shards (inserts route by fingerprint, but restores and
    /// collision fallbacks can land entries anywhere, so the sweep checks
    /// every shard). The drift detector's cache half; returns the number
    /// of entries removed.
    pub fn evict(&self, class: usize, fingerprint: RegionFingerprint) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.write().evict_fingerprint(class, fingerprint))
            .sum()
    }

    /// A point-in-time copy of every cached region, for persistence or
    /// warm-starting another service (see [`CacheSnapshot`]). Entries are
    /// `Arc` shares of the live slots — no payload copies. Shards are
    /// locked one at a time, so the snapshot is per-shard consistent but
    /// not globally atomic — fine for its purpose (each entry is
    /// independently exact).
    pub fn snapshot(&self) -> CacheSnapshot {
        let entries = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .read()
                    .iter()
                    .map(|r| SnapshotEntry {
                        fingerprint: r.fingerprint,
                        interpretation: r.interpretation,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        CacheSnapshot { entries }
    }

    /// Warm-starts the cache from a snapshot: every entry is re-admitted
    /// through the normal insert path (fingerprints are recomputed at this
    /// cache's `fingerprint_digits`). Returns the number of entries
    /// *replayed* — duplicates merge and the capacity bound still evicts,
    /// so [`SharedRegionCache::len`] afterwards may be smaller.
    pub fn restore(&self, snapshot: &CacheSnapshot) -> usize {
        for entry in &snapshot.entries {
            self.insert(Arc::clone(&entry.interpretation));
        }
        snapshot.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_core::decision::PairwiseCoreParams;

    fn interp(class: usize, w: f64) -> Arc<Interpretation> {
        Arc::new(
            Interpretation::from_pairwise(
                class,
                vec![PairwiseCoreParams {
                    c_prime: class + 1,
                    weights: Vector(vec![w, -w]),
                    bias: 0.25 * w,
                }],
            )
            .unwrap(),
        )
    }

    /// A probe consistent with `interp(class, w)` at `x`: builds the
    /// two-class probability vector whose log-ratio matches `D·x + B`.
    fn consistent_probs(i: &Interpretation, x: &Vector) -> Vec<f64> {
        let p = &i.pairwise[0];
        let target = p.weights.dot(x).unwrap() + p.bias;
        let r = target.exp();
        let denom = 1.0 + r;
        let mut probs = vec![0.0; p.c_prime + 1];
        probs[i.class] = r / denom;
        probs[p.c_prime] = 1.0 / denom;
        probs
    }

    #[test]
    fn insert_then_lookup_roundtrips_through_the_shards() {
        let cache = SharedRegionCache::new(SharedCacheConfig::default());
        let x = Vector(vec![0.3, -0.8]);
        for w in 1..=16 {
            cache.insert(interp(0, w as f64));
        }
        assert_eq!(cache.len(), 16);
        let target = interp(0, 7.0);
        let probs = consistent_probs(&target, &x);
        let hit = cache.lookup_probe(&x, &probs, 0).expect("region 7 cached");
        assert_eq!(hit.interpretation, target);
        // A probe no cached region explains misses every shard.
        assert!(cache.lookup_probe(&x, &[0.31, 0.69], 0).is_none());
    }

    #[test]
    fn batched_lookup_matches_per_probe_lookup_across_shards() {
        let cache = SharedRegionCache::new(SharedCacheConfig {
            shards: 4,
            ..SharedCacheConfig::default()
        });
        let x = Vector(vec![0.3, -0.8]);
        for w in 1..=32 {
            cache.insert(interp(0, w as f64));
        }
        // Probes spread across every shard, plus one that misses and one
        // pre-resolved slot that must be left alone.
        let targets: Vec<_> = [3, 8, 17, 30, 11].map(|w| interp(0, w as f64)).to_vec();
        let probs: Vec<Vec<f64>> = targets.iter().map(|t| consistent_probs(t, &x)).collect();
        let miss = vec![0.45, 0.55];
        let mut all_probs: Vec<&[f64]> = probs.iter().map(Vec::as_slice).collect();
        all_probs.push(&miss);
        let probes: Vec<ProbeRef> = all_probs
            .iter()
            .map(|p| ProbeRef {
                x: &x,
                probs: p,
                class: 0,
            })
            .collect();
        let mut results = vec![None; probes.len()];
        results[1] = cache.lookup_probe(&x, &probs[1], 0);
        cache.lookup_probe_batch(&probes, &mut results);
        for (i, target) in targets.iter().enumerate() {
            let hit = results[i].as_ref().expect("batched lookup must hit");
            assert_eq!(&hit.interpretation, target, "probe {i}");
        }
        assert!(results[5].is_none(), "unexplained probe must miss");
    }

    #[test]
    fn evict_sweeps_every_shard_and_only_the_named_region() {
        let cache = SharedRegionCache::new(SharedCacheConfig {
            shards: 4,
            ..SharedCacheConfig::default()
        });
        let x = Vector(vec![0.3, -0.8]);
        for w in 1..=16 {
            cache.insert(interp(0, w as f64));
        }
        let victim = interp(0, 7.0);
        let fingerprint = victim.fingerprint(6);
        assert_eq!(cache.evict(0, fingerprint), 1);
        assert_eq!(cache.len(), 15);
        let probs = consistent_probs(&victim, &x);
        assert!(cache.lookup_probe(&x, &probs, 0).is_none());
        // Idempotent, and survivors still serve.
        assert_eq!(cache.evict(0, fingerprint), 0);
        let survivor = interp(0, 9.0);
        let probs = consistent_probs(&survivor, &x);
        let hit = cache.lookup_probe(&x, &probs, 0).expect("survivor serves");
        assert_eq!(hit.interpretation, survivor);
    }

    #[test]
    fn duplicate_inserts_merge_to_one_entry() {
        let cache = SharedRegionCache::new(SharedCacheConfig::default());
        let a = cache.insert(interp(1, 3.0));
        let b = cache.insert(interp(1, 3.0));
        assert_eq!(cache.len(), 1);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.interpretation, b.interpretation);
    }

    #[test]
    fn capacity_bound_holds_across_shards() {
        let cache = SharedRegionCache::new(SharedCacheConfig {
            shards: 4,
            capacity: 16,
            ..SharedCacheConfig::default()
        });
        for w in 0..200 {
            cache.insert(interp(0, w as f64 + 0.5));
        }
        assert!(cache.len() <= cache.capacity());
        assert!(cache.evictions() > 0);
    }

    #[test]
    fn degenerate_configs_are_clamped() {
        let cache = SharedRegionCache::new(SharedCacheConfig {
            shards: 0,
            capacity: 0,
            ..SharedCacheConfig::default()
        });
        cache.insert(interp(0, 1.0));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.config().shards, 1);
    }

    #[test]
    fn concurrent_readers_and_writers_stay_consistent() {
        let cache = SharedRegionCache::new(SharedCacheConfig {
            shards: 4,
            capacity: 64,
            ..SharedCacheConfig::default()
        });
        let x = Vector(vec![0.1, 0.9]);
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = &cache;
                s.spawn(move || {
                    for w in 0..50 {
                        cache.insert(interp(0, (t * 50 + w) as f64 + 0.25));
                    }
                });
            }
            for _ in 0..4 {
                let cache = &cache;
                let x = &x;
                s.spawn(move || {
                    for w in 0..200 {
                        let target = interp(0, w as f64 + 0.25);
                        let probs = consistent_probs(&target, x);
                        // Any hit must return exactly the queried region's
                        // parameters (never another region's).
                        if let Some(hit) = cache.lookup_probe(x, &probs, 0) {
                            assert_eq!(hit.interpretation, target);
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= cache.capacity());
    }
}
