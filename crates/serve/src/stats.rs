//! Atomic service statistics: the numbers a capacity planner needs.

use openapi_metrics::{quantile_from_buckets, LatencyHistogram, LATENCY_BUCKETS};
use openapi_store::StoreStatsSnapshot;
use openapi_sync::atomic::{AtomicU64, Ordering};
use std::fmt;
use std::time::Duration;

pub use openapi_trace::slowlog::{STAGES, STAGE_NAMES};

/// Index of a per-stage latency slot (the [`STAGE_NAMES`] order): where a
/// request's wall time went, one histogram per stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum StageSlot {
    /// Queue wait: `submit` to a worker picking the job up.
    Queue = 0,
    /// Black-box membership probe (cache scan + model queries).
    Probe = 1,
    /// Durable store lookup after a cache miss.
    Store = 2,
    /// A led Algorithm-1 solve.
    Solve = 3,
    /// Reply frame write on the wire (recorded by `openapi-net`).
    Reply = 4,
}

/// Lock-free counters every worker thread records into, plus the request
/// latency histogram. All counters are monotone over the service lifetime.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Requests submitted.
    pub(crate) requests: AtomicU64,
    /// Requests served from the shared cache (1 probe query each).
    pub(crate) hits: AtomicU64,
    /// Requests served from the durable region store (1 probe query each;
    /// the region is promoted back into the cache).
    pub(crate) store_hits: AtomicU64,
    /// Requests that led an Algorithm-1 solve.
    pub(crate) misses: AtomicU64,
    /// Times a request parked behind an in-flight solve of its class.
    pub(crate) coalesced_waits: AtomicU64,
    /// Requests served from a leader's solve without solving themselves.
    pub(crate) coalesced_served: AtomicU64,
    /// Requests that completed with an error (including expired deadlines).
    pub(crate) failures: AtomicU64,
    /// Requests rejected because their deadline passed before completion.
    pub(crate) deadline_expired: AtomicU64,
    /// Prediction queries issued to the API on behalf of all requests.
    pub(crate) queries: AtomicU64,
    /// End-to-end request latency (submit → reply).
    pub(crate) latency: LatencyHistogram,
    /// Per-stage latency, one histogram per [`StageSlot`].
    pub(crate) stage: [LatencyHistogram; STAGES],
}

impl ServiceStats {
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        // ordering: Relaxed — independent monotone counters; no reader
        // infers cross-counter state from one load (see `snapshot`).
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_latency(&self, latency: Duration) {
        self.latency.record(latency);
    }

    /// Records one observation into a stage's latency histogram.
    pub(crate) fn record_stage(&self, slot: StageSlot, latency: Duration) {
        self.stage[slot as usize].record(latency);
    }

    /// A point-in-time copy of the counters. `evictions` and
    /// `cached_regions` describe the cache, which the service owns — it
    /// fills them in (see `InterpretationService::stats`).
    ///
    /// # Torn reads
    /// The counters are loaded one by one with no cross-counter atomicity:
    /// a snapshot taken while requests are in flight may observe, say, a
    /// request's `requests` increment but not yet its outcome bucket.
    /// Each individual counter is still exact, and once every submitted
    /// ticket has resolved the snapshot is exact as a whole (the ledger
    /// identity on [`StatsSnapshot`] holds) — the reply-channel `recv` the
    /// caller blocked on happens-after the worker's final `add`.
    pub(crate) fn snapshot(&self, evictions: u64, cached_regions: usize) -> StatsSnapshot {
        // ordering: Relaxed — per-counter exactness is all the contract
        // promises mid-flight (see the torn-reads note above); quiescent
        // exactness rides the reply-channel happens-before edge.
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            requests: load(&self.requests),
            hits: load(&self.hits),
            store_hits: load(&self.store_hits),
            misses: load(&self.misses),
            coalesced_waits: load(&self.coalesced_waits),
            coalesced_served: load(&self.coalesced_served),
            failures: load(&self.failures),
            deadline_expired: load(&self.deadline_expired),
            queries: load(&self.queries),
            evictions,
            cached_regions,
            p50_latency: self.latency.p50(),
            p99_latency: self.latency.p99(),
            latency_buckets: self.latency.snapshot(),
            stage_buckets: std::array::from_fn(|i| self.stage[i].snapshot()),
            store: None,
            fabric: None,
            drift: None,
        }
    }
}

/// Lock-free counters for the drift detector: what the service did when
/// the hidden model stopped explaining a region it had already solved
/// (a silent model swap behind the API). The serving path records
/// detections inline; [`crate::ServiceCore::apply_tombstone`] records
/// replicated invalidations from the fabric.
#[derive(Debug, Default)]
pub struct DriftStats {
    /// Confirmed drift detections: a previously witnessed instance whose
    /// probe no cached or stored region explains any more, while its old
    /// region was still being offered.
    pub detected: AtomicU64,
    /// Cache entries evicted by invalidations (local or replicated).
    pub invalidated: AtomicU64,
    /// Fresh tombstones written to the durable store.
    pub tombstones: AtomicU64,
    /// Drifted requests that completed a fresh solve against the live API.
    pub resolves: AtomicU64,
}

impl DriftStats {
    /// Adds `n` to one drift counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        // ordering: Relaxed — independent monotone counters; no reader
        // infers cross-counter state from one load (see `snapshot`).
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters (per-counter exact, same
    /// contract as [`ServiceStats`]). The witness-book size is a gauge the
    /// service owns, so it passes the current value in.
    pub fn snapshot(&self, witnesses: u64) -> DriftStatsSnapshot {
        // ordering: Relaxed — per-counter exactness is the contract.
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        DriftStatsSnapshot {
            detected: load(&self.detected),
            invalidated: load(&self.invalidated),
            tombstones: load(&self.tombstones),
            resolves: load(&self.resolves),
            witnesses,
        }
    }
}

/// A point-in-time view of [`DriftStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DriftStatsSnapshot {
    /// Confirmed drift detections.
    pub detected: u64,
    /// Cache entries evicted by invalidations.
    pub invalidated: u64,
    /// Fresh tombstones written to the durable store.
    pub tombstones: u64,
    /// Drifted requests that completed a fresh solve.
    pub resolves: u64,
    /// Served instances currently remembered as drift witnesses (gauge).
    pub witnesses: u64,
}

/// Lock-free counters for the anti-entropy replication fabric. The service
/// owns one (`Arc`-shared with the `openapi-fabric` gossip loop, which
/// lives *above* this crate in the dependency graph) so a stats snapshot
/// can carry the fabric's view without a dependency cycle.
#[derive(Debug, Default)]
pub struct FabricStats {
    /// Completed anti-entropy rounds (one round = one peer exchange).
    pub rounds: AtomicU64,
    /// Digest exchanges performed against peers.
    pub digests: AtomicU64,
    /// Record frames pulled from peers.
    pub pulled_records: AtomicU64,
    /// Bytes of record frames pulled from peers.
    pub pulled_bytes: AtomicU64,
    /// Pulled records validated and ingested into the local store.
    pub ingested: AtomicU64,
    /// Pulled records the local store already held (benign gossip overlap).
    pub duplicates: AtomicU64,
    /// Pulled records rejected by validation (frame CRC, model shape, or
    /// the self-consistency spot-check).
    pub rejected: AtomicU64,
    /// Rounds lost to transport or peer errors (the loop retries later).
    pub peer_failures: AtomicU64,
    /// Self-consistency spot-checks run against pulled records.
    pub spot_checks: AtomicU64,
    /// Configured peers (gauge).
    pub peers: AtomicU64,
}

impl FabricStats {
    /// Adds `n` to one fabric counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        // ordering: Relaxed — independent monotone counters; no reader
        // infers cross-counter state from one load (see `snapshot`).
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters (per-counter exact; no
    /// cross-counter atomicity, same contract as [`ServiceStats`]).
    pub fn snapshot(&self) -> FabricStatsSnapshot {
        // ordering: Relaxed — per-counter exactness is the contract.
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        FabricStatsSnapshot {
            rounds: load(&self.rounds),
            digests: load(&self.digests),
            pulled_records: load(&self.pulled_records),
            pulled_bytes: load(&self.pulled_bytes),
            ingested: load(&self.ingested),
            duplicates: load(&self.duplicates),
            rejected: load(&self.rejected),
            peer_failures: load(&self.peer_failures),
            spot_checks: load(&self.spot_checks),
            peers: load(&self.peers),
        }
    }
}

/// A point-in-time view of [`FabricStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FabricStatsSnapshot {
    /// Completed anti-entropy rounds.
    pub rounds: u64,
    /// Digest exchanges performed against peers.
    pub digests: u64,
    /// Record frames pulled from peers.
    pub pulled_records: u64,
    /// Bytes of record frames pulled from peers.
    pub pulled_bytes: u64,
    /// Pulled records validated and ingested into the local store.
    pub ingested: u64,
    /// Pulled records the local store already held.
    pub duplicates: u64,
    /// Pulled records rejected by validation.
    pub rejected: u64,
    /// Rounds lost to transport or peer errors.
    pub peer_failures: u64,
    /// Self-consistency spot-checks run against pulled records.
    pub spot_checks: u64,
    /// Configured peers (gauge).
    pub peers: u64,
}

/// A point-in-time view of [`ServiceStats`] plus the cache gauges (and
/// the durable store's counters, when the service has one).
///
/// Once every submitted ticket has resolved and the service is still
/// running, `requests = hits + store_hits + misses + coalesced_served +
/// failures` — each request the service completed ends in exactly one of
/// those outcomes. The exception is shutdown: requests still queued when
/// the workers exit resolve as `ServeError::ServiceStopped` through their
/// dropped reply channels, outside any worker's accounting, so after a
/// shutdown race `requests` can exceed the outcome buckets' sum.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Requests submitted.
    pub requests: u64,
    /// Requests served from the shared cache.
    pub hits: u64,
    /// Requests served from the durable region store (outcome bucket).
    pub store_hits: u64,
    /// Requests that led an Algorithm-1 solve.
    pub misses: u64,
    /// Times a request parked behind an in-flight solve (events, not
    /// outcomes: one request can wait more than once).
    pub coalesced_waits: u64,
    /// Requests served from a leader's solve (outcome bucket).
    pub coalesced_served: u64,
    /// Requests that completed with an error.
    pub failures: u64,
    /// Of the failures, how many were expired deadlines.
    pub deadline_expired: u64,
    /// Prediction queries issued to the API.
    pub queries: u64,
    /// Regions evicted from the bounded cache.
    pub evictions: u64,
    /// Regions currently cached.
    pub cached_regions: usize,
    /// Median request latency (`None` before any request completed).
    pub p50_latency: Option<Duration>,
    /// 99th-percentile request latency.
    pub p99_latency: Option<Duration>,
    /// Raw end-to-end latency bucket counts (the `LatencyHistogram` log₂
    /// layout), so remote consumers can reconstruct any quantile.
    pub latency_buckets: [u64; LATENCY_BUCKETS],
    /// Raw per-stage latency bucket counts, one array per [`StageSlot`]
    /// in [`STAGE_NAMES`] order.
    pub stage_buckets: [[u64; LATENCY_BUCKETS]; STAGES],
    /// The durable store's own counters (`None` when the service runs
    /// without a store).
    pub store: Option<StoreStatsSnapshot>,
    /// The anti-entropy fabric's counters (`None` when no fabric node is
    /// attached to the service).
    pub fabric: Option<FabricStatsSnapshot>,
    /// The drift detector's counters (`None` only on snapshots not taken
    /// through a service — the detector itself is always on).
    pub drift: Option<DriftStatsSnapshot>,
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requests {:>8}   hits {:>8} (+{} store)   misses {:>6}   coalesced {:>6} (waits {})",
            self.requests,
            self.hits,
            self.store_hits,
            self.misses,
            self.coalesced_served,
            self.coalesced_waits
        )?;
        writeln!(
            f,
            "queries  {:>8}   failures {:>4} (deadline {})   regions {:>5} (evicted {})",
            self.queries, self.failures, self.deadline_expired, self.cached_regions, self.evictions
        )?;
        let show = |d: Option<Duration>| match d {
            Some(d) => format!("{:.3} ms", d.as_secs_f64() * 1e3),
            None => "n/a".to_string(),
        };
        let q = |buckets: &[u64; LATENCY_BUCKETS], q: f64| quantile_from_buckets(buckets, q);
        writeln!(
            f,
            "latency  p50 {}   p90 {}   p99 {}",
            show(q(&self.latency_buckets, 0.5)),
            show(q(&self.latency_buckets, 0.9)),
            show(q(&self.latency_buckets, 0.99)),
        )?;
        write!(f, "stages   ")?;
        for (i, name) in STAGE_NAMES.iter().enumerate() {
            if i > 0 {
                write!(f, "   ")?;
            }
            write!(
                f,
                "{} p50/p99 {}/{}",
                name,
                show(q(&self.stage_buckets[i], 0.5)),
                show(q(&self.stage_buckets[i], 0.99)),
            )?;
        }
        if let Some(store) = &self.store {
            write!(f, "\n{store}")?;
        }
        if let Some(fabric) = &self.fabric {
            write!(
                f,
                "\nfabric   peers {:>3}   rounds {:>6}   pulled {:>6} ({} B)   ingested {:>6} (dup {}, rejected {})",
                fabric.peers,
                fabric.rounds,
                fabric.pulled_records,
                fabric.pulled_bytes,
                fabric.ingested,
                fabric.duplicates,
                fabric.rejected
            )?;
        }
        if let Some(drift) = &self.drift {
            write!(
                f,
                "\ndrift    detected {:>4}   invalidated {:>4}   tombstones {:>4}   resolves {:>4}   witnesses {:>6}",
                drift.detected,
                drift.invalidated,
                drift.tombstones,
                drift.resolves,
                drift.witnesses
            )?;
        }
        Ok(())
    }
}

impl StatsSnapshot {
    /// Renders this snapshot as a Prometheus text-format exposition:
    /// counters, cache gauges, the end-to-end latency histogram, the
    /// per-stage histograms (labelled `stage="queue"` … `stage="reply"`),
    /// the store's counters when present, and the trace ring's own
    /// emit/drop counters. Served by the `Metrics` wire request and the
    /// example server's `--metrics-addr` listener; conventions are
    /// documented in `docs/OBSERVABILITY.md`.
    ///
    /// The ring counters come from this process's global ring, so call it
    /// where the snapshot was taken (the server side), not on a
    /// wire-copied snapshot.
    pub fn to_prometheus(&self) -> String {
        let mut m = openapi_trace::expose::MetricsText::new();
        m.counter(
            "openapi_requests_total",
            "Requests submitted to the interpretation service.",
            self.requests,
        );
        m.counter(
            "openapi_cache_hits_total",
            "Requests served from the shared region cache.",
            self.hits,
        );
        m.counter(
            "openapi_store_hits_total",
            "Requests served from the durable region store.",
            self.store_hits,
        );
        m.counter(
            "openapi_misses_total",
            "Requests that led an Algorithm-1 solve.",
            self.misses,
        );
        m.counter(
            "openapi_coalesced_waits_total",
            "Times a request parked behind an in-flight solve.",
            self.coalesced_waits,
        );
        m.counter(
            "openapi_coalesced_served_total",
            "Requests served from a leader's solve.",
            self.coalesced_served,
        );
        m.counter(
            "openapi_failures_total",
            "Requests that completed with an error.",
            self.failures,
        );
        m.counter(
            "openapi_deadline_expired_total",
            "Failures caused by an expired deadline.",
            self.deadline_expired,
        );
        m.counter(
            "openapi_queries_total",
            "Prediction queries issued to the model API.",
            self.queries,
        );
        m.counter(
            "openapi_cache_evictions_total",
            "Regions evicted from the bounded cache.",
            self.evictions,
        );
        m.gauge(
            "openapi_cache_regions",
            "Regions currently cached.",
            self.cached_regions as u64,
        );
        m.histogram_log2ns(
            "openapi_request_latency_seconds",
            "End-to-end request latency (submit to reply).",
            &[("", &self.latency_buckets)],
        );
        let labels: Vec<String> = STAGE_NAMES
            .iter()
            .map(|n| format!("stage=\"{n}\""))
            .collect();
        let series: Vec<(&str, &[u64])> = labels
            .iter()
            .zip(&self.stage_buckets)
            .map(|(l, b)| (l.as_str(), b.as_slice()))
            .collect();
        m.histogram_log2ns(
            "openapi_stage_latency_seconds",
            "Per-stage request latency by serving stage.",
            &series,
        );
        if let Some(store) = &self.store {
            m.gauge(
                "openapi_store_regions",
                "Distinct regions durable (or queued durable).",
                store.regions as u64,
            );
            m.gauge(
                "openapi_store_wal_bytes",
                "Current WAL length in bytes.",
                store.wal_bytes,
            );
            m.counter(
                "openapi_store_appends_total",
                "New regions accepted by the store.",
                store.appends,
            );
            m.counter(
                "openapi_store_fsyncs_total",
                "Batched fsync calls issued by the flusher.",
                store.fsyncs,
            );
            m.counter(
                "openapi_store_lookups_total",
                "Membership lookups served by the store.",
                store.lookups,
            );
            m.counter(
                "openapi_store_lookup_hits_total",
                "Store lookups that found their region.",
                store.hits,
            );
        }
        if let Some(fabric) = &self.fabric {
            m.gauge(
                "openapi_fabric_peers",
                "Anti-entropy peers configured.",
                fabric.peers,
            );
            m.counter(
                "openapi_fabric_rounds_total",
                "Completed anti-entropy rounds.",
                fabric.rounds,
            );
            m.counter(
                "openapi_fabric_digests_total",
                "Digest exchanges performed against peers.",
                fabric.digests,
            );
            m.counter(
                "openapi_fabric_pulled_records_total",
                "Record frames pulled from peers.",
                fabric.pulled_records,
            );
            m.counter(
                "openapi_fabric_pulled_bytes_total",
                "Bytes of record frames pulled from peers.",
                fabric.pulled_bytes,
            );
            m.counter(
                "openapi_fabric_ingested_total",
                "Pulled records validated and ingested into the store.",
                fabric.ingested,
            );
            m.counter(
                "openapi_fabric_duplicates_total",
                "Pulled records the local store already held.",
                fabric.duplicates,
            );
            m.counter(
                "openapi_fabric_rejected_total",
                "Pulled records rejected by validation.",
                fabric.rejected,
            );
            m.counter(
                "openapi_fabric_peer_failures_total",
                "Anti-entropy rounds lost to transport or peer errors.",
                fabric.peer_failures,
            );
            m.counter(
                "openapi_fabric_spot_checks_total",
                "Self-consistency spot-checks run on pulled records.",
                fabric.spot_checks,
            );
        }
        if let Some(drift) = &self.drift {
            m.counter(
                "openapi_drift_detected_total",
                "Confirmed drift detections (stale regions caught).",
                drift.detected,
            );
            m.counter(
                "openapi_drift_invalidated_total",
                "Cache entries evicted by drift invalidations.",
                drift.invalidated,
            );
            m.counter(
                "openapi_drift_tombstones_total",
                "Fresh tombstones written to the durable store.",
                drift.tombstones,
            );
            m.counter(
                "openapi_drift_resolves_total",
                "Drifted requests re-solved against the live API.",
                drift.resolves,
            );
            m.gauge(
                "openapi_drift_witnesses",
                "Served instances remembered as drift witnesses.",
                drift.witnesses,
            );
        }
        let ring = openapi_trace::ring_stats();
        m.counter(
            "openapi_trace_events_total",
            "Trace events committed into the ring.",
            ring.emitted,
        );
        m.counter(
            "openapi_trace_dropped_total",
            "Trace events dropped by lap contention.",
            ring.dropped,
        );
        m.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_what_was_recorded() {
        let stats = ServiceStats::default();
        ServiceStats::add(&stats.requests, 10);
        ServiceStats::add(&stats.hits, 5);
        ServiceStats::add(&stats.store_hits, 1);
        ServiceStats::add(&stats.misses, 2);
        ServiceStats::add(&stats.coalesced_served, 1);
        ServiceStats::add(&stats.failures, 1);
        ServiceStats::add(&stats.queries, 42);
        stats.record_latency(Duration::from_micros(100));
        let snap = stats.snapshot(3, 7);
        assert_eq!(snap.requests, 10);
        assert_eq!(
            snap.hits + snap.store_hits + snap.misses + snap.coalesced_served + snap.failures,
            10
        );
        assert!(snap.store.is_none(), "the service fills the store view in");
        assert_eq!(snap.queries, 42);
        assert_eq!(snap.evictions, 3);
        assert_eq!(snap.cached_regions, 7);
        assert!(snap.p50_latency.is_some());
        // Display renders without panicking and mentions the key counters.
        let text = snap.to_string();
        assert!(text.contains("requests") && text.contains("p99"));
    }

    #[test]
    fn stage_histograms_flow_into_the_snapshot_and_report() {
        let stats = ServiceStats::default();
        ServiceStats::add(&stats.requests, 1);
        stats.record_stage(StageSlot::Queue, Duration::from_micros(3));
        stats.record_stage(StageSlot::Probe, Duration::from_micros(20));
        stats.record_stage(StageSlot::Reply, Duration::from_micros(5));
        stats.record_latency(Duration::from_micros(30));
        let snap = stats.snapshot(0, 0);
        assert_eq!(
            snap.stage_buckets[StageSlot::Queue as usize]
                .iter()
                .sum::<u64>(),
            1
        );
        assert_eq!(
            snap.stage_buckets[StageSlot::Solve as usize]
                .iter()
                .sum::<u64>(),
            0
        );
        // The Display breakdown names every stage.
        let text = snap.to_string();
        for name in STAGE_NAMES {
            assert!(text.contains(name), "stage {name} missing from report");
        }
        assert!(text.contains("p90"));
    }

    #[test]
    fn fabric_counters_flow_into_display_and_prometheus() {
        let fabric = FabricStats::default();
        FabricStats::add(&fabric.rounds, 3);
        FabricStats::add(&fabric.pulled_records, 5);
        FabricStats::add(&fabric.ingested, 5);
        FabricStats::add(&fabric.peers, 2);
        let stats = ServiceStats::default();
        let mut snap = stats.snapshot(0, 0);
        assert!(
            snap.fabric.is_none(),
            "the service fills the fabric view in"
        );
        snap.fabric = Some(fabric.snapshot());
        let text = snap.to_string();
        assert!(text.contains("fabric") && text.contains("rounds"));
        let doc = snap.to_prometheus();
        assert!(doc.contains("openapi_fabric_rounds_total 3\n"));
        assert!(doc.contains("openapi_fabric_ingested_total 5\n"));
        assert!(doc.contains("openapi_fabric_peers 2\n"));
        // Without a fabric the series are absent entirely.
        let bare = stats.snapshot(0, 0).to_prometheus();
        assert!(!bare.contains("openapi_fabric_"));
    }

    #[test]
    fn drift_counters_flow_into_display_and_prometheus() {
        let drift = DriftStats::default();
        DriftStats::add(&drift.detected, 2);
        DriftStats::add(&drift.invalidated, 3);
        DriftStats::add(&drift.tombstones, 2);
        DriftStats::add(&drift.resolves, 2);
        let stats = ServiceStats::default();
        let mut snap = stats.snapshot(0, 0);
        assert!(snap.drift.is_none(), "the service fills the drift view in");
        snap.drift = Some(drift.snapshot(11));
        let text = snap.to_string();
        assert!(text.contains("drift") && text.contains("tombstones"));
        let doc = snap.to_prometheus();
        assert!(doc.contains("openapi_drift_detected_total 2\n"));
        assert!(doc.contains("openapi_drift_tombstones_total 2\n"));
        assert!(doc.contains("openapi_drift_witnesses 11\n"));
        // Without the drift view the series are absent entirely.
        let bare = stats.snapshot(0, 0).to_prometheus();
        assert!(!bare.contains("openapi_drift_"));
    }

    #[test]
    fn the_prometheus_exposition_exposes_counters_and_stage_histograms() {
        let stats = ServiceStats::default();
        ServiceStats::add(&stats.requests, 4);
        ServiceStats::add(&stats.queries, 9);
        stats.record_stage(StageSlot::Probe, Duration::from_micros(20));
        stats.record_latency(Duration::from_micros(25));
        let doc = stats.snapshot(0, 2).to_prometheus();
        assert!(doc.contains("# TYPE openapi_requests_total counter\n"));
        assert!(doc.contains("openapi_requests_total 4\n"));
        assert!(doc.contains("openapi_queries_total 9\n"));
        assert!(doc.contains("openapi_cache_regions 2\n"));
        assert!(doc.contains("# TYPE openapi_stage_latency_seconds histogram\n"));
        for name in STAGE_NAMES {
            assert!(doc.contains(&format!("stage=\"{name}\"")));
        }
        assert!(doc.contains("openapi_request_latency_seconds_bucket{le=\"+Inf\"} 1\n"));
        // Every non-comment line is `name{labels} value` — parseable.
        for line in doc.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
        }
    }
}
