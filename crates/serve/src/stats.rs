//! Atomic service statistics: the numbers a capacity planner needs.

use openapi_metrics::LatencyHistogram;
use openapi_store::StoreStatsSnapshot;
use openapi_sync::atomic::{AtomicU64, Ordering};
use std::fmt;
use std::time::Duration;

/// Lock-free counters every worker thread records into, plus the request
/// latency histogram. All counters are monotone over the service lifetime.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Requests submitted.
    pub(crate) requests: AtomicU64,
    /// Requests served from the shared cache (1 probe query each).
    pub(crate) hits: AtomicU64,
    /// Requests served from the durable region store (1 probe query each;
    /// the region is promoted back into the cache).
    pub(crate) store_hits: AtomicU64,
    /// Requests that led an Algorithm-1 solve.
    pub(crate) misses: AtomicU64,
    /// Times a request parked behind an in-flight solve of its class.
    pub(crate) coalesced_waits: AtomicU64,
    /// Requests served from a leader's solve without solving themselves.
    pub(crate) coalesced_served: AtomicU64,
    /// Requests that completed with an error (including expired deadlines).
    pub(crate) failures: AtomicU64,
    /// Requests rejected because their deadline passed before completion.
    pub(crate) deadline_expired: AtomicU64,
    /// Prediction queries issued to the API on behalf of all requests.
    pub(crate) queries: AtomicU64,
    /// End-to-end request latency (submit → reply).
    pub(crate) latency: LatencyHistogram,
}

impl ServiceStats {
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        // ordering: Relaxed — independent monotone counters; no reader
        // infers cross-counter state from one load (see `snapshot`).
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_latency(&self, latency: Duration) {
        self.latency.record(latency);
    }

    /// A point-in-time copy of the counters. `evictions` and
    /// `cached_regions` describe the cache, which the service owns — it
    /// fills them in (see `InterpretationService::stats`).
    ///
    /// # Torn reads
    /// The counters are loaded one by one with no cross-counter atomicity:
    /// a snapshot taken while requests are in flight may observe, say, a
    /// request's `requests` increment but not yet its outcome bucket.
    /// Each individual counter is still exact, and once every submitted
    /// ticket has resolved the snapshot is exact as a whole (the ledger
    /// identity on [`StatsSnapshot`] holds) — the reply-channel `recv` the
    /// caller blocked on happens-after the worker's final `add`.
    pub(crate) fn snapshot(&self, evictions: u64, cached_regions: usize) -> StatsSnapshot {
        // ordering: Relaxed — per-counter exactness is all the contract
        // promises mid-flight (see the torn-reads note above); quiescent
        // exactness rides the reply-channel happens-before edge.
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            requests: load(&self.requests),
            hits: load(&self.hits),
            store_hits: load(&self.store_hits),
            misses: load(&self.misses),
            coalesced_waits: load(&self.coalesced_waits),
            coalesced_served: load(&self.coalesced_served),
            failures: load(&self.failures),
            deadline_expired: load(&self.deadline_expired),
            queries: load(&self.queries),
            evictions,
            cached_regions,
            p50_latency: self.latency.p50(),
            p99_latency: self.latency.p99(),
            store: None,
        }
    }
}

/// A point-in-time view of [`ServiceStats`] plus the cache gauges (and
/// the durable store's counters, when the service has one).
///
/// Once every submitted ticket has resolved and the service is still
/// running, `requests = hits + store_hits + misses + coalesced_served +
/// failures` — each request the service completed ends in exactly one of
/// those outcomes. The exception is shutdown: requests still queued when
/// the workers exit resolve as `ServeError::ServiceStopped` through their
/// dropped reply channels, outside any worker's accounting, so after a
/// shutdown race `requests` can exceed the outcome buckets' sum.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Requests submitted.
    pub requests: u64,
    /// Requests served from the shared cache.
    pub hits: u64,
    /// Requests served from the durable region store (outcome bucket).
    pub store_hits: u64,
    /// Requests that led an Algorithm-1 solve.
    pub misses: u64,
    /// Times a request parked behind an in-flight solve (events, not
    /// outcomes: one request can wait more than once).
    pub coalesced_waits: u64,
    /// Requests served from a leader's solve (outcome bucket).
    pub coalesced_served: u64,
    /// Requests that completed with an error.
    pub failures: u64,
    /// Of the failures, how many were expired deadlines.
    pub deadline_expired: u64,
    /// Prediction queries issued to the API.
    pub queries: u64,
    /// Regions evicted from the bounded cache.
    pub evictions: u64,
    /// Regions currently cached.
    pub cached_regions: usize,
    /// Median request latency (`None` before any request completed).
    pub p50_latency: Option<Duration>,
    /// 99th-percentile request latency.
    pub p99_latency: Option<Duration>,
    /// The durable store's own counters (`None` when the service runs
    /// without a store).
    pub store: Option<StoreStatsSnapshot>,
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requests {:>8}   hits {:>8} (+{} store)   misses {:>6}   coalesced {:>6} (waits {})",
            self.requests,
            self.hits,
            self.store_hits,
            self.misses,
            self.coalesced_served,
            self.coalesced_waits
        )?;
        writeln!(
            f,
            "queries  {:>8}   failures {:>4} (deadline {})   regions {:>5} (evicted {})",
            self.queries, self.failures, self.deadline_expired, self.cached_regions, self.evictions
        )?;
        let show = |d: Option<Duration>| match d {
            Some(d) => format!("{:.3} ms", d.as_secs_f64() * 1e3),
            None => "n/a".to_string(),
        };
        write!(
            f,
            "latency  p50 ≤ {}   p99 ≤ {}",
            show(self.p50_latency),
            show(self.p99_latency)
        )?;
        if let Some(store) = &self.store {
            write!(f, "\n{store}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_what_was_recorded() {
        let stats = ServiceStats::default();
        ServiceStats::add(&stats.requests, 10);
        ServiceStats::add(&stats.hits, 5);
        ServiceStats::add(&stats.store_hits, 1);
        ServiceStats::add(&stats.misses, 2);
        ServiceStats::add(&stats.coalesced_served, 1);
        ServiceStats::add(&stats.failures, 1);
        ServiceStats::add(&stats.queries, 42);
        stats.record_latency(Duration::from_micros(100));
        let snap = stats.snapshot(3, 7);
        assert_eq!(snap.requests, 10);
        assert_eq!(
            snap.hits + snap.store_hits + snap.misses + snap.coalesced_served + snap.failures,
            10
        );
        assert!(snap.store.is_none(), "the service fills the store view in");
        assert_eq!(snap.queries, 42);
        assert_eq!(snap.evictions, 3);
        assert_eq!(snap.cached_regions, 7);
        assert!(snap.p50_latency.is_some());
        // Display renders without panicking and mentions the key counters.
        let text = snap.to_string();
        assert!(text.contains("requests") && text.contains("p99"));
    }
}
