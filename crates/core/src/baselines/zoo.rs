//! The ZOO baseline (§V): zeroth-order gradient estimation.
//!
//! ZOO probes the API back-and-forth along every axis at a fixed distance
//! `h` and estimates gradients with symmetric difference quotients. Since
//! Equation 2 makes `∂ ln(y_c/y_{c'}) / ∂x = D_{c,c'}` inside a region, the
//! quotient of the log-ratio estimates the pairwise decision features
//! directly — exactly when both probes of an axis stay in `x⁰`'s region,
//! and silently wrong otherwise (the `h`-sensitivity of Figures 5–7).

use crate::decision::{Interpretation, PairwiseCoreParams};
use crate::error::InterpretError;
use crate::sampler::axis_pairs;
use openapi_api::{log_ratio, PredictionApi};
use openapi_linalg::Vector;

/// ZOO parameters.
#[derive(Debug, Clone)]
pub struct ZooConfig {
    /// Probe distance `h` along each axis (paper sweeps 1e-8, 1e-4, 1e-2).
    pub probe_distance: f64,
}

impl ZooConfig {
    /// ZOO at probe distance `h`.
    pub fn with_distance(h: f64) -> Self {
        ZooConfig { probe_distance: h }
    }
}

/// The ZOO interpreter.
#[derive(Debug, Clone)]
pub struct ZooInterpreter {
    config: ZooConfig,
}

impl ZooInterpreter {
    /// Creates the interpreter.
    ///
    /// # Panics
    /// Panics when the probe distance is not positive/finite.
    pub fn new(config: ZooConfig) -> Self {
        assert!(
            config.probe_distance.is_finite() && config.probe_distance > 0.0,
            "probe distance must be positive"
        );
        ZooInterpreter { config }
    }

    /// Estimates `D_c` for `class` at `x0` with `2d + 1` API queries.
    ///
    /// The pairwise bias is completed from the center evaluation:
    /// `B̂ = ln(y⁰_c/y⁰_{c'}) − D̂ᵀx⁰`, exact whenever the gradient estimate
    /// is.
    ///
    /// # Errors
    /// Argument errors as in OpenAPI (ZOO itself cannot fail numerically —
    /// it only divides by `2h`).
    pub fn interpret<M: PredictionApi>(
        &self,
        api: &M,
        x0: &Vector,
        class: usize,
    ) -> Result<Interpretation, InterpretError> {
        let d = api.dim();
        let c_total = api.num_classes();
        if x0.len() != d {
            return Err(InterpretError::DimensionMismatch {
                expected: d,
                found: x0.len(),
            });
        }
        if c_total < 2 {
            return Err(InterpretError::TooFewClasses {
                num_classes: c_total,
            });
        }
        if class >= c_total {
            return Err(InterpretError::ClassOutOfRange {
                class,
                num_classes: c_total,
            });
        }

        let h = self.config.probe_distance;
        let center = api.predict(x0.as_slice());
        // One shared probe sweep serves all contrasts: predictions are
        // cached per axis, then each contrast reads its own log-ratios.
        let probes: Vec<(Vector, Vector)> = axis_pairs(x0.as_slice(), h)
            .into_iter()
            .map(|(p, m)| (api.predict(p.as_slice()), api.predict(m.as_slice())))
            .collect();

        let mut pairwise = Vec::with_capacity(c_total - 1);
        for c_prime in (0..c_total).filter(|&cp| cp != class) {
            let mut grad = Vector::zeros(d);
            for (i, (pp, pm)) in probes.iter().enumerate() {
                let lp = log_ratio(pp.as_slice(), class, c_prime);
                let lm = log_ratio(pm.as_slice(), class, c_prime);
                grad[i] = (lp - lm) / (2.0 * h);
            }
            let center_ratio = log_ratio(center.as_slice(), class, c_prime);
            let bias = center_ratio - grad.dot(x0).expect("grad and x0 share dimensionality");
            pairwise.push(PairwiseCoreParams {
                c_prime,
                weights: grad,
                bias,
            });
        }
        Interpretation::from_pairwise(class, pairwise)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_api::{
        CountingApi, GroundTruthOracle, LinearSoftmaxModel, LocalLinearModel, TwoRegionPlm,
    };
    use openapi_linalg::Matrix;

    fn model() -> LinearSoftmaxModel {
        let w =
            Matrix::from_rows(&[&[1.0, -0.5, 0.3], &[0.0, 2.0, -0.7], &[-1.5, 0.5, 0.2]]).unwrap();
        LinearSoftmaxModel::new(w, Vector(vec![0.1, -0.2, 0.05]))
    }

    #[test]
    fn exact_on_single_region_models_at_any_h() {
        let api = model();
        let x0 = Vector(vec![0.2, -0.1, 0.4]);
        let truth = api.local().decision_features(0);
        for h in [1e-6, 1e-3, 0.1] {
            let zoo = ZooInterpreter::new(ZooConfig::with_distance(h));
            let i = zoo.interpret(&api, &x0, 0).unwrap();
            let err = i.decision_features.l1_distance(&truth).unwrap();
            assert!(err < 1e-6, "h={h}: L1Dist {err}");
        }
    }

    #[test]
    fn bias_completion_is_exact_in_region() {
        let api = model();
        let x0 = Vector(vec![0.5, 0.5, -0.5]);
        let zoo = ZooInterpreter::new(ZooConfig::with_distance(1e-4));
        let i = zoo.interpret(&api, &x0, 2).unwrap();
        for p in &i.pairwise {
            let want = api.local().pairwise_bias(2, p.c_prime);
            assert!((p.bias - want).abs() < 1e-6, "contrast {}", p.c_prime);
        }
    }

    #[test]
    fn query_budget_is_2d_plus_1() {
        let api = CountingApi::new(model());
        let x0 = Vector(vec![0.0, 0.0, 0.0]);
        let zoo = ZooInterpreter::new(ZooConfig::with_distance(1e-3));
        let _ = zoo.interpret(&api, &x0, 0).unwrap();
        assert_eq!(api.queries(), 2 * 3 + 1);
    }

    #[test]
    fn wrong_when_probes_cross_a_boundary() {
        let low = LocalLinearModel::new(
            Matrix::from_rows(&[&[2.0, -2.0], &[1.0, 0.5]]).unwrap(),
            Vector(vec![0.0, 0.2]),
        );
        let high = LocalLinearModel::new(
            Matrix::from_rows(&[&[-5.0, 1.5], &[0.0, 3.0]]).unwrap(),
            Vector(vec![0.5, -0.5]),
        );
        let api = TwoRegionPlm::axis_split(0, 0.5, low, high);
        // x0 at 0.495: probes at h = 1e-2 along axis 0 hit 0.505 (other
        // region). The axis-0 quotient is corrupted.
        let x0 = Vector(vec![0.495, 0.0]);
        let truth = api.local_model(x0.as_slice()).decision_features(0);
        let zoo_big = ZooInterpreter::new(ZooConfig::with_distance(1e-2));
        let wrong = zoo_big.interpret(&api, &x0, 0).unwrap();
        assert!(wrong.decision_features.l1_distance(&truth).unwrap() > 0.1);

        let zoo_small = ZooInterpreter::new(ZooConfig::with_distance(1e-4));
        let right = zoo_small.interpret(&api, &x0, 0).unwrap();
        assert!(right.decision_features.l1_distance(&truth).unwrap() < 1e-5);
    }

    #[test]
    fn validates_arguments() {
        let api = model();
        let zoo = ZooInterpreter::new(ZooConfig::with_distance(1e-3));
        assert!(matches!(
            zoo.interpret(&api, &Vector(vec![0.0]), 0),
            Err(InterpretError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            zoo.interpret(&api, &Vector(vec![0.0; 3]), 3),
            Err(InterpretError::ClassOutOfRange { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_distance() {
        let _ = ZooInterpreter::new(ZooConfig::with_distance(f64::NAN));
    }
}
