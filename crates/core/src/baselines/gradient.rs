//! The white-box gradient baselines (§V): Saliency Maps, Gradient*Input,
//! Integrated Gradients.
//!
//! The paper grants these methods access to model parameters — here, the
//! [`GradientOracle`] bound. They produce attribution vectors rather than
//! core parameters, so their [`Interpretation`]s carry no pairwise block.

use crate::decision::Interpretation;
use crate::error::InterpretError;
use openapi_api::GradientOracle;
use openapi_linalg::Vector;

/// Which score the gradient is taken of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoreKind {
    /// The softmax probability `y_c` ("the prediction", the paper's usage).
    #[default]
    Probability,
    /// The pre-softmax logit `z_c` (common in the saliency literature;
    /// exposed for ablations).
    Logit,
}

impl ScoreKind {
    fn gradient<M: GradientOracle>(&self, model: &M, x: &[f64], class: usize) -> Vector {
        match self {
            ScoreKind::Probability => model.prob_gradient(x, class),
            ScoreKind::Logit => model.logit_gradient(x, class),
        }
    }
}

fn validate<M: GradientOracle>(model: &M, x0: &Vector, class: usize) -> Result<(), InterpretError> {
    if x0.len() != model.dim() {
        return Err(InterpretError::DimensionMismatch {
            expected: model.dim(),
            found: x0.len(),
        });
    }
    if class >= model.num_classes() {
        return Err(InterpretError::ClassOutOfRange {
            class,
            num_classes: model.num_classes(),
        });
    }
    Ok(())
}

/// Saliency Maps [Simonyan et al.]: the **absolute value** of the score
/// gradient. Unsigned — the paper's Figure 3 discussion attributes its weak
/// effectiveness to exactly this signlessness.
#[derive(Debug, Clone, Copy, Default)]
pub struct SaliencyMaps {
    /// Score whose gradient is taken.
    pub score: ScoreKind,
}

impl SaliencyMaps {
    /// Computes the attribution for `class` at `x0`.
    ///
    /// # Errors
    /// Argument validation only.
    pub fn interpret<M: GradientOracle>(
        &self,
        model: &M,
        x0: &Vector,
        class: usize,
    ) -> Result<Interpretation, InterpretError> {
        validate(model, x0, class)?;
        let g = self.score.gradient(model, x0.as_slice(), class);
        Ok(Interpretation::attribution_only(class, g.abs()))
    }
}

/// Gradient*Input [Shrikumar et al.]: the elementwise product of the score
/// gradient with the input itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct GradientInput {
    /// Score whose gradient is taken.
    pub score: ScoreKind,
}

impl GradientInput {
    /// Computes the attribution for `class` at `x0`.
    ///
    /// # Errors
    /// Argument validation only.
    pub fn interpret<M: GradientOracle>(
        &self,
        model: &M,
        x0: &Vector,
        class: usize,
    ) -> Result<Interpretation, InterpretError> {
        validate(model, x0, class)?;
        let g = self.score.gradient(model, x0.as_slice(), class);
        let attribution = g.hadamard(x0).expect("validated dimensions");
        Ok(Interpretation::attribution_only(class, attribution))
    }
}

/// Integrated Gradients [Sundararajan et al.]: the input-minus-baseline
/// times the average gradient along the straight path from the baseline.
#[derive(Debug, Clone)]
pub struct IntegratedGradients {
    /// Score whose gradient is taken.
    pub score: ScoreKind,
    /// Riemann-sum resolution (midpoint rule).
    pub steps: usize,
    /// Path start; `None` means the all-zeros baseline (a black image —
    /// the usual choice for `[0,1]` pixel data).
    pub baseline: Option<Vector>,
}

impl Default for IntegratedGradients {
    fn default() -> Self {
        IntegratedGradients {
            score: ScoreKind::Probability,
            steps: 50,
            baseline: None,
        }
    }
}

impl IntegratedGradients {
    /// Computes the attribution for `class` at `x0`.
    ///
    /// # Errors
    /// Argument validation; [`InterpretError::DimensionMismatch`] when a
    /// custom baseline disagrees with the input dimension.
    pub fn interpret<M: GradientOracle>(
        &self,
        model: &M,
        x0: &Vector,
        class: usize,
    ) -> Result<Interpretation, InterpretError> {
        validate(model, x0, class)?;
        assert!(
            self.steps > 0,
            "IntegratedGradients needs at least one step"
        );
        let baseline = match &self.baseline {
            Some(b) => {
                if b.len() != x0.len() {
                    return Err(InterpretError::DimensionMismatch {
                        expected: x0.len(),
                        found: b.len(),
                    });
                }
                b.clone()
            }
            None => Vector::zeros(x0.len()),
        };
        let delta = x0 - &baseline;
        let mut avg_grad = Vector::zeros(x0.len());
        for k in 0..self.steps {
            // Midpoint rule: alpha = (k + 0.5) / steps.
            let alpha = (k as f64 + 0.5) / self.steps as f64;
            let point = &baseline + &delta.scaled(alpha);
            let g = self.score.gradient(model, point.as_slice(), class);
            avg_grad
                .axpy(1.0 / self.steps as f64, &g)
                .expect("dimension invariant");
        }
        let attribution = delta.hadamard(&avg_grad).expect("dimension invariant");
        Ok(Interpretation::attribution_only(class, attribution))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_api::{LinearSoftmaxModel, PredictionApi};
    use openapi_linalg::Matrix;

    fn model() -> LinearSoftmaxModel {
        let w = Matrix::from_rows(&[&[1.0, -0.5], &[-1.0, 0.5]]).unwrap();
        LinearSoftmaxModel::new(w, Vector(vec![0.0, 0.0]))
    }

    #[test]
    fn saliency_is_unsigned() {
        let api = model();
        let x0 = Vector(vec![0.3, 0.4]);
        let s = SaliencyMaps::default().interpret(&api, &x0, 0).unwrap();
        assert!(s.decision_features.iter().all(|v| *v >= 0.0));
        assert!(s.pairwise.is_empty());
    }

    #[test]
    fn saliency_logit_kind_is_abs_weight_column() {
        let api = model();
        let x0 = Vector(vec![0.3, 0.4]);
        let s = SaliencyMaps {
            score: ScoreKind::Logit,
        }
        .interpret(&api, &x0, 0)
        .unwrap();
        // Column 0 of W is (1, -1); saliency is its absolute value.
        assert_eq!(s.decision_features.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn gradient_input_is_gradient_times_input() {
        let api = model();
        let x0 = Vector(vec![2.0, -1.0]);
        let gi = GradientInput {
            score: ScoreKind::Logit,
        }
        .interpret(&api, &x0, 0)
        .unwrap();
        // Gradient (1, -1) times input (2, -1) elementwise.
        assert_eq!(gi.decision_features.as_slice(), &[2.0, 1.0]);
    }

    #[test]
    fn integrated_gradients_satisfies_completeness_on_probabilities() {
        // Completeness axiom: Σ attribution = F(x) − F(baseline). Verify to
        // Riemann-sum accuracy.
        let api = model();
        let x0 = Vector(vec![1.2, -0.7]);
        let ig = IntegratedGradients {
            steps: 400,
            ..Default::default()
        };
        let a = ig.interpret(&api, &x0, 0).unwrap();
        let total: f64 = a.decision_features.iter().sum();
        let fx = api.predict(x0.as_slice())[0];
        let f0 = api.predict(&[0.0, 0.0])[0];
        assert!(
            (total - (fx - f0)).abs() < 1e-4,
            "completeness gap {}",
            total - (fx - f0)
        );
    }

    #[test]
    fn integrated_gradients_with_custom_baseline() {
        let api = model();
        let x0 = Vector(vec![1.0, 1.0]);
        let ig = IntegratedGradients {
            steps: 100,
            baseline: Some(x0.clone()),
            ..Default::default()
        };
        // Baseline == input ⇒ zero attribution.
        let a = ig.interpret(&api, &x0, 1).unwrap();
        assert_eq!(a.decision_features.norm_linf(), 0.0);

        let bad = IntegratedGradients {
            baseline: Some(Vector(vec![0.0])),
            ..Default::default()
        };
        assert!(matches!(
            bad.interpret(&api, &x0, 0),
            Err(InterpretError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn validation_catches_bad_class() {
        let api = model();
        let x0 = Vector(vec![0.0, 0.0]);
        assert!(matches!(
            SaliencyMaps::default().interpret(&api, &x0, 5),
            Err(InterpretError::ClassOutOfRange { .. })
        ));
    }
}
