//! The five baselines the paper compares OpenAPI against (§V).
//!
//! Black-box (API access only, like OpenAPI):
//! * [`lime`] — the paper's extended LIME fitting `ln(y_c/y_{c'})` with
//!   ordinary linear regression (`L(h)`) or ridge regression (`R(h)`).
//! * [`zoo`] — zeroth-order gradient estimation with symmetric difference
//!   quotients (`Z(h)`).
//!
//! White-box (the paper grants these model-parameter access, expressed here
//! as the [`openapi_api::GradientOracle`] bound):
//! * [`gradient`] — Saliency Maps, Gradient*Input, Integrated Gradients.

pub mod gradient;
pub mod lime;
pub mod zoo;

pub use gradient::{GradientInput, IntegratedGradients, SaliencyMaps, ScoreKind};
pub use lime::{LimeConfig, LimeInterpreter, LimeRegressor};
pub use zoo::{ZooConfig, ZooInterpreter};
