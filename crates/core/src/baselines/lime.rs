//! The paper's extended LIME baselines (§V): fit the log-probability ratio
//! with a linear model over hypercube perturbations.
//!
//! Standard LIME regresses the predicted probability `y_c`; the paper's
//! extension instead regresses `ln(y_c / y_{c'})`, which inside one locally
//! linear region *is* an affine function of the input — so the regression
//! coefficients approximate the core parameters `(D_{c,c'}, B_{c,c'})`
//! directly, and Equation 1 assembles `D_c`. Two regressors are evaluated:
//! ordinary least squares (`Linear Regression LIME`) and ridge regression
//! (`Ridge Regression LIME`), whose shrinkage is exactly what collapses its
//! fits toward constants at small perturbation distances (paper §V-D).

use crate::decision::{Interpretation, PairwiseCoreParams};
use crate::equations::{EquationSystem, Probe};
use crate::error::InterpretError;
use crate::sampler::sample_many;
use openapi_api::PredictionApi;
use openapi_linalg::{LuFactor, Matrix, QrFactor, Vector};
use rand::Rng;

/// Which regression fits the perturbation set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LimeRegressor {
    /// Ordinary least squares — the paper's `Linear Regression LIME`, `L(h)`.
    Linear,
    /// Ridge regression with penalty `lambda` (intercept unpenalized) — the
    /// paper's `Ridge Regression LIME`, `R(h)`.
    Ridge {
        /// L2 penalty weight.
        lambda: f64,
    },
}

/// LIME parameters.
#[derive(Debug, Clone)]
pub struct LimeConfig {
    /// Perturbation distance `h` (hypercube edge around `x0`).
    pub perturbation_distance: f64,
    /// Number of perturbed instances sampled (plus `x0` itself). For the
    /// OLS regressor this must be ≥ `d` so the design matrix has full
    /// column rank; the default (`0`) auto-selects `2(d + 1)` samples,
    /// twice-overdetermined as is customary for LIME surrogates.
    pub num_samples: usize,
    /// Regressor choice.
    pub regressor: LimeRegressor,
}

impl LimeConfig {
    /// Linear-regression LIME at perturbation distance `h`.
    pub fn linear(h: f64) -> Self {
        LimeConfig {
            perturbation_distance: h,
            num_samples: 0,
            regressor: LimeRegressor::Linear,
        }
    }

    /// Ridge-regression LIME at perturbation distance `h` with the classic
    /// scikit-learn default penalty `λ = 1.0` (the setting whose collapse
    /// the paper dissects).
    pub fn ridge(h: f64) -> Self {
        LimeConfig {
            perturbation_distance: h,
            num_samples: 0,
            regressor: LimeRegressor::Ridge { lambda: 1.0 },
        }
    }

    /// The actual sample count for dimensionality `d` (resolves the `0`
    /// auto default to `2(d + 1)`).
    pub fn resolved_samples(&self, d: usize) -> usize {
        if self.num_samples == 0 {
            2 * (d + 1)
        } else {
            self.num_samples
        }
    }
}

/// The extended-LIME interpreter.
#[derive(Debug, Clone)]
pub struct LimeInterpreter {
    config: LimeConfig,
}

impl LimeInterpreter {
    /// Creates the interpreter.
    ///
    /// # Panics
    /// Panics when the perturbation distance is not positive/finite or a
    /// ridge `lambda` is negative.
    pub fn new(config: LimeConfig) -> Self {
        assert!(
            config.perturbation_distance.is_finite() && config.perturbation_distance > 0.0,
            "perturbation distance must be positive"
        );
        if let LimeRegressor::Ridge { lambda } = config.regressor {
            assert!(
                lambda.is_finite() && lambda >= 0.0,
                "ridge lambda must be non-negative"
            );
        }
        LimeInterpreter { config }
    }

    /// Fits the surrogate and returns the interpretation for `class`.
    ///
    /// # Errors
    /// Argument errors as in OpenAPI; [`InterpretError::Numerical`] when the
    /// regression is degenerate (rank-deficient OLS design, singular ridge
    /// normal equations).
    pub fn interpret<M: PredictionApi, R: Rng>(
        &self,
        api: &M,
        x0: &Vector,
        class: usize,
        rng: &mut R,
    ) -> Result<Interpretation, InterpretError> {
        let d = api.dim();
        let c_total = api.num_classes();
        if x0.len() != d {
            return Err(InterpretError::DimensionMismatch {
                expected: d,
                found: x0.len(),
            });
        }
        if c_total < 2 {
            return Err(InterpretError::TooFewClasses {
                num_classes: c_total,
            });
        }
        if class >= c_total {
            return Err(InterpretError::ClassOutOfRange {
                class,
                num_classes: c_total,
            });
        }

        let n = self.config.resolved_samples(d);
        let mut probes = Vec::with_capacity(n + 1);
        probes.push(Probe::query(api, x0.clone()));
        for x in sample_many(x0.as_slice(), self.config.perturbation_distance, n, rng) {
            probes.push(Probe::query(api, x));
        }
        let system = EquationSystem::new(probes);
        let design = system.coefficients();

        // Factor the shared design once, solve per contrast.
        enum Fitted {
            Ols(QrFactor),
            Ridge(LuFactor, Matrix), // (factored normal matrix, design)
        }
        let fitted = match self.config.regressor {
            LimeRegressor::Linear => Fitted::Ols(QrFactor::new(design)?),
            LimeRegressor::Ridge { lambda } => {
                let k = design.cols();
                let mut normal = design.transpose().matmul(design)?;
                for i in 1..k {
                    // Intercept (column 0) unpenalized, matching sklearn's
                    // Ridge(fit_intercept=True) that LIME uses.
                    normal[(i, i)] += lambda;
                }
                Fitted::Ridge(LuFactor::new(&normal)?, design.clone())
            }
        };

        let mut pairwise = Vec::with_capacity(c_total - 1);
        for c_prime in (0..c_total).filter(|&cp| cp != class) {
            let rhs = system.rhs(class, c_prime);
            let coef = match &fitted {
                Fitted::Ols(qr) => qr.solve_lstsq(&rhs)?.0,
                Fitted::Ridge(lu, design) => {
                    let atb = design.matvec_t(&rhs)?;
                    lu.solve(atb.as_slice())?
                }
            };
            pairwise.push(PairwiseCoreParams {
                c_prime,
                bias: coef[0],
                weights: Vector(coef.as_slice()[1..].to_vec()),
            });
        }
        Interpretation::from_pairwise(class, pairwise)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_api::LinearSoftmaxModel;
    use openapi_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> LinearSoftmaxModel {
        let w =
            Matrix::from_rows(&[&[1.0, -0.5, 0.3], &[0.0, 2.0, -0.7], &[-1.5, 0.5, 0.2]]).unwrap();
        LinearSoftmaxModel::new(w, Vector(vec![0.1, -0.2, 0.05]))
    }

    #[test]
    fn ols_lime_is_near_exact_on_single_region_models() {
        // One region ⇒ the log-ratio is globally affine ⇒ OLS recovers it to
        // solver precision.
        let api = model();
        let x0 = Vector(vec![0.2, -0.1, 0.4]);
        let lime = LimeInterpreter::new(LimeConfig::linear(0.1));
        let mut rng = StdRng::seed_from_u64(1);
        let i = lime.interpret(&api, &x0, 0, &mut rng).unwrap();
        let truth = api.local().decision_features(0);
        let err = i.decision_features.l1_distance(&truth).unwrap();
        assert!(err < 1e-7, "L1Dist {err}");
    }

    #[test]
    fn ridge_lime_collapses_at_tiny_perturbation_distances() {
        // §V-D: with h tiny the design's feature columns barely vary, the
        // penalty dominates, and the slope estimates shrink to ~0 while the
        // intercept absorbs the response.
        let api = model();
        let x0 = Vector(vec![0.2, -0.1, 0.4]);
        let truth = api.local().decision_features(0);

        let ridge = LimeInterpreter::new(LimeConfig::ridge(1e-8));
        let mut rng = StdRng::seed_from_u64(2);
        let i = ridge.interpret(&api, &x0, 0, &mut rng).unwrap();
        assert!(
            i.decision_features.norm_l2() < 1e-3 * truth.norm_l2(),
            "ridge slopes should be crushed: ‖D̂‖ = {}, truth {}",
            i.decision_features.norm_l2(),
            truth.norm_l2()
        );
        // Yet with a large h, ridge recovers a usable approximation.
        let ridge_big = LimeInterpreter::new(LimeConfig::ridge(1.0));
        let mut rng = StdRng::seed_from_u64(3);
        let i_big = ridge_big.interpret(&api, &x0, 0, &mut rng).unwrap();
        let cs = i_big.decision_features.cosine_similarity(&truth).unwrap();
        assert!(
            cs > 0.9,
            "large-h ridge direction should be usable, cs {cs}"
        );
    }

    #[test]
    fn auto_sample_count_is_twice_overdetermined() {
        assert_eq!(LimeConfig::linear(0.1).resolved_samples(10), 22);
        let explicit = LimeConfig {
            num_samples: 99,
            ..LimeConfig::linear(0.1)
        };
        assert_eq!(explicit.resolved_samples(10), 99);
    }

    #[test]
    fn pairwise_biases_are_recovered_by_ols() {
        let api = model();
        let x0 = Vector(vec![0.0, 0.0, 0.0]);
        let lime = LimeInterpreter::new(LimeConfig::linear(0.5));
        let mut rng = StdRng::seed_from_u64(4);
        let i = lime.interpret(&api, &x0, 1, &mut rng).unwrap();
        for p in &i.pairwise {
            let want = api.local().pairwise_bias(1, p.c_prime);
            assert!((p.bias - want).abs() < 1e-7, "contrast {}", p.c_prime);
        }
    }

    #[test]
    fn validates_arguments() {
        let api = model();
        let lime = LimeInterpreter::new(LimeConfig::linear(0.1));
        let mut rng = StdRng::seed_from_u64(5);
        assert!(matches!(
            lime.interpret(&api, &Vector(vec![0.0]), 0, &mut rng),
            Err(InterpretError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            lime.interpret(&api, &Vector(vec![0.0; 3]), 5, &mut rng),
            Err(InterpretError::ClassOutOfRange { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_distance() {
        let _ = LimeInterpreter::new(LimeConfig::linear(0.0));
    }
}
