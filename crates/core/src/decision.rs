//! Decision features and core parameters (paper §IV-A).

use crate::error::InterpretError;
use openapi_linalg::Vector;

/// The recovered core parameters of one class contrast:
/// `(D_{c,c'}, B_{c,c'})` such that `ln(y_c/y_{c'}) = D_{c,c'}ᵀx + B_{c,c'}`
/// throughout the locally linear region.
#[derive(Debug, Clone, PartialEq)]
pub struct PairwiseCoreParams {
    /// The contrast class `c'`.
    pub c_prime: usize,
    /// `D_{c,c'} = W_c − W_{c'}` — the pairwise decision features.
    pub weights: Vector,
    /// `B_{c,c'} = b_c − b_{c'}` — the pairwise bias difference.
    pub bias: f64,
}

/// A complete interpretation of one prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct Interpretation {
    /// The interpreted class `c`.
    pub class: usize,
    /// The class decision features `D_c` (Equation 1) — the attribution
    /// vector all experiments consume.
    pub decision_features: Vector,
    /// Per-contrast core parameters, when the method recovers them
    /// (OpenAPI, the naive method, LIME, ZOO do; the gradient baselines
    /// yield only an attribution vector and leave this empty).
    pub pairwise: Vec<PairwiseCoreParams>,
}

/// Applies Equation 1: `D_c = (1/(C−1)) Σ_{c'≠c} D_{c,c'}`.
///
/// # Errors
/// [`InterpretError::TooFewClasses`] when `pairwise` is empty, and
/// [`InterpretError::DimensionMismatch`] when contrast vectors disagree on
/// dimension.
pub fn decision_features_from_pairwise(
    pairwise: &[PairwiseCoreParams],
) -> Result<Vector, InterpretError> {
    let first = pairwise
        .first()
        .ok_or(InterpretError::TooFewClasses { num_classes: 1 })?;
    let d = first.weights.len();
    let mut acc = Vector::zeros(d);
    for p in pairwise {
        if p.weights.len() != d {
            return Err(InterpretError::DimensionMismatch {
                expected: d,
                found: p.weights.len(),
            });
        }
        acc.axpy(1.0, &p.weights).expect("length checked above");
    }
    acc.scale(1.0 / pairwise.len() as f64);
    Ok(acc)
}

impl Interpretation {
    /// Builds an interpretation from recovered pairwise core parameters.
    ///
    /// # Errors
    /// Propagates [`decision_features_from_pairwise`] failures.
    pub fn from_pairwise(
        class: usize,
        pairwise: Vec<PairwiseCoreParams>,
    ) -> Result<Self, InterpretError> {
        let decision_features = decision_features_from_pairwise(&pairwise)?;
        Ok(Interpretation {
            class,
            decision_features,
            pairwise,
        })
    }

    /// Builds an attribution-only interpretation (gradient baselines).
    pub fn attribution_only(class: usize, decision_features: Vector) -> Self {
        Interpretation {
            class,
            decision_features,
            pairwise: Vec::new(),
        }
    }

    /// The recovered contrast against `c_prime`, if present.
    pub fn contrast(&self, c_prime: usize) -> Option<&PairwiseCoreParams> {
        self.pairwise.iter().find(|p| p.c_prime == c_prime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(c_prime: usize, w: Vec<f64>, b: f64) -> PairwiseCoreParams {
        PairwiseCoreParams {
            c_prime,
            weights: Vector(w),
            bias: b,
        }
    }

    #[test]
    fn equation_one_is_the_mean_of_contrasts() {
        let pw = vec![pair(1, vec![1.0, 2.0], 0.5), pair(2, vec![3.0, -2.0], -0.5)];
        let d = decision_features_from_pairwise(&pw).unwrap();
        assert_eq!(d.as_slice(), &[2.0, 0.0]);
    }

    #[test]
    fn single_contrast_passes_through() {
        // Binary classification: D_c = D_{c,c'}.
        let pw = vec![pair(1, vec![4.0, -1.0], 0.0)];
        let d = decision_features_from_pairwise(&pw).unwrap();
        assert_eq!(d.as_slice(), &[4.0, -1.0]);
    }

    #[test]
    fn empty_contrasts_error() {
        assert!(matches!(
            decision_features_from_pairwise(&[]),
            Err(InterpretError::TooFewClasses { .. })
        ));
    }

    #[test]
    fn ragged_contrasts_error() {
        let pw = vec![pair(1, vec![1.0], 0.0), pair(2, vec![1.0, 2.0], 0.0)];
        assert!(matches!(
            decision_features_from_pairwise(&pw),
            Err(InterpretError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn interpretation_constructors() {
        let pw = vec![pair(1, vec![2.0], 0.25)];
        let i = Interpretation::from_pairwise(0, pw).unwrap();
        assert_eq!(i.class, 0);
        assert_eq!(i.decision_features.as_slice(), &[2.0]);
        assert!(i.contrast(1).is_some());
        assert!(i.contrast(2).is_none());

        let a = Interpretation::attribution_only(3, Vector(vec![1.0]));
        assert!(a.pairwise.is_empty());
        assert_eq!(a.class, 3);
    }
}
