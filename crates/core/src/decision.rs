//! Decision features and core parameters (paper §IV-A), plus the region
//! fingerprint the batch layer (see [`crate::batch`]) dedupes on.

use crate::error::InterpretError;
use openapi_api::log_ratio;
use openapi_linalg::Vector;

/// The recovered core parameters of one class contrast:
/// `(D_{c,c'}, B_{c,c'})` such that `ln(y_c/y_{c'}) = D_{c,c'}ᵀx + B_{c,c'}`
/// throughout the locally linear region.
#[derive(Debug, Clone, PartialEq)]
pub struct PairwiseCoreParams {
    /// The contrast class `c'`.
    pub c_prime: usize,
    /// `D_{c,c'} = W_c − W_{c'}` — the pairwise decision features.
    pub weights: Vector,
    /// `B_{c,c'} = b_c − b_{c'}` — the pairwise bias difference.
    pub bias: f64,
}

impl PairwiseCoreParams {
    /// Whether these core parameters explain an observed prediction: checks
    /// `|D_{c,c'}ᵀx + B_{c,c'} − ln(y_c/y_{c'})| ≤ rtol · max(1, |ln(y_c/y_{c'})|)`.
    ///
    /// By Theorem 2, the core parameters hold throughout `x`'s locally
    /// linear region; a probe that violates this identity for any contrast
    /// therefore lies in a *different* region (with probability 1).
    ///
    /// Shape mismatches — `x`'s dimension disagreeing with the recovered
    /// weights, or a class index out of range of `probs` — return `false`
    /// rather than panicking: parameters recovered from a *different model*
    /// cannot explain this probe, and membership scans must be able to say
    /// so safely (a region cache warm-started from a stale or mismatched
    /// snapshot must degrade to misses, never take the serving thread
    /// down — see `openapi-serve`'s snapshot module).
    pub fn explains(&self, x: &Vector, probs: &[f64], class: usize, rtol: f64) -> bool {
        if class >= probs.len() || self.c_prime >= probs.len() {
            return false;
        }
        let Ok(dot) = self.weights.dot(x) else {
            return false;
        };
        let predicted = dot + self.bias;
        let observed = log_ratio(probs, class, self.c_prime);
        (predicted - observed).abs() <= rtol * observed.abs().max(1.0)
    }
}

/// Canonical identity of a locally linear region, derived from recovered
/// core parameters.
///
/// Theorem 2 guarantees every instance of a region recovers the *identical*
/// core parameters (up to solver round-off), so hashing a canonicalized
/// (rounded) encoding of `(c', D_{c,c'}, B_{c,c'})` over all contrasts
/// yields a stable per-region key without any oracle access. Round-off
/// landing exactly on a rounding boundary can split one region over two
/// fingerprints — that costs a duplicate cache entry, never a wrong answer,
/// because lookups verify membership against the actual parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionFingerprint(pub u64);

/// FNV-1a over a byte stream — deterministic across processes and
/// platforms, unlike `std::collections::hash_map::DefaultHasher`.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Canonicalizes recovered core parameters into a [`RegionFingerprint`].
///
/// Each parameter is rounded to `digits` decimal places before hashing so
/// solver round-off (≪ the rounding step for any sane `digits`) maps
/// same-region recoveries to the same key.
pub fn region_fingerprint(pairwise: &[PairwiseCoreParams], digits: u32) -> RegionFingerprint {
    let scale = 10f64.powi(digits as i32);
    // +0.0 so −0.0 and +0.0 (and any value rounding to zero) hash alike.
    let quantize = |v: f64| ((v * scale).round() + 0.0).to_bits();
    let mut hash = 0xCBF2_9CE4_8422_2325u64; // FNV offset basis
    for p in pairwise {
        fnv1a(&mut hash, &(p.c_prime as u64).to_le_bytes());
        fnv1a(&mut hash, &quantize(p.bias).to_le_bytes());
        for &w in p.weights.iter() {
            fnv1a(&mut hash, &quantize(w).to_le_bytes());
        }
    }
    RegionFingerprint(hash)
}

/// A complete interpretation of one prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct Interpretation {
    /// The interpreted class `c`.
    pub class: usize,
    /// The class decision features `D_c` (Equation 1) — the attribution
    /// vector all experiments consume.
    pub decision_features: Vector,
    /// Per-contrast core parameters, when the method recovers them
    /// (OpenAPI, the naive method, LIME, ZOO do; the gradient baselines
    /// yield only an attribution vector and leave this empty).
    pub pairwise: Vec<PairwiseCoreParams>,
}

/// Applies Equation 1: `D_c = (1/(C−1)) Σ_{c'≠c} D_{c,c'}`.
///
/// # Errors
/// [`InterpretError::TooFewClasses`] when `pairwise` is empty, and
/// [`InterpretError::DimensionMismatch`] when contrast vectors disagree on
/// dimension.
pub fn decision_features_from_pairwise(
    pairwise: &[PairwiseCoreParams],
) -> Result<Vector, InterpretError> {
    let first = pairwise
        .first()
        .ok_or(InterpretError::TooFewClasses { num_classes: 1 })?;
    let d = first.weights.len();
    let mut acc = Vector::zeros(d);
    for p in pairwise {
        if p.weights.len() != d {
            return Err(InterpretError::DimensionMismatch {
                expected: d,
                found: p.weights.len(),
            });
        }
        acc.axpy(1.0, &p.weights).expect("length checked above");
    }
    acc.scale(1.0 / pairwise.len() as f64);
    Ok(acc)
}

impl Interpretation {
    /// Builds an interpretation from recovered pairwise core parameters.
    ///
    /// # Errors
    /// Propagates [`decision_features_from_pairwise`] failures.
    pub fn from_pairwise(
        class: usize,
        pairwise: Vec<PairwiseCoreParams>,
    ) -> Result<Self, InterpretError> {
        let decision_features = decision_features_from_pairwise(&pairwise)?;
        Ok(Interpretation {
            class,
            decision_features,
            pairwise,
        })
    }

    /// Builds an attribution-only interpretation (gradient baselines).
    pub fn attribution_only(class: usize, decision_features: Vector) -> Self {
        Interpretation {
            class,
            decision_features,
            pairwise: Vec::new(),
        }
    }

    /// The recovered contrast against `c_prime`, if present.
    pub fn contrast(&self, c_prime: usize) -> Option<&PairwiseCoreParams> {
        self.pairwise.iter().find(|p| p.c_prime == c_prime)
    }

    /// Whether this interpretation's core parameters explain the prediction
    /// `probs` observed at `x` — i.e. whether `x` lies in the same locally
    /// linear region (Theorem 2). Every recovered contrast must pass
    /// [`PairwiseCoreParams::explains`]; attribution-only interpretations
    /// (no contrasts) explain nothing.
    ///
    /// The test is exact only at `rtol → 0`: at a finite tolerance, an `x`
    /// within roughly `rtol` of a region boundary can also pass for the
    /// adjacent region, whose behaviour at `x` differs by less than the
    /// tolerance (PLMs are continuous across boundaries).
    ///
    /// Shape mismatches between the recovered parameters and `(x, probs)`
    /// — parameters from a different model — answer `false` rather than
    /// panicking (see [`PairwiseCoreParams::explains`]).
    pub fn explains_probe(&self, x: &Vector, probs: &[f64], rtol: f64) -> bool {
        !self.pairwise.is_empty()
            && self
                .pairwise
                .iter()
                .all(|p| p.explains(x, probs, self.class, rtol))
    }

    /// The canonical region fingerprint of this interpretation's recovered
    /// core parameters (see [`region_fingerprint`]).
    pub fn fingerprint(&self, digits: u32) -> RegionFingerprint {
        region_fingerprint(&self.pairwise, digits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(c_prime: usize, w: Vec<f64>, b: f64) -> PairwiseCoreParams {
        PairwiseCoreParams {
            c_prime,
            weights: Vector(w),
            bias: b,
        }
    }

    #[test]
    fn equation_one_is_the_mean_of_contrasts() {
        let pw = vec![pair(1, vec![1.0, 2.0], 0.5), pair(2, vec![3.0, -2.0], -0.5)];
        let d = decision_features_from_pairwise(&pw).unwrap();
        assert_eq!(d.as_slice(), &[2.0, 0.0]);
    }

    #[test]
    fn single_contrast_passes_through() {
        // Binary classification: D_c = D_{c,c'}.
        let pw = vec![pair(1, vec![4.0, -1.0], 0.0)];
        let d = decision_features_from_pairwise(&pw).unwrap();
        assert_eq!(d.as_slice(), &[4.0, -1.0]);
    }

    #[test]
    fn empty_contrasts_error() {
        assert!(matches!(
            decision_features_from_pairwise(&[]),
            Err(InterpretError::TooFewClasses { .. })
        ));
    }

    #[test]
    fn ragged_contrasts_error() {
        let pw = vec![pair(1, vec![1.0], 0.0), pair(2, vec![1.0, 2.0], 0.0)];
        assert!(matches!(
            decision_features_from_pairwise(&pw),
            Err(InterpretError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn interpretation_constructors() {
        let pw = vec![pair(1, vec![2.0], 0.25)];
        let i = Interpretation::from_pairwise(0, pw).unwrap();
        assert_eq!(i.class, 0);
        assert_eq!(i.decision_features.as_slice(), &[2.0]);
        assert!(i.contrast(1).is_some());
        assert!(i.contrast(2).is_none());

        let a = Interpretation::attribution_only(3, Vector(vec![1.0]));
        assert!(a.pairwise.is_empty());
        assert_eq!(a.class, 3);
    }

    #[test]
    fn fingerprint_is_stable_under_round_off() {
        let a = vec![pair(1, vec![0.5, -0.25], 0.125)];
        let b = vec![pair(1, vec![0.5 + 1e-12, -0.25 - 1e-12], 0.125 + 1e-12)];
        assert_eq!(region_fingerprint(&a, 6), region_fingerprint(&b, 6));
    }

    #[test]
    fn fingerprint_distinguishes_regions_and_contrasts() {
        let a = vec![pair(1, vec![0.5, -0.25], 0.125)];
        let b = vec![pair(1, vec![0.5, -0.25], 0.5)];
        let c = vec![pair(2, vec![0.5, -0.25], 0.125)];
        assert_ne!(region_fingerprint(&a, 6), region_fingerprint(&b, 6));
        assert_ne!(region_fingerprint(&a, 6), region_fingerprint(&c, 6));
    }

    #[test]
    fn fingerprint_treats_signed_zero_alike() {
        let a = vec![pair(1, vec![0.0], 0.0)];
        let b = vec![pair(1, vec![-0.0], -1e-12)];
        assert_eq!(region_fingerprint(&a, 6), region_fingerprint(&b, 6));
    }

    #[test]
    fn explains_accepts_in_region_probes_and_rejects_foreign_ones() {
        // Core params D = (1, −1), B = 0.5 for contrast (0, 1).
        let p = pair(1, vec![1.0, -1.0], 0.5);
        let x = Vector(vec![0.3, 0.1]);
        // ln(y0/y1) must equal D·x + B = 0.7; build consistent probs.
        let r = 0.7f64.exp();
        let y1 = 1.0 / (1.0 + r);
        let probs = [r * y1, y1];
        assert!(p.explains(&x, &probs, 0, 1e-9));
        let i = Interpretation::from_pairwise(0, vec![p]).unwrap();
        assert!(i.explains_probe(&x, &probs, 1e-9));
        // A probe from a different region fails the identity.
        assert!(!i.explains_probe(&x, &[0.9, 0.1], 1e-9));
        // Attribution-only interpretations never claim membership.
        let a = Interpretation::attribution_only(0, Vector(vec![1.0, -1.0]));
        assert!(!a.explains_probe(&x, &probs, 1e-9));
    }

    #[test]
    fn mismatched_shapes_answer_false_instead_of_panicking() {
        // Regression: parameters recovered from a different model (wrong
        // dimensionality, or contrast classes the probed model does not
        // have) must fail membership safely — a cache warm-started from a
        // mismatched snapshot degrades to misses, never panics a scan.
        let p = pair(4, vec![1.0, -1.0], 0.5); // c' = 4: not in a 2-class probe
        let x = Vector(vec![0.3, 0.1]);
        let probs = [0.6, 0.4];
        assert!(!p.explains(&x, &probs, 0, 1e-6));
        let i = Interpretation::from_pairwise(0, vec![p]).unwrap();
        assert!(!i.explains_probe(&x, &probs, 1e-6));
        // Wrong dimensionality (weights are 2-dim, x is 3-dim).
        let wide = Vector(vec![0.1, 0.2, 0.3]);
        let q = pair(1, vec![1.0, -1.0], 0.0);
        assert!(!q.explains(&wide, &probs, 0, 1e-6));
        // Interpreted class out of the probe's range.
        let r = Interpretation::from_pairwise(5, vec![pair(1, vec![1.0, -1.0], 0.0)]).unwrap();
        assert!(!r.explains_probe(&x, &probs, 1e-6));
    }
}
