//! The naive method (§IV-B): solve the determined system `Ω_{d+1}` at a
//! fixed, user-chosen perturbation distance.
//!
//! This is the method Theorem 1 warns about: it is exact *only in the ideal
//! case* where every sampled instance shares `x⁰`'s core parameters. When
//! the fixed hypercube straddles a region boundary, the solution is wrong
//! with probability 1 — and the method has no way to notice. It is included
//! both as the paper's baseline `N(h)` and as the experimental control that
//! makes OpenAPI's consistency check measurable.

use crate::decision::{Interpretation, PairwiseCoreParams};
use crate::equations::{solve_determined, EquationSystem, Probe};
use crate::error::InterpretError;
use crate::sampler::sample_many;
use openapi_api::PredictionApi;
use openapi_linalg::{LinalgError, Vector};
use rand::Rng;

/// Naive-method parameters.
#[derive(Debug, Clone)]
pub struct NaiveConfig {
    /// The fixed perturbation distance `h` (hypercube edge). The paper
    /// sweeps `h ∈ {1e-8, 1e-4, 1e-2}`.
    pub edge: f64,
    /// Resampling attempts when the sampled matrix is numerically singular
    /// (a probability-0 accident, but floating point earns a retry).
    pub max_attempts: usize,
}

impl NaiveConfig {
    /// Naive method at perturbation distance `h`.
    pub fn with_edge(edge: f64) -> Self {
        NaiveConfig {
            edge,
            max_attempts: 3,
        }
    }
}

/// The naive interpreter.
#[derive(Debug, Clone)]
pub struct NaiveInterpreter {
    config: NaiveConfig,
}

impl NaiveInterpreter {
    /// Creates the interpreter.
    ///
    /// # Panics
    /// Panics when `edge` is not positive/finite or `max_attempts == 0`.
    pub fn new(config: NaiveConfig) -> Self {
        assert!(
            config.edge.is_finite() && config.edge > 0.0,
            "edge must be positive"
        );
        assert!(config.max_attempts > 0, "need at least one attempt");
        NaiveInterpreter { config }
    }

    /// Interprets `api`'s prediction on `x0` for `class` by solving the
    /// determined `Ω_{d+1}` once (no consistency check, by design).
    ///
    /// # Errors
    /// Argument errors as in OpenAPI, plus [`InterpretError::Numerical`]
    /// when all resampling attempts produced singular systems.
    pub fn interpret<M: PredictionApi, R: Rng>(
        &self,
        api: &M,
        x0: &Vector,
        class: usize,
        rng: &mut R,
    ) -> Result<Interpretation, InterpretError> {
        let d = api.dim();
        let c_total = api.num_classes();
        if x0.len() != d {
            return Err(InterpretError::DimensionMismatch {
                expected: d,
                found: x0.len(),
            });
        }
        if c_total < 2 {
            return Err(InterpretError::TooFewClasses {
                num_classes: c_total,
            });
        }
        if class >= c_total {
            return Err(InterpretError::ClassOutOfRange {
                class,
                num_classes: c_total,
            });
        }

        let x0_probe = Probe::query(api, x0.clone());
        let mut last_err: LinalgError = LinalgError::Empty { op: "naive" };
        for _ in 0..self.config.max_attempts {
            // d sampled instances + x0 = d + 1 equations for d + 1 unknowns.
            let mut probes = Vec::with_capacity(d + 1);
            probes.push(x0_probe.clone());
            for x in sample_many(x0.as_slice(), self.config.edge, d, rng) {
                probes.push(Probe::query(api, x));
            }
            let system = EquationSystem::new(probes);
            let mut pairwise: Vec<PairwiseCoreParams> = Vec::with_capacity(c_total - 1);
            let mut failed = None;
            for c_prime in (0..c_total).filter(|&cp| cp != class) {
                match solve_determined(&system, class, c_prime) {
                    Ok(p) => pairwise.push(p),
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                }
            }
            match failed {
                None => return Interpretation::from_pairwise(class, pairwise),
                Some(e) => last_err = e,
            }
        }
        Err(InterpretError::Numerical(last_err))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_api::{GroundTruthOracle, LinearSoftmaxModel, LocalLinearModel, TwoRegionPlm};
    use openapi_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn linear_model() -> LinearSoftmaxModel {
        let w =
            Matrix::from_rows(&[&[1.0, -0.5, 0.3], &[0.0, 2.0, -0.7], &[-1.5, 0.5, 0.2]]).unwrap();
        LinearSoftmaxModel::new(w, Vector(vec![0.1, -0.2, 0.05]))
    }

    #[test]
    fn exact_in_the_ideal_case() {
        // Single-region model: every hypercube is "ideal"; the naive method
        // is exact at any h.
        let api = linear_model();
        let x0 = Vector(vec![0.2, 0.4, -0.3]);
        for h in [1e-8, 1e-4, 1e-2, 1.0] {
            let naive = NaiveInterpreter::new(NaiveConfig::with_edge(h));
            let mut rng = StdRng::seed_from_u64(1);
            let i = naive.interpret(&api, &x0, 0, &mut rng).unwrap();
            let truth = api.local().decision_features(0);
            let err = i.decision_features.l1_distance(&truth).unwrap();
            assert!(err < 1e-6, "h={h}: L1Dist {err}");
        }
    }

    #[test]
    fn wrong_when_the_cube_straddles_a_boundary() {
        // Theorem 1's scenario: x0 is 0.05 from the boundary and h = 1.0,
        // so nearly half the samples come from the other region. The naive
        // method returns *something* — and it is far from the truth.
        let low = LocalLinearModel::new(
            Matrix::from_rows(&[&[2.0, -2.0], &[1.0, 0.5]]).unwrap(),
            Vector(vec![0.0, 0.2]),
        );
        let high = LocalLinearModel::new(
            Matrix::from_rows(&[&[-5.0, 1.5], &[0.0, 3.0]]).unwrap(),
            Vector(vec![0.5, -0.5]),
        );
        let api = TwoRegionPlm::axis_split(0, 0.5, low, high);
        let x0 = Vector(vec![0.45, 0.0]);
        let truth = api.local_model(x0.as_slice()).decision_features(0);

        // With h = 1.0, each of the 2 samples crosses the boundary with
        // probability ≈ 0.47; over seeds, the majority of runs mix regions
        // and come out badly wrong while NEVER reporting failure.
        let naive = NaiveInterpreter::new(NaiveConfig::with_edge(1.0));
        let mut wrong = 0;
        for seed in 0..12 {
            let mut rng = StdRng::seed_from_u64(seed);
            let i = naive.interpret(&api, &x0, 0, &mut rng).unwrap();
            if i.decision_features.l1_distance(&truth).unwrap() > 0.1 {
                wrong += 1;
            }
        }
        assert!(
            wrong >= 6,
            "naive should usually be wrong here, was wrong {wrong}/12"
        );

        // …while a small-enough fixed h stays inside the region and is exact
        // on every run (the h-sensitivity the paper's Figures 5-7 chart).
        let naive_small = NaiveInterpreter::new(NaiveConfig::with_edge(1e-4));
        for seed in 0..12 {
            let mut rng = StdRng::seed_from_u64(seed);
            let i_small = naive_small.interpret(&api, &x0, 0, &mut rng).unwrap();
            let err_small = i_small.decision_features.l1_distance(&truth).unwrap();
            assert!(
                err_small < 1e-4,
                "seed {seed}: small h should be exact, got {err_small}"
            );
        }
    }

    #[test]
    fn validates_arguments() {
        let api = linear_model();
        let naive = NaiveInterpreter::new(NaiveConfig::with_edge(0.1));
        let mut rng = StdRng::seed_from_u64(4);
        assert!(matches!(
            naive.interpret(&api, &Vector(vec![0.0]), 0, &mut rng),
            Err(InterpretError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            naive.interpret(&api, &Vector(vec![0.0; 3]), 7, &mut rng),
            Err(InterpretError::ClassOutOfRange { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_edge() {
        let _ = NaiveInterpreter::new(NaiveConfig::with_edge(-1.0));
    }
}
