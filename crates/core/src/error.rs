//! Error type for the interpretation methods.

use openapi_linalg::LinalgError;
use std::fmt;

/// Why an interpretation attempt failed.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpretError {
    /// OpenAPI exhausted its iteration budget without finding a consistent
    /// system for every contrast class (probability-0 for interior points,
    /// but reachable for boundary points, degraded APIs, or non-PLM
    /// targets — the diagnostics say which contrasts kept failing).
    BudgetExhausted {
        /// Iterations performed (the `m` of Algorithm 1).
        iterations: usize,
        /// Final hypercube edge length when the budget ran out.
        final_edge: f64,
        /// Contrast classes `c'` still lacking a consistent system.
        unsatisfied: Vec<usize>,
    },
    /// The target class is out of range for the model.
    ClassOutOfRange {
        /// Requested class.
        class: usize,
        /// Number of classes the model reports.
        num_classes: usize,
    },
    /// The model must have at least two classes to define decision features.
    TooFewClasses {
        /// Number of classes the model reports.
        num_classes: usize,
    },
    /// The instance dimensionality disagrees with the API.
    DimensionMismatch {
        /// Expected dimensionality (API's `dim()`).
        expected: usize,
        /// Found instance length.
        found: usize,
    },
    /// A linear-algebra failure that sampling retries could not clear.
    Numerical(LinalgError),
}

impl fmt::Display for InterpretError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpretError::BudgetExhausted { iterations, final_edge, unsatisfied } => write!(
                f,
                "no consistent system after {iterations} iterations (edge {final_edge:.3e}; contrasts still failing: {unsatisfied:?})"
            ),
            InterpretError::ClassOutOfRange { class, num_classes } => {
                write!(f, "class {class} out of range ({num_classes} classes)")
            }
            InterpretError::TooFewClasses { num_classes } => {
                write!(f, "need at least 2 classes, model has {num_classes}")
            }
            InterpretError::DimensionMismatch { expected, found } => {
                write!(f, "instance has dimension {found}, API expects {expected}")
            }
            InterpretError::Numerical(e) => write!(f, "numerical failure: {e}"),
        }
    }
}

impl std::error::Error for InterpretError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InterpretError::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for InterpretError {
    fn from(e: LinalgError) -> Self {
        InterpretError::Numerical(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_facts() {
        let e = InterpretError::BudgetExhausted {
            iterations: 100,
            final_edge: 7.8e-31,
            unsatisfied: vec![3, 7],
        };
        let s = e.to_string();
        assert!(s.contains("100"));
        assert!(s.contains('3') && s.contains('7'));

        assert!(InterpretError::ClassOutOfRange {
            class: 5,
            num_classes: 3
        }
        .to_string()
        .contains("5"));
    }

    #[test]
    fn linalg_errors_convert_and_chain() {
        let src = LinalgError::Singular {
            pivot: 1,
            magnitude: 0.0,
        };
        let e: InterpretError = src.clone().into();
        assert_eq!(e, InterpretError::Numerical(src));
        assert!(std::error::Error::source(&e).is_some());
    }
}
