//! OpenAPI — Algorithm 1 of the paper.
//!
//! For an instance `x⁰` and class `c`, OpenAPI samples `d + 1` perturbed
//! instances in a hypercube around `x⁰`, builds the overdetermined system
//! `Ω_{d+2}` for every contrast class `c'`, and accepts the solutions only
//! if **every** contrast's system is consistent (Theorem 2: a consistent
//! `Ω_{d+2}` has a unique solution equal to the true core parameters with
//! probability 1). Otherwise the hypercube edge is halved and the sampling
//! repeats — adaptively shrinking until the cube fits inside `x⁰`'s locally
//! linear region, with no knowledge of where that region's boundaries lie.

use crate::decision::Interpretation;
use crate::equations::{ConsistencySolver, EquationSystem, Probe};
use crate::error::InterpretError;
use crate::sampler::sample_many;
use openapi_api::PredictionApi;
use openapi_linalg::solve::ConsistencyStrategy;
use openapi_linalg::{LinalgError, Vector};
use rand::Rng;

/// Algorithm 1 hyperparameters (defaults follow the paper's experiments).
#[derive(Debug, Clone)]
pub struct OpenApiConfig {
    /// Maximum sampling iterations `m` (paper: 100; observed ≤ 20).
    pub max_iterations: usize,
    /// Initial hypercube edge `r` (paper: 1.0 — "the initial value of r has
    /// little influence" because of the adaptive halving).
    pub initial_edge: f64,
    /// Multiplicative edge shrink per failed iteration (paper: ½). Exposed
    /// for the hypercube-policy ablation.
    pub shrink_factor: f64,
    /// Relative residual tolerance of the consistency check.
    pub rtol: f64,
    /// Which consistency check to run (see the solver ablation).
    pub strategy: ConsistencyStrategy,
}

impl Default for OpenApiConfig {
    fn default() -> Self {
        OpenApiConfig {
            max_iterations: 100,
            initial_edge: 1.0,
            shrink_factor: 0.5,
            rtol: 1e-6,
            strategy: ConsistencyStrategy::SquareThenCheck,
        }
    }
}

/// One iteration's diagnostics.
#[derive(Debug, Clone)]
pub struct IterationLog {
    /// Hypercube edge used this iteration.
    pub edge: f64,
    /// Contrasts whose systems were consistent. Contrasts are checked in
    /// ascending `c'` order and the iteration aborts at the first
    /// inconsistent one, so on a failed iteration this counts the
    /// consistent prefix actually checked.
    pub consistent_contrasts: usize,
    /// Total contrasts required (`C − 1`).
    pub required_contrasts: usize,
    /// Worst residual over the checked contrasts (∞ when factorization
    /// failed). On a failed iteration the last checked contrast is the
    /// inconsistent one that doomed it; contrasts after it are never
    /// solved, so their residuals cannot dilute this figure.
    pub worst_residual: f64,
    /// Whether the sampled geometry degenerated (singular/rank-deficient).
    pub degenerate: bool,
}

/// Successful OpenAPI output with full diagnostics.
#[derive(Debug, Clone)]
pub struct OpenApiResult {
    /// The recovered interpretation (exact with probability 1).
    pub interpretation: Interpretation,
    /// Iterations consumed (1 = first sample succeeded).
    pub iterations: usize,
    /// Hypercube edge of the successful iteration.
    pub final_edge: f64,
    /// Prediction queries issued (`1 + iterations · (d+1)`).
    pub queries: usize,
    /// Per-iteration log (length = `iterations`).
    pub log: Vec<IterationLog>,
    /// The `d + 1` sampled instances of the successful iteration (the set
    /// whose quality the paper's RD/WD experiments measure).
    pub samples: Vec<Vector>,
}

/// Shared argument validation: a usable class needs `C ≥ 2` and
/// `class < C`. Also used by the batch layer's up-front rejection.
pub(crate) fn validate_class(c_total: usize, class: usize) -> Result<(), InterpretError> {
    if c_total < 2 {
        return Err(InterpretError::TooFewClasses {
            num_classes: c_total,
        });
    }
    if class >= c_total {
        return Err(InterpretError::ClassOutOfRange {
            class,
            num_classes: c_total,
        });
    }
    Ok(())
}

/// The OpenAPI interpreter.
#[derive(Debug, Clone, Default)]
pub struct OpenApiInterpreter {
    config: OpenApiConfig,
}

impl OpenApiInterpreter {
    /// Creates an interpreter with the given configuration.
    pub fn new(config: OpenApiConfig) -> Self {
        OpenApiInterpreter { config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &OpenApiConfig {
        &self.config
    }

    /// Runs Algorithm 1: interprets the prediction of `api` on `x0` for
    /// `class`.
    ///
    /// # Errors
    /// * [`InterpretError::ClassOutOfRange`] / [`InterpretError::TooFewClasses`]
    ///   / [`InterpretError::DimensionMismatch`] on invalid arguments.
    /// * [`InterpretError::BudgetExhausted`] when `max_iterations` sampling
    ///   rounds never produced `C − 1` consistent systems — for a true PLM
    ///   this happens only if `x0` lies exactly on a region boundary
    ///   (probability 0) or the API degrades its outputs.
    pub fn interpret<M: PredictionApi, R: Rng>(
        &self,
        api: &M,
        x0: &Vector,
        class: usize,
        rng: &mut R,
    ) -> Result<OpenApiResult, InterpretError> {
        if x0.len() != api.dim() {
            return Err(InterpretError::DimensionMismatch {
                expected: api.dim(),
                found: x0.len(),
            });
        }
        // Validate the class BEFORE the x0 probe: a metered API must not be
        // billed for a call that was doomed by its arguments.
        validate_class(api.num_classes(), class)?;
        let x0_probe = Probe::query(api, x0.clone());
        self.interpret_with_probe(api, x0_probe, class, rng)
    }

    /// Runs Algorithm 1 starting from an already-queried probe of `x0` —
    /// the batch layer pays one membership probe per instance and reuses it
    /// here on a cache miss, so no instance is ever queried twice.
    ///
    /// `x0_probe` must come from this `api`; [`OpenApiResult::queries`]
    /// includes the probe, exactly as if [`OpenApiInterpreter::interpret`]
    /// had issued it.
    ///
    /// # Errors
    /// As [`OpenApiInterpreter::interpret`].
    pub fn interpret_with_probe<M: PredictionApi, R: Rng>(
        &self,
        api: &M,
        x0_probe: Probe,
        class: usize,
        rng: &mut R,
    ) -> Result<OpenApiResult, InterpretError> {
        let d = api.dim();
        let c_total = api.num_classes();
        if x0_probe.x.len() != d {
            return Err(InterpretError::DimensionMismatch {
                expected: d,
                found: x0_probe.x.len(),
            });
        }
        validate_class(c_total, class)?;
        let x0 = x0_probe.x.clone();
        let mut queries = 1usize;
        let mut edge = self.config.initial_edge;
        let mut log = Vec::new();

        for iteration in 1..=self.config.max_iterations {
            // Sample d + 1 fresh instances; together with x0 they form the
            // d + 2 equations of Ω_{d+2}.
            let samples = sample_many(x0.as_slice(), edge, d + 1, rng);
            let mut probes = Vec::with_capacity(d + 2);
            probes.push(x0_probe.clone());
            for x in &samples {
                probes.push(Probe::query(api, x.clone()));
            }
            queries += d + 1;

            let system = EquationSystem::new(probes);
            let outcome = self.try_all_contrasts(&system, class, c_total);
            match outcome {
                Ok((pairwise, worst_residual)) => {
                    log.push(IterationLog {
                        edge,
                        consistent_contrasts: c_total - 1,
                        required_contrasts: c_total - 1,
                        worst_residual,
                        degenerate: false,
                    });
                    let interpretation = Interpretation::from_pairwise(class, pairwise)?;
                    return Ok(OpenApiResult {
                        interpretation,
                        iterations: iteration,
                        final_edge: edge,
                        queries,
                        log,
                        samples,
                    });
                }
                Err(iter_log) => {
                    log.push(IterationLog { edge, ..iter_log });
                    edge *= self.config.shrink_factor;
                    if edge < f64::MIN_POSITIVE * 4.0 {
                        // The cube has shrunk below representable widths;
                        // further iterations would sample duplicates.
                        break;
                    }
                }
            }
        }

        let unsatisfied = (0..c_total).filter(|&cp| cp != class).collect();
        Err(InterpretError::BudgetExhausted {
            iterations: log.len(),
            final_edge: edge,
            unsatisfied,
        })
    }

    /// Convenience: interpret the API's own predicted class at `x0`.
    ///
    /// # Errors
    /// As [`OpenApiInterpreter::interpret`].
    pub fn interpret_predicted<M: PredictionApi, R: Rng>(
        &self,
        api: &M,
        x0: &Vector,
        rng: &mut R,
    ) -> Result<OpenApiResult, InterpretError> {
        let class = api.predict_label(x0.as_slice());
        self.interpret(api, x0, class, rng)
    }

    /// Checks every contrast on one sampled system. On success returns the
    /// recovered pairwise parameters; on failure returns the iteration log
    /// entry (minus the edge, filled by the caller).
    fn try_all_contrasts(
        &self,
        system: &EquationSystem,
        class: usize,
        c_total: usize,
    ) -> Result<(Vec<crate::decision::PairwiseCoreParams>, f64), IterationLog> {
        let required = c_total - 1;
        let solver = match ConsistencySolver::new(system, self.config.strategy, self.config.rtol) {
            Ok(s) => s,
            Err(_) => {
                // Degenerate sampling geometry (probability 0): resample.
                return Err(IterationLog {
                    edge: 0.0,
                    consistent_contrasts: 0,
                    required_contrasts: required,
                    worst_residual: f64::INFINITY,
                    degenerate: true,
                });
            }
        };
        let mut pairwise = Vec::with_capacity(required);
        let mut worst_residual = 0.0f64;
        let mut consistent = 0usize;
        for c_prime in (0..c_total).filter(|&cp| cp != class) {
            match solver.check(&system.rhs(class, c_prime), c_prime) {
                Ok(verdict) => {
                    worst_residual = worst_residual.max(verdict.residual);
                    if verdict.consistent {
                        consistent += 1;
                        pairwise.push(verdict.params);
                    } else {
                        // Algorithm 1 needs ALL contrasts consistent; one
                        // failure dooms the iteration, so skip the solver
                        // work for the remaining contrasts and resample.
                        return Err(IterationLog {
                            edge: 0.0,
                            consistent_contrasts: consistent,
                            required_contrasts: required,
                            worst_residual,
                            degenerate: false,
                        });
                    }
                }
                Err(LinalgError::RankDeficient { .. }) | Err(_) => {
                    return Err(IterationLog {
                        edge: 0.0,
                        consistent_contrasts: consistent,
                        required_contrasts: required,
                        worst_residual: f64::INFINITY,
                        degenerate: true,
                    });
                }
            }
        }
        // Every contrast was checked and none triggered the early exit.
        debug_assert_eq!(consistent, required);
        Ok((pairwise, worst_residual))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_api::{
        CountingApi, GroundTruthOracle, LinearSoftmaxModel, LocalLinearModel, TwoRegionPlm,
    };
    use openapi_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn linear_model() -> LinearSoftmaxModel {
        let w = Matrix::from_rows(&[
            &[1.0, -0.5, 0.25, 0.8],
            &[0.0, 2.0, -1.0, -0.3],
            &[-1.5, 0.5, 0.75, 0.1],
            &[0.3, -0.9, 0.4, 1.2],
        ])
        .unwrap();
        LinearSoftmaxModel::new(w, Vector(vec![0.1, -0.2, 0.3, 0.0]))
    }

    #[test]
    fn recovers_exact_decision_features_on_single_region_model() {
        // Logistic regression is a PLM with one region: OpenAPI must succeed
        // on the FIRST iteration with the exact D_c.
        let api = linear_model();
        let x0 = Vector(vec![0.3, -0.2, 0.5, 0.1]);
        let interp = OpenApiInterpreter::default();
        let mut rng = StdRng::seed_from_u64(1);
        for class in 0..4 {
            let res = interp.interpret(&api, &x0, class, &mut rng).unwrap();
            assert_eq!(res.iterations, 1, "single region: first cube works");
            let truth = api.local().decision_features(class);
            let err = res
                .interpretation
                .decision_features
                .l1_distance(&truth)
                .unwrap();
            assert!(err < 1e-7, "class {class}: L1Dist {err}");
            // Pairwise biases too.
            for p in &res.interpretation.pairwise {
                let want = api.local().pairwise_bias(class, p.c_prime);
                assert!((p.bias - want).abs() < 1e-7);
            }
        }
    }

    fn two_region_model() -> TwoRegionPlm {
        let low = LocalLinearModel::new(
            Matrix::from_rows(&[&[2.0, -2.0], &[1.0, 0.5]]).unwrap(),
            Vector(vec![0.0, 0.2]),
        );
        let high = LocalLinearModel::new(
            Matrix::from_rows(&[&[-1.0, 1.5], &[0.0, 3.0]]).unwrap(),
            Vector(vec![0.5, -0.5]),
        );
        TwoRegionPlm::axis_split(0, 0.5, low, high)
    }

    #[test]
    fn adaptively_shrinks_near_a_region_boundary() {
        // x0 sits 0.01 from the boundary; the initial edge 1.0 cube
        // straddles it, so with probability ≈ 0.87 per run the first sample
        // set mixes regions and OpenAPI must shrink. Run several seeds: the
        // answer must be EXACT on every run, and shrinking must be observed
        // on most runs.
        let api = two_region_model();
        let x0 = Vector(vec![0.49, 0.3]);
        let interp = OpenApiInterpreter::default();
        let truth = api.local_model(x0.as_slice()).decision_features(0);
        let mut shrank = 0;
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let res = interp.interpret(&api, &x0, 0, &mut rng).unwrap();
            let err = res
                .interpretation
                .decision_features
                .l1_distance(&truth)
                .unwrap();
            assert!(err < 1e-7, "seed {seed}: L1Dist {err}");
            assert_eq!(res.log.len(), res.iterations);
            if res.iterations > 1 {
                shrank += 1;
                assert!(res.final_edge < 1.0);
                // The log records the failed iterations.
                assert!(res.log[..res.iterations - 1]
                    .iter()
                    .all(|l| l.consistent_contrasts < l.required_contrasts));
            }
        }
        assert!(
            shrank >= 5,
            "expected shrinking on most runs, saw {shrank}/10"
        );
    }

    #[test]
    fn interprets_the_correct_side_of_the_boundary() {
        let api = two_region_model();
        let interp = OpenApiInterpreter::default();
        let mut rng = StdRng::seed_from_u64(3);
        let lo = Vector(vec![0.2, 0.0]);
        let hi = Vector(vec![0.8, 0.0]);
        let d_lo = interp.interpret(&api, &lo, 0, &mut rng).unwrap();
        let d_hi = interp.interpret(&api, &hi, 0, &mut rng).unwrap();
        let t_lo = api.local_model(lo.as_slice()).decision_features(0);
        let t_hi = api.local_model(hi.as_slice()).decision_features(0);
        assert!(
            d_lo.interpretation
                .decision_features
                .l1_distance(&t_lo)
                .unwrap()
                < 1e-7
        );
        assert!(
            d_hi.interpretation
                .decision_features
                .l1_distance(&t_hi)
                .unwrap()
                < 1e-7
        );
        assert!(
            d_lo.interpretation
                .decision_features
                .l1_distance(&d_hi.interpretation.decision_features)
                .unwrap()
                > 0.5
        );
    }

    #[test]
    fn consistency_is_exact_within_a_region() {
        // Two instances in the same region get IDENTICAL interpretations up
        // to solver round-off — the paper's consistency property.
        let api = two_region_model();
        let interp = OpenApiInterpreter::default();
        let mut rng = StdRng::seed_from_u64(4);
        let a = Vector(vec![0.1, 0.7]);
        let b = Vector(vec![0.3, -0.4]);
        let da = interp.interpret(&api, &a, 1, &mut rng).unwrap();
        let db = interp.interpret(&api, &b, 1, &mut rng).unwrap();
        let cs = da
            .interpretation
            .decision_features
            .cosine_similarity(&db.interpretation.decision_features)
            .unwrap();
        assert!((cs - 1.0).abs() < 1e-9, "cosine similarity {cs}");
    }

    #[test]
    fn query_accounting_matches_iterations() {
        let api = CountingApi::new(linear_model());
        let x0 = Vector(vec![0.0, 0.0, 0.0, 0.0]);
        let interp = OpenApiInterpreter::default();
        let mut rng = StdRng::seed_from_u64(5);
        let res = interp.interpret(&api, &x0, 0, &mut rng).unwrap();
        assert_eq!(res.queries as u64, api.queries());
        assert_eq!(res.queries, 1 + res.iterations * (api.dim() + 1));
    }

    #[test]
    fn both_strategies_agree_on_the_answer() {
        let api = two_region_model();
        let x0 = Vector(vec![0.45, 0.2]);
        let mut cfg = OpenApiConfig::default();
        let mut rng1 = StdRng::seed_from_u64(6);
        let a = OpenApiInterpreter::new(cfg.clone())
            .interpret(&api, &x0, 0, &mut rng1)
            .unwrap();
        cfg.strategy = ConsistencyStrategy::LeastSquares;
        let mut rng2 = StdRng::seed_from_u64(6);
        let b = OpenApiInterpreter::new(cfg)
            .interpret(&api, &x0, 0, &mut rng2)
            .unwrap();
        let dist = a
            .interpretation
            .decision_features
            .l1_distance(&b.interpretation.decision_features)
            .unwrap();
        assert!(dist < 1e-7, "strategies disagree by {dist}");
    }

    #[test]
    fn budget_exhaustion_is_reported_not_silent() {
        // A tiny iteration budget with a point essentially on the boundary.
        let api = two_region_model();
        let x0 = Vector(vec![0.5, 0.0]); // exactly on the boundary
        let cfg = OpenApiConfig {
            max_iterations: 3,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let res = OpenApiInterpreter::new(cfg).interpret(&api, &x0, 0, &mut rng);
        // On the boundary the region routing puts x0 in the 'high' region,
        // but any cube contains 'low' points; with only 3 iterations the
        // cube may not shrink enough.
        match res {
            Err(InterpretError::BudgetExhausted { iterations, .. }) => {
                assert_eq!(iterations, 3);
            }
            Ok(r) => {
                // If it succeeded, the cube shrank enough that all samples
                // landed on the high side; verify exactness then.
                let truth = api.local_model(x0.as_slice()).decision_features(0);
                assert!(
                    r.interpretation
                        .decision_features
                        .l1_distance(&truth)
                        .unwrap()
                        < 1e-7
                );
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn inconsistent_contrast_aborts_the_iteration_early() {
        // Build a probe set that is consistent for contrast (0, 2) but
        // corrupted for (0, 1): the first failing contrast must abort the
        // sweep, so the later (consistent) contrast is never counted.
        let api = linear_model();
        let x0 = Vector(vec![0.1, 0.2, -0.1, 0.3]);
        let mut rng = StdRng::seed_from_u64(11);
        let mut probes = vec![Probe::query(&api, x0.clone())];
        for x in crate::sampler::sample_many(x0.as_slice(), 0.5, api.dim() + 1, &mut rng) {
            probes.push(Probe::query(&api, x));
        }
        // Double class 1's probability on the last probe only: log-ratios
        // involving class 1 shift by ln 2 on that equation, others are
        // untouched.
        probes.last_mut().unwrap().probs[1] *= 2.0;
        let system = EquationSystem::new(probes);
        let interp = OpenApiInterpreter::default();
        let log = interp
            .try_all_contrasts(&system, 0, api.num_classes())
            .expect_err("contrast (0,1) is corrupted");
        assert!(!log.degenerate);
        assert_eq!(log.required_contrasts, 3);
        // Early exit at the FIRST contrast (c' = 1): the consistent
        // contrasts (0,2) and (0,3) after it must not be counted or solved.
        assert_eq!(log.consistent_contrasts, 0);
        assert!(log.worst_residual.is_finite());
        // Sanity: without the corruption every contrast is consistent.
        let mut rng = StdRng::seed_from_u64(11);
        let mut clean = vec![Probe::query(&api, x0.clone())];
        for x in crate::sampler::sample_many(x0.as_slice(), 0.5, api.dim() + 1, &mut rng) {
            clean.push(Probe::query(&api, x));
        }
        let clean_system = EquationSystem::new(clean);
        assert!(interp
            .try_all_contrasts(&clean_system, 0, api.num_classes())
            .is_ok());
    }

    #[test]
    fn interpret_with_probe_matches_interpret_bit_for_bit() {
        let api = two_region_model();
        let x0 = Vector(vec![0.3, -0.2]);
        let interp = OpenApiInterpreter::default();
        let mut rng_a = StdRng::seed_from_u64(12);
        let a = interp.interpret(&api, &x0, 0, &mut rng_a).unwrap();
        let mut rng_b = StdRng::seed_from_u64(12);
        let probe = Probe::query(&api, x0.clone());
        let b = interp
            .interpret_with_probe(&api, probe, 0, &mut rng_b)
            .unwrap();
        assert_eq!(a.interpretation, b.interpretation);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn argument_validation() {
        let api = linear_model();
        let interp = OpenApiInterpreter::default();
        let mut rng = StdRng::seed_from_u64(8);
        let short = Vector(vec![0.0; 2]);
        assert!(matches!(
            interp.interpret(&api, &short, 0, &mut rng),
            Err(InterpretError::DimensionMismatch { .. })
        ));
        let x0 = Vector(vec![0.0; 4]);
        assert!(matches!(
            interp.interpret(&api, &x0, 9, &mut rng),
            Err(InterpretError::ClassOutOfRange { .. })
        ));
    }

    #[test]
    fn invalid_arguments_cost_zero_queries() {
        // A metered API must not be billed for calls doomed by their
        // arguments: validation runs before the x0 probe.
        let api = CountingApi::new(linear_model());
        let interp = OpenApiInterpreter::default();
        let mut rng = StdRng::seed_from_u64(10);
        let _ = interp.interpret(&api, &Vector(vec![0.0; 2]), 0, &mut rng);
        let _ = interp.interpret(&api, &Vector(vec![0.0; 4]), 9, &mut rng);
        assert_eq!(api.queries(), 0);
    }

    #[test]
    fn interpret_predicted_uses_argmax_class() {
        let api = linear_model();
        let x0 = Vector(vec![0.3, -0.2, 0.5, 0.1]);
        let interp = OpenApiInterpreter::default();
        let mut rng = StdRng::seed_from_u64(9);
        let res = interp.interpret_predicted(&api, &x0, &mut rng).unwrap();
        assert_eq!(res.interpretation.class, api.predict_label(x0.as_slice()));
    }
}
