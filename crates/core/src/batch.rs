//! Region-deduplicating batch interpretation.
//!
//! Theorem 2 of the paper is a *caching theorem* in disguise: every instance
//! inside one locally linear region recovers the **identical** core
//! parameters `(D_{c,c'}, B_{c,c'})` — interpretation is a per-region
//! computation, not a per-instance one (the insight OpenBox, arXiv:1802.06259,
//! exploits with white-box access). [`BatchInterpreter`] carries that insight
//! into the black-box setting: it interprets a slice of instances for a
//! class, runs the full `d + 1`-query Algorithm 1 only on the **first**
//! instance of each region, and serves every later instance of that region
//! from cache.
//!
//! Cache soundness rests on Theorem 2 both ways:
//!
//! * **Lookup** ([`BatchInterpreter::interpret_batch`]): one prediction
//!   query per instance suffices to decide membership — if a cached region's
//!   parameters satisfy `D_{c,c'}ᵀx + B_{c,c'} = ln(y_c/y_{c'})` for every
//!   contrast ([`Interpretation::explains_probe`]), then `x` lies in that
//!   region (exactly, at zero tolerance) and the cached interpretation is
//!   `x`'s interpretation. The check runs at the finite
//!   [`BatchConfig::membership_rtol`], so an instance within roughly that
//!   tolerance of a boundary can match the *adjacent* region — a PLM is
//!   continuous across boundaries, so the served parameters still explain
//!   `x`'s observable behaviour to the same tolerance Algorithm 1 itself
//!   accepts solutions at (its consistency check admits borderline sample
//!   sets the same way). A hit costs 1 query instead of
//!   `1 + iterations · (d+1)`.
//! * **Key** ([`crate::decision::region_fingerprint`]): recovered parameters
//!   are canonicalized and hashed, so two misses that independently solved
//!   the same region (e.g. a borderline membership tolerance) merge into one
//!   entry and all their callers receive bit-identical interpretations.
//!
//! For white-box *test* models, [`BatchInterpreter::interpret_batch_oracle`]
//! keys the cache on [`GroundTruthOracle::region_id`] instead — hits then
//! issue **zero** prediction queries, the lower bound a production service
//! colocated with its model could reach. The oracle variant exists for
//! evaluation and tests; the black-box variant is the deployable one.
//!
//! The cache itself lives in [`crate::cache::RegionCache`] — the sharded
//! concurrent tier in `openapi-serve` wraps the same structure, so both
//! share one membership-probe code path. [`BatchStats`] exposes the
//! hit/miss/query accounting a capacity planner needs.

use crate::cache::{CachedRegion, ProbeRef, RegionCache, RegionCacheConfig};
use crate::decision::{Interpretation, RegionFingerprint};
use crate::equations::Probe;
use crate::error::InterpretError;
use crate::openapi::{OpenApiConfig, OpenApiInterpreter};
use openapi_api::{GroundTruthOracle, PredictionApi, RegionId};
use openapi_linalg::Vector;
use rand::Rng;
use std::sync::Arc;

/// Batch-layer hyperparameters.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Configuration of the underlying per-region Algorithm 1 runs.
    pub openapi: OpenApiConfig,
    /// Relative tolerance of the cached-region membership test. Defaults to
    /// `1e-6`, matching [`OpenApiConfig::rtol`]'s default — membership and
    /// consistency judge the same identity, so keep them aligned when
    /// customizing either.
    pub membership_rtol: f64,
    /// Decimal places used to canonicalize recovered core parameters into a
    /// [`RegionFingerprint`] (default 6). See
    /// [`crate::decision::region_fingerprint`].
    pub fingerprint_digits: u32,
}

impl Default for BatchConfig {
    fn default() -> Self {
        let openapi = OpenApiConfig::default();
        BatchConfig {
            membership_rtol: openapi.rtol,
            fingerprint_digits: 6,
            openapi,
        }
    }
}

/// Hit/miss/query accounting for one batch (and cumulatively for the
/// interpreter's lifetime via [`BatchInterpreter::lifetime_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Instances submitted.
    pub instances: usize,
    /// Instances served from cache.
    pub hits: usize,
    /// Instances that ran the full Algorithm 1.
    pub misses: usize,
    /// Instances whose interpretation failed (budget exhaustion etc.).
    pub failures: usize,
    /// Prediction queries issued to the API.
    pub queries: usize,
    /// Distinct cached regions: for a per-batch outcome, the entries for the
    /// batch's class after processing; in
    /// [`BatchInterpreter::lifetime_stats`], the total cache size over all
    /// classes (equal to [`BatchInterpreter::cached_regions`]).
    pub regions: usize,
}

impl BatchStats {
    /// Folds one batch into the lifetime totals; `regions` is overwritten by
    /// the caller with the full cache size. Additions saturate: a long-lived
    /// interpreter's lifetime counters must clamp at the type maximum, not
    /// wrap (or panic in debug builds) once traffic crosses it.
    fn absorb(&mut self, other: &BatchStats) {
        self.instances = self.instances.saturating_add(other.instances);
        self.hits = self.hits.saturating_add(other.hits);
        self.misses = self.misses.saturating_add(other.misses);
        self.failures = self.failures.saturating_add(other.failures);
        self.queries = self.queries.saturating_add(other.queries);
    }
}

/// One instance's result within a batch.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// The interpretation — bit-identical across every instance of a region
    /// (shared out of the cache slot; a hit clones an [`Arc`], not the
    /// parameter payload).
    pub interpretation: Arc<Interpretation>,
    /// Canonical key of the region that produced it.
    pub fingerprint: RegionFingerprint,
    /// Whether the result came from cache.
    pub cache_hit: bool,
    /// Prediction queries spent on this instance (hits: 1 on the black-box
    /// path, 0 on the oracle path).
    pub queries: usize,
}

/// A processed batch: per-instance results plus the batch's statistics.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One entry per input instance, in input order.
    pub results: Vec<Result<BatchItem, InterpretError>>,
    /// Accounting for this batch only.
    pub stats: BatchStats,
}

impl BatchOutcome {
    /// The successful interpretations, in input order (failures skipped).
    pub fn interpretations(&self) -> impl Iterator<Item = &Interpretation> {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|item| item.interpretation.as_ref())
    }
}

/// The region-deduplicating batch interpreter (see the module docs).
///
/// A thin adapter over [`RegionCache`]: this type owns the *batch* concerns
/// (per-instance probing, query accounting, statistics), while membership
/// lookup, fingerprint merging, and the collision fallback live in the
/// cache — the same code path the sharded concurrent cache in
/// `openapi-serve` builds on.
///
/// The cache persists across [`BatchInterpreter::interpret_batch`] calls, so
/// a long-lived instance keeps getting cheaper as traffic covers more of the
/// model's region structure. [`BatchInterpreter::clear_cache`] resets it.
#[derive(Debug)]
pub struct BatchInterpreter {
    config: BatchConfig,
    interpreter: OpenApiInterpreter,
    cache: RegionCache,
    lifetime: BatchStats,
}

impl Default for BatchInterpreter {
    fn default() -> Self {
        BatchInterpreter::new(BatchConfig::default())
    }
}

impl BatchInterpreter {
    /// Creates a batch interpreter with the given configuration.
    pub fn new(config: BatchConfig) -> Self {
        let interpreter = OpenApiInterpreter::new(config.openapi.clone());
        let cache = RegionCache::new(RegionCacheConfig {
            membership_rtol: config.membership_rtol,
            fingerprint_digits: config.fingerprint_digits,
            ..RegionCacheConfig::default()
        });
        BatchInterpreter {
            config,
            interpreter,
            cache,
            lifetime: BatchStats::default(),
        }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Borrow the underlying region cache.
    pub fn cache(&self) -> &RegionCache {
        &self.cache
    }

    /// Number of distinct regions currently cached (all classes).
    pub fn cached_regions(&self) -> usize {
        self.cache.len()
    }

    /// Cumulative statistics over every batch this interpreter has served.
    pub fn lifetime_stats(&self) -> BatchStats {
        self.lifetime
    }

    /// Drops every cached region. The lifetime counters are kept, but
    /// `regions` — a gauge of the *current* cache, not a counter — is reset
    /// to zero so the lifetime view never reports entries that no longer
    /// exist.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
        self.lifetime.regions = 0;
    }

    /// Interprets `instances` for `class` against a black-box API,
    /// deduplicating by region.
    ///
    /// Each instance costs one membership probe; cache hits stop there
    /// (1 query instead of Algorithm 1's `1 + iterations · (d+1)`), misses
    /// reuse the probe as Algorithm 1's `x⁰` equation so nothing is queried
    /// twice. Results are in input order; per-instance failures land as
    /// `Err` entries without aborting the batch.
    ///
    /// The batch runs in three phases: every instance is probed up front
    /// (one query each, exactly as the per-instance path would spend), the
    /// whole probe batch is resolved against the pre-batch cache in **one
    /// blocked kernel pass** ([`RegionCache::lookup_probe_batch`]), and a
    /// final in-order sweep re-checks each leftover miss against only the
    /// regions solved earlier *in the same batch* (a delta scan past the
    /// pre-batch watermark) before running Algorithm 1 on it. Query
    /// accounting, solver RNG consumption, and which entry serves each
    /// instance are identical to the sequential formulation — the phases
    /// only reorder the membership math so it runs batched.
    pub fn interpret_batch<M: PredictionApi, R: Rng>(
        &mut self,
        api: &M,
        instances: &[Vector],
        class: usize,
        rng: &mut R,
    ) -> BatchOutcome {
        if let Some(outcome) = self.reject_invalid_class(api, instances.len(), class) {
            return outcome;
        }
        let mut stats = new_stats(instances.len());
        let dim = api.dim();

        // Phase 1: probe every well-dimensioned instance (1 query each;
        // probes consume no solver RNG, so fronting them leaves the
        // per-miss RNG stream untouched).
        let mut probes: Vec<Option<Probe>> = Vec::with_capacity(instances.len());
        for x in instances {
            if x.len() == dim {
                probes.push(Some(Probe::query(api, x.clone())));
                stats.queries += 1;
            } else {
                probes.push(None);
            }
        }

        // Phase 2: one blocked pass resolves the whole batch against the
        // cache as it stood when the batch arrived.
        let watermark = self.cache.group_watermark(class, dim);
        let mut hits: Vec<Option<CachedRegion>> = vec![None; instances.len()];
        {
            let mut refs = Vec::with_capacity(instances.len());
            let mut owner = Vec::with_capacity(instances.len());
            for (i, probe) in probes.iter().enumerate() {
                if let Some(probe) = probe {
                    refs.push(ProbeRef {
                        x: &instances[i],
                        probs: probe.probs.as_slice(),
                        class,
                    });
                    owner.push(i);
                }
            }
            let mut ref_hits = vec![None; refs.len()];
            self.cache.lookup_probe_batch(&refs, &mut ref_hits);
            for (j, hit) in ref_hits.into_iter().enumerate() {
                hits[owner[j]] = hit;
            }
        }

        // Phase 3: in-order sweep. A pre-batch miss may still belong to a
        // region an *earlier instance of this batch* just solved — the
        // delta scan checks exactly the groups admitted past the
        // watermark, so the sweep sees the same cache state the sequential
        // formulation would at this instance.
        let mut results = Vec::with_capacity(instances.len());
        for (i, x) in instances.iter().enumerate() {
            let Some(probe) = probes[i].take() else {
                stats.failures += 1;
                results.push(Err(InterpretError::DimensionMismatch {
                    expected: dim,
                    found: x.len(),
                }));
                continue;
            };
            let hit = hits[i].take().or_else(|| {
                self.cache
                    .lookup_probe_from(x, probe.probs.as_slice(), class, watermark)
            });
            let result = match hit {
                Some(hit) => {
                    stats.hits += 1;
                    Ok(BatchItem {
                        interpretation: hit.interpretation,
                        fingerprint: hit.fingerprint,
                        cache_hit: true,
                        queries: 1,
                    })
                }
                None => match self
                    .interpreter
                    .interpret_with_probe(api, probe, class, rng)
                {
                    Ok(solved) => {
                        // `solved.queries` counts the membership probe (as
                        // Algorithm 1's x⁰ query); it was tallied in phase
                        // 1, so only the sampling rounds add here.
                        stats.queries += solved.queries - 1;
                        stats.misses += 1;
                        Ok(self.admit(solved.interpretation, None, solved.queries))
                    }
                    Err(e) => {
                        stats.queries += queries_consumed(&e, dim);
                        stats.failures += 1;
                        Err(e)
                    }
                },
            };
            results.push(result);
        }
        self.finish(class, &mut stats);
        BatchOutcome { results, stats }
    }

    /// [`BatchInterpreter::interpret_batch`] with the oracle fast path:
    /// cache lookups key on [`GroundTruthOracle::region_id`], so hits issue
    /// **zero** prediction queries. Evaluation/test use only — a deployed
    /// interpreter has no oracle (the black-box path exists for that).
    pub fn interpret_batch_oracle<M: GroundTruthOracle, R: Rng>(
        &mut self,
        api: &M,
        instances: &[Vector],
        class: usize,
        rng: &mut R,
    ) -> BatchOutcome {
        if let Some(outcome) = self.reject_invalid_class(api, instances.len(), class) {
            return outcome;
        }
        let mut stats = new_stats(instances.len());
        let mut results = Vec::with_capacity(instances.len());
        for x in instances {
            let result = self.interpret_one_oracle(api, x, class, rng, &mut stats);
            if result.is_err() {
                stats.failures += 1;
            }
            results.push(result);
        }
        self.finish(class, &mut stats);
        BatchOutcome { results, stats }
    }

    /// Class validation shared by both batch entry points: a bad class
    /// fails every instance identically without spending a single query.
    fn reject_invalid_class<M: PredictionApi>(
        &mut self,
        api: &M,
        instances: usize,
        class: usize,
    ) -> Option<BatchOutcome> {
        let error = match crate::openapi::validate_class(api.num_classes(), class) {
            Ok(()) => return None,
            Err(e) => e,
        };
        let mut stats = new_stats(instances);
        stats.failures = instances;
        self.lifetime.absorb(&stats);
        self.lifetime.regions = self.cache.len();
        Some(BatchOutcome {
            results: (0..instances).map(|_| Err(error.clone())).collect(),
            stats,
        })
    }

    /// Oracle path: region id decides membership; hits cost zero queries.
    fn interpret_one_oracle<M: GroundTruthOracle, R: Rng>(
        &mut self,
        api: &M,
        x: &Vector,
        class: usize,
        rng: &mut R,
        stats: &mut BatchStats,
    ) -> Result<BatchItem, InterpretError> {
        if x.len() != api.dim() {
            return Err(InterpretError::DimensionMismatch {
                expected: api.dim(),
                found: x.len(),
            });
        }
        let region = api.region_id(x.as_slice());
        if let Some(hit) = self.cache.lookup_region(class, &region) {
            stats.hits += 1;
            return Ok(BatchItem {
                interpretation: hit.interpretation,
                fingerprint: hit.fingerprint,
                cache_hit: true,
                queries: 0,
            });
        }
        let solved = self
            .interpreter
            .interpret(api, x, class, rng)
            .inspect_err(|e| {
                stats.queries += 1 + queries_consumed(e, api.dim());
            })?;
        stats.queries += solved.queries;
        stats.misses += 1;
        Ok(self.admit(solved.interpretation, Some(region), solved.queries))
    }

    /// Admits a freshly solved region into the cache (see
    /// [`RegionCache::insert`] for the merge/collision semantics) and builds
    /// the miss's [`BatchItem`] from the entry that ends up cached.
    fn admit(
        &mut self,
        interpretation: Interpretation,
        region: Option<RegionId>,
        queries: usize,
    ) -> BatchItem {
        let cached = self.cache.insert(Arc::new(interpretation), region);
        BatchItem {
            interpretation: cached.interpretation,
            fingerprint: cached.fingerprint,
            cache_hit: false,
            queries,
        }
    }

    /// Finalizes a batch's stats and folds them into the lifetime totals.
    fn finish(&mut self, class: usize, stats: &mut BatchStats) {
        stats.regions = self.cache.class_len(class);
        self.lifetime.absorb(stats);
        self.lifetime.regions = self.cache.len();
    }
}

fn new_stats(instances: usize) -> BatchStats {
    BatchStats {
        instances,
        ..BatchStats::default()
    }
}

/// Query cost of a failed interpretation, reconstructed from the error (a
/// failed run returns no [`crate::openapi::OpenApiResult`] to read it from).
/// Budget exhaustion spends `d + 1` sampling queries per iteration; argument
/// validation spends none. Public so other accounting layers (the
/// `openapi-serve` service) charge failures identically.
pub fn queries_consumed(error: &InterpretError, d: usize) -> usize {
    match error {
        InterpretError::BudgetExhausted { iterations, .. } => iterations * (d + 1),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_api::{CountingApi, LinearSoftmaxModel, LocalLinearModel, TwoRegionPlm};
    use openapi_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_region_model() -> TwoRegionPlm {
        let low = LocalLinearModel::new(
            Matrix::from_rows(&[&[2.0, -2.0], &[1.0, 0.5]]).unwrap(),
            Vector(vec![0.0, 0.2]),
        );
        let high = LocalLinearModel::new(
            Matrix::from_rows(&[&[-1.0, 1.5], &[0.0, 3.0]]).unwrap(),
            Vector(vec![0.5, -0.5]),
        );
        TwoRegionPlm::axis_split(0, 0.5, low, high)
    }

    /// A single-region model with a larger `d`, so the per-instance query
    /// cost (`≥ d + 2`) towers over the batch's 1-query hits.
    fn wide_linear_model(d: usize) -> LinearSoftmaxModel {
        let w = Matrix::from_fn(d, 3, |r, c| ((r * 3 + c) % 7) as f64 * 0.1 - 0.3);
        LinearSoftmaxModel::new(w, Vector(vec![0.1, -0.2, 0.05]))
    }

    fn clustered_instances(n: usize) -> Vec<Vector> {
        // Alternate between the two regions of `two_region_model`.
        (0..n)
            .map(|i| {
                let side = if i % 2 == 0 { 0.2 } else { 0.8 };
                Vector(vec![side, (i as f64 * 0.37).sin() * 0.4])
            })
            .collect()
    }

    #[test]
    fn batch_dedupes_to_one_solve_per_region() {
        let api = two_region_model();
        let instances = clustered_instances(20);
        let mut batch = BatchInterpreter::default();
        let mut rng = StdRng::seed_from_u64(1);
        let out = batch.interpret_batch(&api, &instances, 0, &mut rng);
        assert_eq!(out.stats.instances, 20);
        assert_eq!(out.stats.failures, 0);
        assert_eq!(out.stats.misses, 2, "one solve per region");
        assert_eq!(out.stats.hits, 18);
        assert_eq!(out.stats.regions, 2);
        assert_eq!(batch.cached_regions(), 2);
    }

    #[test]
    fn hits_are_bit_identical_within_a_region_and_exact() {
        let api = two_region_model();
        let instances = clustered_instances(10);
        let mut batch = BatchInterpreter::default();
        let mut rng = StdRng::seed_from_u64(2);
        let out = batch.interpret_batch(&api, &instances, 0, &mut rng);
        let items: Vec<&BatchItem> = out.results.iter().map(|r| r.as_ref().unwrap()).collect();
        for item in &items {
            // Same fingerprint ⇒ the very same Interpretation, bitwise.
            let rep = items
                .iter()
                .find(|o| o.fingerprint == item.fingerprint)
                .unwrap();
            assert_eq!(rep.interpretation, item.interpretation);
        }
        // And the cached answer is the region's exact ground truth.
        for (x, item) in instances.iter().zip(&items) {
            let truth = api.local_model(x.as_slice()).decision_features(0);
            let err = item.interpretation.decision_features.l1_distance(&truth);
            assert!(err.unwrap() < 1e-7);
        }
    }

    #[test]
    fn black_box_hits_cost_one_query_each() {
        let d = 16;
        let api = CountingApi::new(wide_linear_model(d));
        let instances: Vec<Vector> = (0..50)
            .map(|i| Vector((0..d).map(|j| ((i * d + j) as f64 * 0.11).cos()).collect()))
            .collect();
        let mut batch = BatchInterpreter::default();
        let mut rng = StdRng::seed_from_u64(3);
        let out = batch.interpret_batch(&api, &instances, 1, &mut rng);
        assert_eq!(out.stats.misses, 1, "single region: one solve");
        assert_eq!(out.stats.hits, 49);
        // Stats agree with the metered truth.
        assert_eq!(out.stats.queries as u64, api.queries());
        // 49 hits × 1 probe + one full Algorithm 1 run.
        let miss_cost = out.results[0].as_ref().unwrap().queries;
        assert_eq!(out.stats.queries, 49 + miss_cost);
        // ≥ 5× fewer queries than 50 per-instance runs (each ≥ miss_cost).
        assert!(out.stats.queries * 5 <= 50 * miss_cost);
    }

    #[test]
    fn oracle_hits_issue_zero_queries() {
        let api = CountingApi::new(two_region_model());
        let instances = clustered_instances(12);
        let mut batch = BatchInterpreter::default();
        let mut rng = StdRng::seed_from_u64(4);
        // Warm the cache: first batch pays two solves.
        let warm = batch.interpret_batch_oracle(&api, &instances, 0, &mut rng);
        assert_eq!(warm.stats.misses, 2);
        let after_warm = api.queries();
        // Second batch over the same regions: all hits, zero queries.
        let hot = batch.interpret_batch_oracle(&api, &instances, 0, &mut rng);
        assert_eq!(hot.stats.hits, 12);
        assert_eq!(hot.stats.misses, 0);
        assert_eq!(hot.stats.queries, 0);
        assert_eq!(api.queries(), after_warm, "cache hits must not query");
        for r in &hot.results {
            let item = r.as_ref().unwrap();
            assert!(item.cache_hit);
            assert_eq!(item.queries, 0);
        }
    }

    #[test]
    fn cache_hit_returns_bit_identical_interpretation_to_the_cold_run() {
        // The paper's consistency property as a unit test: the cached entry
        // a hit serves IS the cold run's Interpretation, bit for bit.
        let api = two_region_model();
        let a = Vector(vec![0.1, 0.7]);
        let b = Vector(vec![0.3, -0.4]); // same region as `a`
        let cold = OpenApiInterpreter::default()
            .interpret(&api, &a, 0, &mut StdRng::seed_from_u64(5))
            .unwrap();
        let mut batch = BatchInterpreter::default();
        let out = batch.interpret_batch(&api, &[a, b], 0, &mut StdRng::seed_from_u64(5));
        let first = out.results[0].as_ref().unwrap();
        let second = out.results[1].as_ref().unwrap();
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        assert_eq!(*first.interpretation, cold.interpretation);
        assert_eq!(*second.interpretation, cold.interpretation);
    }

    #[test]
    fn lifetime_stats_survive_clear_cache_and_report_an_empty_cache() {
        // Regression: `clear_cache` used to leave `lifetime.regions` stale,
        // reporting entries that no longer existed until the next batch.
        let api = two_region_model();
        let mut batch = BatchInterpreter::default();
        let mut rng = StdRng::seed_from_u64(20);
        let first = batch.interpret_batch(&api, &clustered_instances(6), 0, &mut rng);
        assert_eq!(first.stats.misses, 2);
        let before = batch.lifetime_stats();
        assert_eq!(before.regions, 2);
        batch.clear_cache();
        let after = batch.lifetime_stats();
        // Counters survive; the cache gauge reflects the (now empty) cache.
        assert_eq!(after.instances, before.instances);
        assert_eq!(after.hits, before.hits);
        assert_eq!(after.misses, before.misses);
        assert_eq!(after.queries, before.queries);
        assert_eq!(after.regions, 0, "cleared cache must report zero regions");
    }

    #[test]
    fn lifetime_accounting_saturates_instead_of_overflowing() {
        // Regression: `absorb` used plain `+`, which panics in debug builds
        // (and wraps in release) once a lifetime counter nears the maximum.
        let mut lifetime = BatchStats {
            instances: usize::MAX - 1,
            hits: usize::MAX,
            misses: 3,
            failures: usize::MAX - 2,
            queries: usize::MAX,
            regions: 0,
        };
        let batch = BatchStats {
            instances: 5,
            hits: 5,
            misses: 5,
            failures: 5,
            queries: usize::MAX,
            regions: 7,
        };
        lifetime.absorb(&batch);
        assert_eq!(lifetime.instances, usize::MAX);
        assert_eq!(lifetime.hits, usize::MAX);
        assert_eq!(lifetime.misses, 8);
        assert_eq!(lifetime.failures, usize::MAX);
        assert_eq!(lifetime.queries, usize::MAX);
    }

    #[test]
    fn cache_persists_and_clears_across_batches() {
        let api = two_region_model();
        let mut batch = BatchInterpreter::default();
        let mut rng = StdRng::seed_from_u64(6);
        let first = batch.interpret_batch(&api, &clustered_instances(4), 0, &mut rng);
        assert_eq!(first.stats.misses, 2);
        let second = batch.interpret_batch(&api, &clustered_instances(4), 0, &mut rng);
        assert_eq!(second.stats.misses, 0, "warm cache serves everything");
        assert_eq!(batch.lifetime_stats().instances, 8);
        assert_eq!(batch.lifetime_stats().hits, 2 + 4);
        batch.clear_cache();
        assert_eq!(batch.cached_regions(), 0);
        let third = batch.interpret_batch(&api, &clustered_instances(4), 0, &mut rng);
        assert_eq!(third.stats.misses, 2, "cleared cache resolves again");
    }

    #[test]
    fn classes_do_not_share_cache_entries() {
        let api = two_region_model();
        let instances = clustered_instances(6);
        let mut batch = BatchInterpreter::default();
        let mut rng = StdRng::seed_from_u64(7);
        let c0 = batch.interpret_batch(&api, &instances, 0, &mut rng);
        let c1 = batch.interpret_batch(&api, &instances, 1, &mut rng);
        assert_eq!(c0.stats.misses, 2);
        assert_eq!(c1.stats.misses, 2, "class 1 must not reuse class 0");
        assert_eq!(c0.stats.regions, 2);
        assert_eq!(c1.stats.regions, 2);
        assert_eq!(batch.cached_regions(), 4);
        // Lifetime stats report the full cache, not a per-class view.
        assert_eq!(batch.lifetime_stats().regions, 4);
        for r in c1.results.iter().take(1) {
            assert_eq!(r.as_ref().unwrap().interpretation.class, 1);
        }
    }

    #[test]
    fn fingerprint_collisions_do_not_serve_the_wrong_region() {
        // Two regions whose core parameters all quantize to the same cell at
        // integer granularity: with fingerprint_digits = 0 their fingerprints
        // collide, and the cache must keep both rather than silently serving
        // the first region's parameters for the second.
        let low = LocalLinearModel::new(
            Matrix::from_rows(&[&[0.2, 0.0], &[0.1, 0.0]]).unwrap(),
            Vector(vec![0.0, 0.0]),
        );
        let high = LocalLinearModel::new(
            Matrix::from_rows(&[&[0.0, 0.3], &[0.0, 0.1]]).unwrap(),
            Vector(vec![0.2, 0.0]),
        );
        let api = TwoRegionPlm::axis_split(0, 0.5, low, high);
        let cfg = BatchConfig {
            fingerprint_digits: 0,
            ..BatchConfig::default()
        };
        let mut batch = BatchInterpreter::new(cfg);
        let mut rng = StdRng::seed_from_u64(10);
        let instances = [
            Vector(vec![0.1, 0.3]),  // low region
            Vector(vec![0.9, -0.2]), // high region — colliding fingerprint
            Vector(vec![0.8, 0.4]),  // high region again — must hit entry 2
        ];
        let out = batch.interpret_batch(&api, &instances, 0, &mut rng);
        let items: Vec<&BatchItem> = out.results.iter().map(|r| r.as_ref().unwrap()).collect();
        assert_eq!(items[0].fingerprint, items[1].fingerprint, "collision");
        assert_ne!(items[0].interpretation, items[1].interpretation);
        assert_eq!(out.stats.misses, 2);
        assert_eq!(out.stats.hits, 1);
        assert!(items[2].cache_hit, "un-indexed entry still serves hits");
        assert_eq!(items[2].interpretation, items[1].interpretation);
        for (x, item) in instances.iter().zip(&items) {
            let truth = api.local_model(x.as_slice()).decision_features(0);
            let err = item
                .interpretation
                .decision_features
                .l1_distance(&truth)
                .unwrap();
            assert!(err < 1e-7, "served the wrong region: L1Dist {err}");
        }
    }

    #[test]
    fn per_instance_failures_do_not_abort_the_batch() {
        let api = two_region_model();
        let mut batch = BatchInterpreter::default();
        let mut rng = StdRng::seed_from_u64(8);
        let bad = Vector(vec![0.0; 5]); // wrong dimension
        let good = Vector(vec![0.2, 0.1]);
        let out = batch.interpret_batch(&api, &[bad, good], 0, &mut rng);
        assert!(matches!(
            out.results[0],
            Err(InterpretError::DimensionMismatch { .. })
        ));
        assert!(out.results[1].is_ok());
        assert_eq!(out.stats.failures, 1);
        assert_eq!(out.interpretations().count(), 1);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let api = two_region_model();
        let mut batch = BatchInterpreter::default();
        let mut rng = StdRng::seed_from_u64(9);
        let out = batch.interpret_batch(&api, &[], 0, &mut rng);
        assert!(out.results.is_empty());
        assert_eq!(out.stats, new_stats(0));
    }
}
